//! Two-phase full-tableau simplex: the reference LP solver.
//!
//! This implementation favours auditability over speed: it converts the
//! model to standard form (shifted/split variables, explicit upper-bound
//! rows, artificials for `≥`/`=` rows) and pivots on a dense tableau. It is
//! used by tests as an independent oracle for
//! [`crate::revised::RevisedSimplex`], and is perfectly adequate for models
//! with up to a few hundred rows.

// Index loops here sweep multiple parallel arrays of the numerical kernel;
// iterator rewrites obscure the linear algebra.
#![allow(clippy::needless_range_loop)]
use crate::model::{Model, Sense, Solution, SolveError};

/// Dense two-phase tableau simplex solver.
#[derive(Debug, Clone, Default)]
pub struct DenseSimplex {
    /// Iteration cap; `0` auto-scales with problem size.
    pub max_iterations: usize,
}

const EPS: f64 = 1e-9;
const FEAS: f64 = 1e-7;

/// How an original variable maps onto standard-form columns.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = lb + x'`, column `c`.
    Shifted { c: usize, lb: f64 },
    /// `x = ub − x'`, column `c` (upper bound only).
    Mirrored { c: usize, ub: f64 },
    /// `x = x⁺ − x⁻`, columns `p` and `n` (free variable).
    Split { p: usize, n: usize },
    /// `lb == ub`: no column at all.
    Fixed(f64),
}

impl DenseSimplex {
    /// Creates a solver with the default iteration cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves the LP relaxation of `model`.
    ///
    /// # Errors
    ///
    /// See [`Model::solve`].
    pub fn solve(&self, model: &Model) -> Result<Solution, SolveError> {
        model.validate()?;

        // --- Standard-form conversion -----------------------------------
        let mut n_cols = 0usize;
        let mut maps = Vec::with_capacity(model.num_vars());
        // Extra rows for finite upper bounds of shifted variables.
        let mut ub_rows: Vec<(usize, f64)> = Vec::new(); // (column, bound width)
        for v in &model.vars {
            if v.lb == v.ub {
                maps.push(VarMap::Fixed(v.lb));
            } else if v.lb.is_finite() {
                let c = n_cols;
                n_cols += 1;
                if v.ub.is_finite() {
                    ub_rows.push((c, v.ub - v.lb));
                }
                maps.push(VarMap::Shifted { c, lb: v.lb });
            } else if v.ub.is_finite() {
                let c = n_cols;
                n_cols += 1;
                maps.push(VarMap::Mirrored { c, ub: v.ub });
            } else {
                let p = n_cols;
                let n = n_cols + 1;
                n_cols += 2;
                maps.push(VarMap::Split { p, n });
            }
        }

        // Rows: original constraints (with substituted variables) + ub rows.
        struct Row {
            coeffs: Vec<f64>,
            sense: Sense,
            rhs: f64,
        }
        let mut rows: Vec<Row> = Vec::with_capacity(model.num_cons() + ub_rows.len());
        for con in &model.cons {
            let mut coeffs = vec![0.0; n_cols];
            let mut rhs = con.rhs;
            for &(var, a) in &con.terms {
                match maps[var.index()] {
                    VarMap::Fixed(v) => rhs -= a * v,
                    VarMap::Shifted { c, lb } => {
                        coeffs[c] += a;
                        rhs -= a * lb;
                    }
                    VarMap::Mirrored { c, ub } => {
                        coeffs[c] -= a;
                        rhs -= a * ub;
                    }
                    VarMap::Split { p, n } => {
                        coeffs[p] += a;
                        coeffs[n] -= a;
                    }
                }
            }
            rows.push(Row {
                coeffs,
                sense: con.sense,
                rhs,
            });
        }
        for &(c, width) in &ub_rows {
            let mut coeffs = vec![0.0; n_cols];
            coeffs[c] = 1.0;
            rows.push(Row {
                coeffs,
                sense: Sense::Le,
                rhs: width,
            });
        }

        // Objective over standard-form columns (constant parts fold into the
        // final `objective_value` call, so they are not tracked here).
        let mut obj = vec![0.0; n_cols];
        for (v, map) in model.vars.iter().zip(&maps) {
            match *map {
                VarMap::Fixed(_) => {}
                VarMap::Shifted { c, .. } => obj[c] += v.obj,
                VarMap::Mirrored { c, .. } => obj[c] -= v.obj,
                VarMap::Split { p, n } => {
                    obj[p] += v.obj;
                    obj[n] -= v.obj;
                }
            }
        }

        // Normalize rhs ≥ 0, then add slacks/artificials.
        let m = rows.len();
        let mut n_slack = 0usize;
        let mut n_art = 0usize;
        for r in &mut rows {
            if r.rhs < 0.0 {
                for c in &mut r.coeffs {
                    *c = -*c;
                }
                r.rhs = -r.rhs;
                r.sense = match r.sense {
                    Sense::Le => Sense::Ge,
                    Sense::Ge => Sense::Le,
                    Sense::Eq => Sense::Eq,
                };
            }
            match r.sense {
                Sense::Le => n_slack += 1,
                Sense::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Sense::Eq => n_art += 1,
            }
        }

        let width = n_cols + n_slack + n_art + 1; // +1 rhs column
        let mut t = vec![vec![0.0; width]; m + 1]; // last row = objective
        let mut basis = vec![usize::MAX; m];
        let mut next_slack = n_cols;
        let mut next_art = n_cols + n_slack;
        let art_start = n_cols + n_slack;
        for (i, r) in rows.iter().enumerate() {
            t[i][..n_cols].copy_from_slice(&r.coeffs);
            t[i][width - 1] = r.rhs;
            match r.sense {
                Sense::Le => {
                    t[i][next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Sense::Ge => {
                    t[i][next_slack] = -1.0;
                    next_slack += 1;
                    t[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Sense::Eq => {
                    t[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
        }

        let max_iter = if self.max_iterations == 0 {
            (50 * (m + n_cols)).max(2_000)
        } else {
            self.max_iterations
        };
        let mut iterations = 0usize;

        // --- Phase 1 ------------------------------------------------------
        if n_art > 0 {
            // Objective row: minimize sum of artificials, expressed over the
            // current basis.
            for c in 0..width {
                t[m][c] = 0.0;
            }
            for c in art_start..art_start + n_art {
                t[m][c] = 1.0;
            }
            for i in 0..m {
                if basis[i] >= art_start {
                    let row = t[i].clone();
                    for c in 0..width {
                        t[m][c] -= row[c];
                    }
                }
            }
            pivot_until_optimal(&mut t, &mut basis, width, m, max_iter, &mut iterations)?;
            let p1 = -t[m][width - 1];
            if p1 > FEAS * 10.0 {
                return Err(SolveError::Infeasible);
            }
            // Drive basic artificials out, drop redundant rows implicitly by
            // leaving the artificial basic at zero but barring re-entry.
            for i in 0..m {
                if basis[i] >= art_start {
                    if let Some(c) = (0..art_start).find(|&c| t[i][c].abs() > 1e-7) {
                        pivot(&mut t, i, c, width, m);
                        basis[i] = c;
                    }
                }
            }
        }

        // --- Phase 2 ------------------------------------------------------
        // Bar artificial columns from re-entering.
        for row in t.iter_mut().take(m + 1) {
            for c in art_start..art_start + n_art {
                row[c] = 0.0;
            }
        }
        for c in 0..width {
            t[m][c] = 0.0;
        }
        t[m][..n_cols].copy_from_slice(&obj);
        for i in 0..m {
            let b = basis[i];
            if b < n_cols && obj[b] != 0.0 {
                let coeff = t[m][b];
                if coeff != 0.0 {
                    let row = t[i].clone();
                    for c in 0..width {
                        t[m][c] -= coeff * row[c];
                    }
                }
            }
        }
        pivot_until_optimal(&mut t, &mut basis, width, m, max_iter, &mut iterations)?;

        // --- Extraction ----------------------------------------------------
        let mut std_vals = vec![0.0; n_cols];
        for i in 0..m {
            if basis[i] < n_cols {
                std_vals[basis[i]] = t[i][width - 1];
            }
        }
        let mut values = vec![0.0; model.num_vars()];
        for (j, map) in maps.iter().enumerate() {
            values[j] = match *map {
                VarMap::Fixed(v) => v,
                VarMap::Shifted { c, lb } => lb + std_vals[c],
                VarMap::Mirrored { c, ub } => ub - std_vals[c],
                VarMap::Split { p, n } => std_vals[p] - std_vals[n],
            };
        }
        let objective = model.objective_value(&values);
        Ok(Solution {
            objective,
            values,
            iterations,
            basis: None,
            warm_started: false,
            stats: crate::revised::SolveStats {
                iterations,
                ..Default::default()
            },
        })
    }
}

fn pivot(t: &mut [Vec<f64>], pr: usize, pc: usize, width: usize, m: usize) {
    let pv = t[pr][pc];
    for c in 0..width {
        t[pr][c] /= pv;
    }
    for r in 0..=m {
        if r != pr {
            let f = t[r][pc];
            if f != 0.0 {
                let prow = t[pr].clone();
                for c in 0..width {
                    t[r][c] -= f * prow[c];
                }
            }
        }
    }
}

fn pivot_until_optimal(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    width: usize,
    m: usize,
    max_iter: usize,
    iterations: &mut usize,
) -> Result<(), SolveError> {
    let mut stall = 0usize;
    loop {
        if *iterations >= max_iter {
            return Err(SolveError::IterationLimit);
        }
        // Entering column: Dantzig, or Bland when stalled.
        let bland = stall > 200;
        let mut pc = usize::MAX;
        let mut best = -EPS;
        for c in 0..width - 1 {
            let rc = t[m][c];
            if rc < best {
                pc = c;
                best = rc;
                if bland {
                    break;
                }
            }
        }
        if pc == usize::MAX {
            return Ok(());
        }
        // Leaving row: minimum ratio.
        let mut pr = usize::MAX;
        let mut best_ratio = f64::INFINITY;
        for r in 0..m {
            let a = t[r][pc];
            if a > EPS {
                let ratio = t[r][width - 1] / a;
                if ratio < best_ratio - 1e-12
                    || (ratio < best_ratio + 1e-12 && pr != usize::MAX && basis[r] < basis[pr])
                {
                    best_ratio = ratio;
                    pr = r;
                }
            }
        }
        if pr == usize::MAX {
            return Err(SolveError::Unbounded);
        }
        if best_ratio < 1e-10 {
            stall += 1;
        } else {
            stall = 0;
        }
        pivot(t, pr, pc, width, m);
        basis[pr] = pc;
        *iterations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn solve(m: &Model) -> Solution {
        DenseSimplex::new().solve(m).expect("solve")
    }

    #[test]
    fn matches_textbook_example() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY, -3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, -5.0);
        m.add_con("c1", [(x, 1.0)], Sense::Le, 4.0);
        m.add_con("c2", [(y, 2.0)], Sense::Le, 12.0);
        m.add_con("c3", [(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        let s = solve(&m);
        assert!((s.objective + 36.0).abs() < 1e-7);
    }

    #[test]
    fn handles_bounds_via_rows() {
        let mut m = Model::new();
        let x = m.add_var("x", 1.0, 3.0, -1.0);
        let s = solve(&m);
        assert!((s[x] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn handles_free_and_mirrored_vars() {
        let mut m = Model::new();
        let f = m.add_var("f", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        let u = m.add_var("u", f64::NEG_INFINITY, 2.0, -1.0);
        m.add_con("lo", [(f, 1.0)], Sense::Ge, -4.0);
        let s = solve(&m);
        assert!((s[f] + 4.0).abs() < 1e-7);
        assert!((s[u] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0, 0.0);
        m.add_con("a", [(x, 1.0)], Sense::Ge, 3.0);
        assert_eq!(
            DenseSimplex::new().solve(&m).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn unbounded() {
        let mut m = Model::new();
        let _x = m.add_var("x", 0.0, f64::INFINITY, -1.0);
        assert_eq!(
            DenseSimplex::new().solve(&m).unwrap_err(),
            SolveError::Unbounded
        );
    }

    #[test]
    fn fixed_vars_fold_into_rhs() {
        let mut m = Model::new();
        let x = m.add_var("x", 2.0, 2.0, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_con("c", [(x, 3.0), (y, 1.0)], Sense::Ge, 10.0);
        let s = solve(&m);
        assert!((s[y] - 4.0).abs() < 1e-7);
        assert!((s.objective - 6.0).abs() < 1e-7);
    }

    #[test]
    fn negative_rhs_equalities() {
        let mut m = Model::new();
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 0.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_con("eq", [(x, 1.0), (y, -1.0)], Sense::Eq, -3.0);
        m.add_con("lo", [(x, 1.0)], Sense::Ge, 1.0);
        let s = solve(&m);
        assert!((s[y] - (s[x] + 3.0)).abs() < 1e-7);
        assert!((s[x] - 1.0).abs() < 1e-7);
    }
}
