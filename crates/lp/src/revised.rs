//! Bounded-variable revised simplex with sparse LU basis factorization.
//!
//! This is the production LP solver of the workspace. It works on the
//! computational form `A·x + s = b`, `l ≤ x ≤ u`, where each constraint row
//! gets a slack whose bounds encode the row sense, and phase 1 starts from an
//! all-artificial basis. Between refactorizations the basis inverse is
//! maintained as a product of eta matrices; every few dozen pivots the basis
//! is refactorized from scratch with [`crate::lu::SparseLu`] and the basic
//! solution is recomputed to shed accumulated error.
//!
//! Degenerate stalls switch pricing from Dantzig (most negative reduced
//! cost) to Bland's rule, which guarantees termination.

// Index loops here sweep multiple parallel arrays of the numerical kernel;
// iterator rewrites obscure the linear algebra.
#![allow(clippy::needless_range_loop)]
use crate::lu::{ColMatrix, FactorizeError, SparseLu};
use crate::model::{Model, Sense, Solution, SolveError};
use serde::{Deserialize, Serialize};

/// Status of one column in an exported [`Basis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BasisStatus {
    /// In the basis (its value is determined by the basic solve).
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Nonbasic free column parked at zero.
    Free,
}

/// A snapshot of the simplex basis at the end of a solve: one status per
/// structural variable followed by one per constraint slack (in model
/// order). Feed it back via [`RevisedSimplex::solve_warm`] to warm-start a
/// re-solve of the same model — or of a *neighbouring* model with the same
/// shape (identical variable/constraint counts, possibly different bounds,
/// coefficients, RHS, or objective). The solver validates the snapshot
/// against the new model (dimension check, bound repair, singularity check
/// via [`crate::lu::SparseLu`], primal feasibility) and silently falls back
/// to the cold crash basis when it cannot be used, so warm starts never
/// change *what* is solved — only how fast.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Basis {
    statuses: Vec<BasisStatus>,
    /// Rows whose *artificial* column was still (degenerately) basic at
    /// zero when the snapshot was taken. Re-installing those unit columns
    /// keeps the basis square without re-running phase 1.
    artificial_rows: Vec<usize>,
}

impl Basis {
    /// Builds a snapshot from raw statuses (structural variables first,
    /// then one slack per constraint).
    pub fn from_statuses(statuses: Vec<BasisStatus>) -> Self {
        Self {
            statuses,
            artificial_rows: Vec::new(),
        }
    }

    /// Builds a snapshot that also pins the artificial columns of
    /// `artificial_rows` into the basis (degenerate leftovers of phase 1).
    pub fn with_artificials(statuses: Vec<BasisStatus>, artificial_rows: Vec<usize>) -> Self {
        Self {
            statuses,
            artificial_rows,
        }
    }

    /// The per-column statuses (structural variables, then slacks).
    pub fn statuses(&self) -> &[BasisStatus] {
        &self.statuses
    }

    /// Rows whose artificial column is part of the basis (usually empty).
    pub fn artificial_rows(&self) -> &[usize] {
        &self.artificial_rows
    }

    /// Number of columns covered (num_vars + num_cons of the source model).
    pub fn len(&self) -> usize {
        self.statuses.len()
    }

    /// `true` for the empty model's basis.
    pub fn is_empty(&self) -> bool {
        self.statuses.is_empty()
    }

    /// Number of basic columns recorded, including pinned artificials
    /// (matches the source model's row count).
    pub fn num_basic(&self) -> usize {
        self.statuses
            .iter()
            .filter(|s| matches!(s, BasisStatus::Basic))
            .count()
            + self.artificial_rows.len()
    }
}

/// Tuning knobs for [`RevisedSimplex`].
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Hard cap on simplex iterations across both phases. `0` means
    /// auto-scale with problem size.
    pub max_iterations: usize,
    /// Primal feasibility tolerance (bound violations up to this are
    /// tolerated).
    pub feas_tol: f64,
    /// Dual feasibility (optimality) tolerance on reduced costs.
    pub opt_tol: f64,
    /// Refactorize the basis after this many eta updates.
    pub refactor_every: usize,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub bland_after: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self {
            max_iterations: 0,
            feas_tol: 1e-7,
            opt_tol: 1e-7,
            refactor_every: 64,
            bland_after: 128,
        }
    }
}

/// The solver object; construct with options, then call
/// [`RevisedSimplex::solve`].
#[derive(Debug, Clone, Default)]
pub struct RevisedSimplex {
    options: SimplexOptions,
}

impl RevisedSimplex {
    /// Creates a solver with the given options.
    pub fn new(options: SimplexOptions) -> Self {
        Self { options }
    }

    /// Solves the LP relaxation of `model`.
    ///
    /// # Errors
    ///
    /// See [`Model::solve`].
    pub fn solve(&self, model: &Model) -> Result<Solution, SolveError> {
        self.solve_warm(model, None)
    }

    /// Solves the LP relaxation of `model`, optionally warm-starting from a
    /// basis exported by a previous [`Solution`].
    ///
    /// The warm basis is repaired against the model's current bounds and
    /// refactorized, with singular basic sets repaired column-by-column
    /// (dependent columns swapped for uncovered-row slacks). A basis whose
    /// basic solution violates bounds — routine after a rolling-horizon
    /// caller shifts the model's RHS or coefficients in place — is driven
    /// back to primal feasibility by dual-simplex pivots before ordinary
    /// phase 2 certifies optimality. If installation or restoration fails,
    /// the solver silently rebuilds and runs the cold two-phase path, so
    /// the result is always identical (up to tolerances) to a cold solve.
    ///
    /// # Errors
    ///
    /// See [`Model::solve`].
    pub fn solve_warm(&self, model: &Model, warm: Option<&Basis>) -> Result<Solution, SolveError> {
        model.validate()?;
        let mut w = Worker::build(model, &self.options)?;
        let mut warm_installed = false;
        if let Some(basis) = warm {
            // Validate-then-commit: a rejected basis leaves the cold
            // worker untouched, so no rebuild is needed on failure.
            warm_installed = w.try_install_basis(basis).is_ok();
        }
        // Pivots burned in a warm attempt that later falls back are still
        // real work; carry them into the reported iteration count.
        let mut discarded_iterations = 0usize;
        if warm_installed {
            // Phase 2 straight from the installed basis; dual-simplex
            // restoration recovers primal feasibility when the snapshot
            // doesn't fit the current RHS. Any failure rebuilds and runs
            // cold — warm starts never change *what* is solved.
            if w.warm_optimize().is_err() {
                discarded_iterations = w.iterations;
                w = Worker::build(model, &self.options)?;
                warm_installed = false;
                w.run()?;
            }
        } else {
            w.run()?;
        }
        let mut sol = w.extract(model);
        sol.warm_started = warm_installed;
        sol.iterations += discarded_iterations;
        Ok(sol)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColStatus {
    Basic(usize),
    AtLower,
    AtUpper,
    /// Free variable currently parked at zero.
    FreeAtZero,
}

#[derive(Debug)]
struct Eta {
    slot: usize,
    pivot: f64,
    /// Off-pivot entries `(slot, value)` of the transformed entering column.
    entries: Vec<(usize, f64)>,
}

struct Worker<'a> {
    opts: &'a SimplexOptions,
    m: usize,
    n_struct: usize,
    n_total: usize,
    art_offset: usize,
    cols: ColMatrix,
    lb: Vec<f64>,
    ub: Vec<f64>,
    cost: Vec<f64>,
    cost_phase1: Vec<f64>,
    rhs: Vec<f64>,
    status: Vec<ColStatus>,
    basis: Vec<usize>,
    xb: Vec<f64>,
    lu: SparseLu,
    etas: Vec<Eta>,
    scratch: Vec<f64>,
    work_y: Vec<f64>,
    work_w: Vec<f64>,
    iterations: usize,
    max_iterations: usize,
}

impl<'a> Worker<'a> {
    fn build(model: &Model, opts: &'a SimplexOptions) -> Result<Self, SolveError> {
        let m = model.num_cons();
        let n_struct = model.num_vars();
        let art_offset = n_struct + m;
        let n_total = n_struct + 2 * m;

        let mut cols = ColMatrix::new(m);
        let mut lb = Vec::with_capacity(n_total);
        let mut ub = Vec::with_capacity(n_total);
        let mut cost = Vec::with_capacity(n_total);

        // Structural columns.
        let mut by_var: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_struct];
        for (i, con) in model.cons.iter().enumerate() {
            for &(v, c) in &con.terms {
                by_var[v.index()].push((i, c));
            }
        }
        for (j, var) in model.vars.iter().enumerate() {
            cols.push_col(by_var[j].iter().copied());
            lb.push(var.lb);
            ub.push(var.ub);
            cost.push(var.obj);
        }
        // Slack columns: row sense becomes slack bounds.
        for (i, con) in model.cons.iter().enumerate() {
            cols.push_col([(i, 1.0)]);
            let (l, u) = match con.sense {
                Sense::Le => (0.0, f64::INFINITY),
                Sense::Ge => (f64::NEG_INFINITY, 0.0),
                Sense::Eq => (0.0, 0.0),
            };
            lb.push(l);
            ub.push(u);
            cost.push(0.0);
        }
        // Artificial columns (bounds fixed after the initial residual is
        // known).
        for i in 0..m {
            cols.push_col([(i, 1.0)]);
            lb.push(0.0);
            ub.push(0.0);
            cost.push(0.0);
        }

        let rhs: Vec<f64> = model.cons.iter().map(|c| c.rhs).collect();

        // Nonbasic starting point: every structural/slack column at the
        // finite bound nearest zero, free columns parked at zero.
        let mut status = vec![ColStatus::AtLower; n_total];
        for j in 0..art_offset {
            status[j] = initial_status(lb[j], ub[j]);
        }

        // Residual of the nonbasic point decides artificial orientation.
        let mut resid = rhs.clone();
        for j in 0..art_offset {
            let v = nonbasic_value(status[j], lb[j], ub[j]);
            if v != 0.0 {
                for (r, a) in cols.col(j) {
                    resid[r] -= a * v;
                }
            }
        }
        // Crash basis: each row is covered by its own slack when the slack's
        // bounds can absorb the residual (the row starts feasible), and by a
        // sign-oriented artificial only otherwise. On the siting LPs almost
        // every row has zero residual at the nonbasic point, so phase 1
        // starts with a handful of artificials instead of one per row.
        let mut cost_phase1 = vec![0.0; n_total];
        let mut basis = Vec::with_capacity(m);
        let mut xb = Vec::with_capacity(m);
        for (i, &r) in resid.iter().enumerate() {
            let sj = n_struct + i;
            if lb[sj] <= r && r <= ub[sj] {
                status[sj] = ColStatus::Basic(i);
                basis.push(sj);
            } else {
                let aj = art_offset + i;
                if r >= 0.0 {
                    lb[aj] = 0.0;
                    ub[aj] = f64::INFINITY;
                    cost_phase1[aj] = 1.0;
                } else {
                    lb[aj] = f64::NEG_INFINITY;
                    ub[aj] = 0.0;
                    cost_phase1[aj] = -1.0;
                }
                status[aj] = ColStatus::Basic(i);
                basis.push(aj);
            }
            xb.push(r);
        }

        let lu = factorize_basis(&cols, &basis, m)?;

        let max_iterations = if opts.max_iterations == 0 {
            (20 * (m + n_struct)).max(2_000)
        } else {
            opts.max_iterations
        };

        Ok(Worker {
            opts,
            m,
            n_struct,
            n_total,
            art_offset,
            cols,
            lb,
            ub,
            cost,
            cost_phase1,
            rhs,
            status,
            basis,
            xb,
            lu,
            etas: Vec::new(),
            scratch: Vec::new(),
            work_y: vec![0.0; m],
            work_w: vec![0.0; m],
            iterations: 0,
            max_iterations,
        })
    }

    /// Attempts to install an exported warm basis over the freshly built
    /// (cold) worker state. Validate-then-commit: all checks run on
    /// scratch state, and `self` is only mutated once the basis is proven
    /// usable — a failed attempt leaves the cold worker intact, so the
    /// caller falls straight through to the crash-basis solve with no
    /// rebuild.
    ///
    /// The snapshot is *repaired* rather than trusted: nonbasic statuses
    /// that no longer match the model's bounds are remapped, and a
    /// singular basic set is repaired column-by-column against the LU
    /// factorization. The recomputed basic solution may violate bounds —
    /// [`Worker::warm_optimize`] recovers feasibility by bound shifting.
    fn try_install_basis(&mut self, warm: &Basis) -> Result<(), ()> {
        if warm.statuses().len() != self.art_offset {
            return Err(()); // different model shape
        }
        let mut basics = Vec::with_capacity(self.m);
        for (j, &st) in warm.statuses().iter().enumerate() {
            if st == BasisStatus::Basic {
                basics.push(j);
            }
        }
        // Degenerate phase-1 leftovers: re-pin the recorded artificial unit
        // columns (at value 0) so the basis stays square.
        for &r in warm.artificial_rows() {
            if r >= self.m {
                return Err(());
            }
            basics.push(self.art_offset + r);
        }
        if basics.len() != self.m {
            return Err(()); // malformed snapshot; the crash basis handles it
        }
        // Factorize, repairing singularity the way production solvers do:
        // a column the LU proves dependent is swapped for the slack of a
        // row that has no pivot yet (a unit column, so the replacement can
        // never create a new dependency on the repaired prefix). Bounded
        // retries: pathological snapshots fall back to the crash basis.
        let lu = {
            let mut attempt = 0usize;
            loop {
                match factorize_basis_detailed(&self.cols, &basics, self.m) {
                    Ok(lu) => break lu,
                    Err(FactorizeError::NotSquare { .. }) => return Err(()),
                    Err(FactorizeError::Singular { col, pivoted }) => {
                        attempt += 1;
                        if attempt > 16 {
                            return Err(());
                        }
                        let replacement = (0..self.m)
                            .find(|&r| !pivoted[r] && !basics.contains(&(self.n_struct + r)));
                        let Some(r) = replacement else {
                            return Err(());
                        };
                        basics[col] = self.n_struct + r;
                    }
                }
            }
        };

        // Repaired statuses on scratch: warm nonbasics remapped against the
        // current bounds, artificials parked at zero, basics patched last.
        // Columns evicted by the singularity repair above fall through the
        // `Basic` arm to their initial nonbasic status.
        let mut status = vec![ColStatus::AtLower; self.n_total];
        for (j, &st) in warm.statuses().iter().enumerate() {
            status[j] = match st {
                BasisStatus::AtLower if self.lb[j].is_finite() => ColStatus::AtLower,
                BasisStatus::AtUpper if self.ub[j].is_finite() => ColStatus::AtUpper,
                _ => initial_status(self.lb[j], self.ub[j]),
            };
        }
        for (slot, &j) in basics.iter().enumerate() {
            status[j] = ColStatus::Basic(slot);
        }

        // Basic solution against the current RHS/bounds, still on scratch.
        // Artificial columns are nonbasic at zero here (unless re-pinned
        // basic above), so they contribute nothing to the residual.
        let mut resid = self.rhs.clone();
        for j in 0..self.art_offset {
            if matches!(status[j], ColStatus::Basic(_)) {
                continue;
            }
            let v = nonbasic_value(status[j], self.lb[j], self.ub[j]);
            if v != 0.0 {
                for (r, a) in self.cols.col(j) {
                    resid[r] -= a * v;
                }
            }
        }
        lu.ftran(&mut resid, &mut self.scratch);
        let xb = resid;
        if xb.iter().any(|x| !x.is_finite()) {
            return Err(());
        }

        // Commit.
        for i in 0..self.m {
            let aj = self.art_offset + i;
            self.lb[aj] = 0.0;
            self.ub[aj] = 0.0;
            self.cost_phase1[aj] = 0.0;
        }
        self.status = status;
        self.basis = basics;
        self.lu = lu;
        self.etas.clear();
        self.xb = xb;
        Ok(())
    }

    /// Optimizes from an installed warm basis. When the basic solution
    /// violates bounds (the usual case after the caller shifted the RHS or
    /// coefficients of a rolling-horizon model), primal feasibility is
    /// first restored with dual-simplex pivots, then the ordinary primal
    /// phase 2 certifies optimality. The result is only accepted when both
    /// succeed.
    ///
    /// # Errors
    ///
    /// `Err(())` when restoration stalled or the solver hit any error —
    /// the caller must rebuild and fall back to the cold two-phase solve.
    fn warm_optimize(&mut self) -> Result<(), ()> {
        self.restore_primal_feasibility()?;
        self.iterate(false).map_err(|_| ())
    }

    /// Dual-simplex feasibility restoration: repeatedly drives the most
    /// bound-violated basic variable onto its violated bound, choosing the
    /// entering column by the dual ratio test (smallest |reduced cost| per
    /// unit of pivot, largest pivot on ties). From a near-optimal warm
    /// basis this takes a handful of pivots; a stall (no usable pivot or
    /// too many steps) reports `Err` so the caller can solve cold instead.
    fn restore_primal_feasibility(&mut self) -> Result<(), ()> {
        const PIV_TOL: f64 = 1e-9;
        let tol = self.opts.feas_tol;
        let max_steps = 2 * self.m + 64;
        for _ in 0..max_steps {
            // Leaving row: most violated basic.
            let mut worst: Option<(usize, f64, f64)> = None; // slot, viol, target
            for slot in 0..self.m {
                let j = self.basis[slot];
                let (lo, hi) = self.basic_bounds(j);
                let x = self.xb[slot];
                if !x.is_finite() {
                    return Err(());
                }
                let (viol, target) = if x < lo - tol {
                    (lo - x, lo)
                } else if x > hi + tol {
                    (x - hi, hi)
                } else {
                    continue;
                };
                if worst.is_none_or(|(_, w, _)| viol > w) {
                    worst = Some((slot, viol, target));
                }
            }
            let Some((r, _, target)) = worst else {
                return Ok(()); // primal feasible
            };
            if self.iterations >= self.max_iterations {
                return Err(());
            }
            self.iterations += 1;

            // Row r of B⁻¹ (for pivot entries) and the simplex multipliers
            // (for reduced costs), via two BTRANs.
            self.work_y.iter_mut().for_each(|v| *v = 0.0);
            self.work_y[r] = 1.0;
            self.btran();
            let rho = self.work_y.clone();
            for slot in 0..self.m {
                self.work_y[slot] = self.cost[self.basis[slot]];
            }
            self.btran();

            // Entering column: dual ratio test. The required movement of
            // xb[r] is `delta_r = target − xb[r]`; entering q moving by
            // t·dir changes xb[r] by −t·dir·α_q, so q is eligible when
            // dir·α_q opposes delta_r.
            let delta_r = target - self.xb[r];
            let mut best: Option<(usize, f64, f64, f64)> = None; // q, dir, ratio, |alpha|
            for q in 0..self.art_offset {
                let st = self.status[q];
                if matches!(st, ColStatus::Basic(_)) || self.lb[q] == self.ub[q] {
                    continue;
                }
                let mut alpha = 0.0;
                let mut d = self.cost[q];
                for (row, a) in self.cols.col(q) {
                    alpha += rho[row] * a;
                    d -= self.work_y[row] * a;
                }
                if alpha.abs() <= PIV_TOL {
                    continue;
                }
                let dir = match st {
                    ColStatus::AtLower => 1.0,
                    ColStatus::AtUpper => -1.0,
                    ColStatus::FreeAtZero => {
                        if alpha * delta_r < 0.0 {
                            1.0
                        } else {
                            -1.0
                        }
                    }
                    ColStatus::Basic(_) => unreachable!(),
                };
                if dir * alpha * delta_r >= 0.0 {
                    continue; // moves xb[r] the wrong way
                }
                let ratio = d.abs() / alpha.abs();
                let better = match best {
                    None => true,
                    Some((_, _, br, ba)) => {
                        ratio < br - 1e-12 || (ratio <= br + 1e-12 && alpha.abs() > ba)
                    }
                };
                if better {
                    best = Some((q, dir, ratio, alpha.abs()));
                }
            }
            let Some((q, dir, _, alpha_abs)) = best else {
                return Err(()); // no usable pivot: let the cold solve decide
            };

            // w = B⁻¹·A_q, pivot magnitude re-derived through the eta file.
            self.work_w.iter_mut().for_each(|v| *v = 0.0);
            for (row, a) in self.cols.col(q) {
                self.work_w[row] = a;
            }
            self.ftran();
            let wr = self.work_w[r];
            if wr.abs() <= PIV_TOL {
                return Err(());
            }
            let t = delta_r / (-dir * wr);
            if !t.is_finite() || t < 0.0 {
                return Err(());
            }

            // Bound flip: when reaching the target would push the entering
            // variable past its own opposite bound, move it exactly there
            // instead of pivoting (standard bound-flipping dual ratio
            // test). The violation shrinks by |α|·span and the basis is
            // untouched; the next sweep picks up the remainder.
            let span = self.ub[q] - self.lb[q];
            if span.is_finite() && t > span {
                for s in 0..self.m {
                    self.xb[s] -= span * dir * self.work_w[s];
                }
                self.status[q] = match self.status[q] {
                    ColStatus::AtLower => ColStatus::AtUpper,
                    ColStatus::AtUpper => ColStatus::AtLower,
                    other => other,
                };
                debug_assert!(alpha_abs * span > 0.0);
                continue;
            }

            let leaving = self.basis[r];
            for s in 0..self.m {
                self.xb[s] -= t * dir * self.work_w[s];
            }
            self.xb[r] = nonbasic_value(self.status[q], self.lb[q], self.ub[q]) + dir * t;
            // The leaving variable lands exactly on its violated bound.
            let (lo, _hi) = self.basic_bounds(leaving);
            self.status[leaving] = if target == lo {
                if lo.is_finite() {
                    ColStatus::AtLower
                } else {
                    ColStatus::FreeAtZero
                }
            } else {
                ColStatus::AtUpper
            };
            self.status[q] = ColStatus::Basic(r);
            self.basis[r] = q;
            self.push_eta(r);
            if self.etas.len() >= self.opts.refactor_every {
                self.refactorize().map_err(|_| ())?;
            }
        }
        Err(())
    }

    /// Effective bounds of a basic column (artificials are frozen at zero).
    fn basic_bounds(&self, j: usize) -> (f64, f64) {
        if j >= self.art_offset {
            (0.0, 0.0)
        } else {
            (self.lb[j], self.ub[j])
        }
    }

    fn run(&mut self) -> Result<(), SolveError> {
        if self.m > 0 {
            // Phase 1: drive artificial infeasibility to zero.
            self.iterate(true)?;
            if self.infeasibility() > self.opts.feas_tol * 10.0 {
                return Err(SolveError::Infeasible);
            }
            // Freeze artificials at zero for phase 2.
            for i in 0..self.m {
                let aj = self.art_offset + i;
                self.lb[aj] = 0.0;
                self.ub[aj] = 0.0;
                if !matches!(self.status[aj], ColStatus::Basic(_)) {
                    self.status[aj] = ColStatus::AtLower;
                }
            }
        }
        // Phase 2: optimize the real objective.
        self.iterate(false)
    }

    fn infeasibility(&self) -> f64 {
        let mut s = 0.0;
        for (slot, &j) in self.basis.iter().enumerate() {
            if j >= self.art_offset {
                s += self.xb[slot].abs();
            }
        }
        s
    }

    /// Runs pivots until the phase objective is optimal.
    fn iterate(&mut self, phase1: bool) -> Result<(), SolveError> {
        let mut degen_streak = 0usize;
        loop {
            if phase1 && self.infeasibility() <= self.opts.feas_tol {
                return Ok(());
            }
            if self.iterations >= self.max_iterations {
                return Err(SolveError::IterationLimit);
            }
            self.iterations += 1;

            let bland = degen_streak >= self.opts.bland_after;
            let Some((q, dir)) = self.price(phase1, bland) else {
                return Ok(()); // phase optimal
            };

            // w = B⁻¹ · A_q
            self.work_w.iter_mut().for_each(|v| *v = 0.0);
            for (r, a) in self.cols.col(q) {
                self.work_w[r] = a;
            }
            self.ftran();

            if std::env::var_os("GC_LP_PARANOID").is_some() {
                if let Ok(lu) = factorize_basis(&self.cols, &self.basis, self.m) {
                    let mut check = vec![0.0; self.m];
                    for (r, a) in self.cols.col(q) {
                        check[r] = a;
                    }
                    let mut scratch = Vec::new();
                    lu.ftran(&mut check, &mut scratch);
                    let diff = check
                        .iter()
                        .zip(self.work_w.iter())
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0f64, f64::max);
                    if diff > 1e-6 {
                        let worst = check
                            .iter()
                            .zip(self.work_w.iter())
                            .enumerate()
                            .max_by(|a, b| {
                                let da = (a.1 .0 - a.1 .1).abs();
                                let db = (b.1 .0 - b.1 .1).abs();
                                da.partial_cmp(&db).unwrap()
                            })
                            .unwrap();
                        eprintln!(
                            "PARANOID iter {}: ftran drift {diff:.3e} q={q} (etas {}) worst slot {} fresh={} eta={}",
                            self.iterations,
                            self.etas.len(),
                            worst.0,
                            worst.1 .0,
                            worst.1 .1,
                        );
                        for (k, e) in self.etas.iter().enumerate() {
                            eprintln!(
                                "  eta {k}: slot {} pivot {:.6e} nnz {}",
                                e.slot,
                                e.pivot,
                                e.entries.len()
                            );
                        }
                        panic!("paranoid drift");
                    }
                } else {
                    eprintln!(
                        "PARANOID iter {}: current basis SINGULAR (etas {})",
                        self.iterations,
                        self.etas.len()
                    );
                    panic!("paranoid singular");
                }
            }

            let mut outcome = self.ratio_test(q, dir, bland);
            // A pivot that is tiny after a long eta chain is often pure
            // round-off; refactorize and re-derive before trusting it.
            if let RatioOutcome::Pivot { slot, .. } = outcome {
                if self.work_w[slot].abs() < 1e-7 && !self.etas.is_empty() {
                    self.refactorize()?;
                    self.work_w.iter_mut().for_each(|v| *v = 0.0);
                    for (r, a) in self.cols.col(q) {
                        self.work_w[r] = a;
                    }
                    self.ftran();
                    outcome = self.ratio_test(q, dir, bland);
                }
            }

            match outcome {
                RatioOutcome::Unbounded => {
                    return if phase1 {
                        Err(SolveError::Numerical("phase-1 ray".into()))
                    } else {
                        Err(SolveError::Unbounded)
                    };
                }
                RatioOutcome::BoundFlip(t) => {
                    // x_q jumps to its opposite bound; basics absorb the move.
                    let w = &self.work_w;
                    for slot in 0..self.m {
                        self.xb[slot] -= t * dir * w[slot];
                    }
                    self.status[q] = match self.status[q] {
                        ColStatus::AtLower => ColStatus::AtUpper,
                        ColStatus::AtUpper => ColStatus::AtLower,
                        s => s,
                    };
                    if t <= self.opts.feas_tol {
                        degen_streak += 1;
                    } else {
                        degen_streak = 0;
                    }
                }
                RatioOutcome::Pivot { slot, t, to_upper } => {
                    let leaving = self.basis[slot];
                    for s in 0..self.m {
                        self.xb[s] -= t * dir * self.work_w[s];
                    }
                    let entering_value =
                        nonbasic_value(self.status[q], self.lb[q], self.ub[q]) + dir * t;
                    self.xb[slot] = entering_value;
                    self.status[leaving] = if to_upper {
                        ColStatus::AtUpper
                    } else if self.lb[leaving].is_finite() {
                        ColStatus::AtLower
                    } else {
                        ColStatus::FreeAtZero
                    };
                    self.status[q] = ColStatus::Basic(slot);
                    self.basis[slot] = q;
                    self.push_eta(slot);
                    if t <= self.opts.feas_tol {
                        degen_streak += 1;
                    } else {
                        degen_streak = 0;
                    }
                    if self.etas.len() >= self.opts.refactor_every {
                        self.refactorize()?;
                    }
                }
            }
        }
    }

    /// Chooses an entering column; returns `(column, direction)`.
    fn price(&mut self, phase1: bool, bland: bool) -> Option<(usize, f64)> {
        // y = B⁻ᵀ g_B
        for slot in 0..self.m {
            let b = self.basis[slot];
            self.work_y[slot] = if phase1 {
                self.cost_phase1[b]
            } else {
                self.cost[b]
            };
        }
        self.btran();

        let g = if phase1 {
            &self.cost_phase1
        } else {
            &self.cost
        };
        let limit = if phase1 {
            self.n_total
        } else {
            self.art_offset
        };
        let mut best: Option<(usize, f64, f64)> = None; // (col, dir, score)
        for j in 0..limit {
            let st = self.status[j];
            if matches!(st, ColStatus::Basic(_)) {
                continue;
            }
            if self.lb[j] == self.ub[j] {
                continue; // fixed
            }
            let mut d = g[j];
            for (r, a) in self.cols.col(j) {
                d -= self.work_y[r] * a;
            }
            let (dir, score) = match st {
                ColStatus::AtLower => (1.0, -d),
                ColStatus::AtUpper => (-1.0, d),
                ColStatus::FreeAtZero => {
                    if d > 0.0 {
                        (-1.0, d)
                    } else {
                        (1.0, -d)
                    }
                }
                ColStatus::Basic(_) => unreachable!(),
            };
            if score > self.opts.opt_tol {
                if bland {
                    return Some((j, dir));
                }
                if best.is_none_or(|(_, _, s)| score > s) {
                    best = Some((j, dir, score));
                }
            }
        }
        best.map(|(j, dir, _)| (j, dir))
    }

    /// Bounded-variable ratio test for entering column `q` moving in `dir`.
    ///
    /// Two-pass (Harris-style): pass 1 finds the tightest ratio, pass 2
    /// picks, among slots whose ratio ties within a small feasibility
    /// window, the one with the largest pivot magnitude. Degenerate LPs tie
    /// at `t = 0` constantly, and always pivoting on the largest entry is
    /// what keeps the eta file and the basis well conditioned.
    fn ratio_test(&self, q: usize, dir: f64, bland: bool) -> RatioOutcome {
        const PIV_TOL: f64 = 1e-9;
        const TIE_TOL: f64 = 1e-7;
        let mut t_min = f64::INFINITY;
        for slot in 0..self.m {
            let delta = -dir * self.work_w[slot];
            if delta.abs() <= PIV_TOL {
                continue;
            }
            let b = self.basis[slot];
            let limit = if delta > 0.0 { self.ub[b] } else { self.lb[b] };
            if !limit.is_finite() {
                continue;
            }
            let t = ((limit - self.xb[slot]) / delta).max(0.0);
            if t < t_min {
                t_min = t;
            }
        }

        let mut leave: Option<(usize, bool)> = None;
        let mut t_chosen = t_min;
        if t_min.is_finite() {
            let mut best_piv = 0.0f64;
            for slot in 0..self.m {
                let delta = -dir * self.work_w[slot];
                if delta.abs() <= PIV_TOL {
                    continue;
                }
                let b = self.basis[slot];
                let (limit, to_upper) = if delta > 0.0 {
                    (self.ub[b], true)
                } else {
                    (self.lb[b], false)
                };
                if !limit.is_finite() {
                    continue;
                }
                let t = ((limit - self.xb[slot]) / delta).max(0.0);
                if t <= t_min + TIE_TOL {
                    let piv = self.work_w[slot].abs();
                    let better = match leave {
                        None => true,
                        Some((ls, _)) => {
                            if bland {
                                b < self.basis[ls]
                            } else {
                                piv > best_piv
                            }
                        }
                    };
                    if better {
                        best_piv = piv;
                        t_chosen = t;
                        leave = Some((slot, to_upper));
                    }
                }
            }
        }
        // Step by the chosen slot's own ratio so the leaving variable lands
        // exactly on its bound; other basics may overshoot by at most
        // TIE_TOL·|delta|, inside the feasibility tolerance.
        let t_best = t_chosen;

        // The entering variable may hit its own opposite bound first.
        let span = self.ub[q] - self.lb[q];
        let t_flip = if matches!(self.status[q], ColStatus::FreeAtZero) || !span.is_finite() {
            f64::INFINITY
        } else {
            span
        };

        if t_flip < t_best {
            return RatioOutcome::BoundFlip(t_flip);
        }
        match leave {
            None if t_flip.is_finite() => RatioOutcome::BoundFlip(t_flip),
            None => RatioOutcome::Unbounded,
            Some((slot, to_upper)) => RatioOutcome::Pivot {
                slot,
                t: t_best,
                to_upper,
            },
        }
    }

    /// FTRAN `work_w ← B⁻¹·work_w` through the factorization and eta file.
    fn ftran(&mut self) {
        self.lu.ftran(&mut self.work_w, &mut self.scratch);
        for eta in &self.etas {
            let t = self.work_w[eta.slot] / eta.pivot;
            if t != 0.0 {
                for &(i, v) in &eta.entries {
                    self.work_w[i] -= v * t;
                }
            }
            self.work_w[eta.slot] = t;
        }
    }

    /// BTRAN `work_y ← B⁻ᵀ·work_y` (etas in reverse, then the factors).
    fn btran(&mut self) {
        for eta in self.etas.iter().rev() {
            let mut s = self.work_y[eta.slot];
            for &(i, v) in &eta.entries {
                s -= v * self.work_y[i];
            }
            self.work_y[eta.slot] = s / eta.pivot;
        }
        self.lu.btran(&mut self.work_y, &mut self.scratch);
    }

    fn push_eta(&mut self, slot: usize) {
        let pivot = self.work_w[slot];
        let entries: Vec<(usize, f64)> = self
            .work_w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != slot && v.abs() > 1e-13)
            .map(|(i, &v)| (i, v))
            .collect();
        self.etas.push(Eta {
            slot,
            pivot,
            entries,
        });
    }

    fn refactorize(&mut self) -> Result<(), SolveError> {
        self.etas.clear();
        debug_assert!(
            {
                let mut b = self.basis.clone();
                b.sort_unstable();
                b.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate column in basis"
        );
        self.lu = factorize_basis(&self.cols, &self.basis, self.m)?;
        // Recompute basic values from scratch for accuracy.
        let mut resid = self.rhs.clone();
        for j in 0..self.n_total {
            if matches!(self.status[j], ColStatus::Basic(_)) {
                continue;
            }
            let v = nonbasic_value(self.status[j], self.lb[j], self.ub[j]);
            if v != 0.0 {
                for (r, a) in self.cols.col(j) {
                    resid[r] -= a * v;
                }
            }
        }
        self.work_w.copy_from_slice(&resid);
        self.lu.ftran(&mut self.work_w, &mut self.scratch);
        self.xb.copy_from_slice(&self.work_w);
        Ok(())
    }

    fn extract(&mut self, model: &Model) -> Solution {
        // A final refactorization sheds eta-file drift before reporting.
        if !self.etas.is_empty() {
            let _ = self.refactorize();
        }
        let mut values = vec![0.0; self.n_struct];
        for (j, value) in values.iter_mut().enumerate() {
            *value = match self.status[j] {
                ColStatus::Basic(slot) => self.xb[slot],
                st => nonbasic_value(st, self.lb[j], self.ub[j]),
            };
        }
        let objective = model.objective_value(&values);
        // Export the final basis (structural + slack columns) so callers
        // can warm-start re-solves of this model or of close neighbours.
        // Artificials still basic at zero (degenerate phase-1 leftovers)
        // are recorded by row so the re-installed basis stays square.
        let statuses: Vec<BasisStatus> = self.status[..self.art_offset]
            .iter()
            .map(|st| match st {
                ColStatus::Basic(_) => BasisStatus::Basic,
                ColStatus::AtLower => BasisStatus::AtLower,
                ColStatus::AtUpper => BasisStatus::AtUpper,
                ColStatus::FreeAtZero => BasisStatus::Free,
            })
            .collect();
        let artificial_rows: Vec<usize> = self
            .basis
            .iter()
            .filter(|&&j| j >= self.art_offset)
            .map(|&j| j - self.art_offset)
            .collect();
        Solution {
            objective,
            values,
            iterations: self.iterations,
            basis: Some(Basis::with_artificials(statuses, artificial_rows)),
            warm_started: false,
        }
    }
}

enum RatioOutcome {
    Unbounded,
    BoundFlip(f64),
    Pivot { slot: usize, t: f64, to_upper: bool },
}

fn initial_status(lb: f64, ub: f64) -> ColStatus {
    match (lb.is_finite(), ub.is_finite()) {
        (true, true) => {
            if lb.abs() <= ub.abs() {
                ColStatus::AtLower
            } else {
                ColStatus::AtUpper
            }
        }
        (true, false) => ColStatus::AtLower,
        (false, true) => ColStatus::AtUpper,
        (false, false) => ColStatus::FreeAtZero,
    }
}

fn nonbasic_value(status: ColStatus, lb: f64, ub: f64) -> f64 {
    match status {
        ColStatus::AtLower => lb,
        ColStatus::AtUpper => ub,
        ColStatus::FreeAtZero => 0.0,
        ColStatus::Basic(_) => unreachable!("basic column has no implied value"),
    }
}

fn factorize_basis(cols: &ColMatrix, basis: &[usize], m: usize) -> Result<SparseLu, SolveError> {
    let mut b = ColMatrix::new(m);
    for &j in basis {
        b.push_col(cols.col(j));
    }
    SparseLu::factorize(&b)
}

fn factorize_basis_detailed(
    cols: &ColMatrix,
    basis: &[usize],
    m: usize,
) -> Result<SparseLu, FactorizeError> {
    let mut b = ColMatrix::new(m);
    for &j in basis {
        b.push_col(cols.col(j));
    }
    SparseLu::factorize_detailed(&b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn solve(m: &Model) -> Solution {
        RevisedSimplex::new(SimplexOptions::default())
            .solve(m)
            .expect("solve")
    }

    #[test]
    fn textbook_max_problem() {
        // max 3x + 5y (as min of the negation), the classic Dantzig example.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY, -3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, -5.0);
        m.add_con("c1", [(x, 1.0)], Sense::Le, 4.0);
        m.add_con("c2", [(y, 2.0)], Sense::Le, 12.0);
        m.add_con("c3", [(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        let s = solve(&m);
        assert!((s.objective + 36.0).abs() < 1e-7);
        assert!((s[x] - 2.0).abs() < 1e-7);
        assert!((s[y] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + 2y  s.t.  x + y = 10, x >= 3, y >= 2
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 2.0);
        m.add_con("sum", [(x, 1.0), (y, 1.0)], Sense::Eq, 10.0);
        m.add_con("xmin", [(x, 1.0)], Sense::Ge, 3.0);
        m.add_con("ymin", [(y, 1.0)], Sense::Ge, 2.0);
        let s = solve(&m);
        assert!((s[x] - 8.0).abs() < 1e-7);
        assert!((s[y] - 2.0).abs() < 1e-7);
        assert!((s.objective - 12.0).abs() < 1e-7);
    }

    #[test]
    fn upper_bounds_and_bound_flips() {
        // min -x - y with x,y in [0,1] and x + y <= 1.5
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0, -1.0);
        let y = m.add_var("y", 0.0, 1.0, -1.0);
        m.add_con("cap", [(x, 1.0), (y, 1.0)], Sense::Le, 1.5);
        let s = solve(&m);
        assert!((s.objective + 1.5).abs() < 1e-7);
    }

    #[test]
    fn free_variable() {
        // min |style| problem: x free, minimize x s.t. x >= -5.
        let mut m = Model::new();
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_con("lo", [(x, 1.0)], Sense::Ge, -5.0);
        let s = solve(&m);
        assert!((s[x] + 5.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_con("hi", [(x, 1.0)], Sense::Ge, 2.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY, -1.0);
        m.add_con("lo", [(x, 1.0)], Sense::Ge, 0.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn negative_rhs_rows() {
        // Rows with negative residual exercise the sign-adapted artificials.
        let mut m = Model::new();
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_con("eq", [(x, 1.0)], Sense::Eq, -7.0);
        let s = solve(&m);
        assert!((s[x] + 7.0).abs() < 1e-7);
    }

    #[test]
    fn fixed_variables_are_respected() {
        let mut m = Model::new();
        let x = m.add_var("x", 3.0, 3.0, 10.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_con("c", [(x, 1.0), (y, 1.0)], Sense::Ge, 5.0);
        let s = solve(&m);
        assert!((s[x] - 3.0).abs() < 1e-9);
        assert!((s[y] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the optimum.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY, -1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, -1.0);
        for k in 0..12 {
            let a = 1.0 + (k as f64) * 1e-9;
            m.add_con(format!("c{k}"), [(x, a), (y, 1.0)], Sense::Le, 10.0);
        }
        let s = solve(&m);
        assert!(s.objective <= -10.0 + 1e-6);
    }

    #[test]
    fn no_constraints_uses_bounds() {
        let mut m = Model::new();
        let x = m.add_var("x", -2.0, 5.0, 1.0);
        let y = m.add_var("y", -2.0, 5.0, -1.0);
        let s = solve(&m);
        assert!((s[x] + 2.0).abs() < 1e-9);
        assert!((s[y] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn transport_problem() {
        // 2 plants, 3 markets; classic transportation LP with known optimum.
        let supply = [350.0, 600.0];
        let demand = [325.0, 300.0, 275.0];
        let unit_cost = [[2.5, 1.7, 1.8], [2.5, 1.8, 1.4]];
        let mut m = Model::new();
        let mut ship = [[None; 3]; 2];
        for p in 0..2 {
            for q in 0..3 {
                ship[p][q] =
                    Some(m.add_var(format!("s{p}{q}"), 0.0, f64::INFINITY, unit_cost[p][q]));
            }
        }
        for p in 0..2 {
            m.add_con(
                format!("supply{p}"),
                (0..3).map(|q| (ship[p][q].unwrap(), 1.0)),
                Sense::Le,
                supply[p],
            );
        }
        for q in 0..3 {
            m.add_con(
                format!("demand{q}"),
                (0..2).map(|p| (ship[p][q].unwrap(), 1.0)),
                Sense::Ge,
                demand[q],
            );
        }
        let s = solve(&m);
        // Optimal: plant0 -> m1 (300) + m0 (50); plant1 -> m0 (275) + m2 (275).
        let expected = 300.0 * 1.7 + 50.0 * 2.5 + 275.0 * 2.5 + 275.0 * 1.4;
        assert!(
            (s.objective - expected).abs() < 1e-6,
            "got {} want {expected}",
            s.objective
        );
        crate::validate::assert_feasible(&m, &s.values, 1e-7);
        // Cross-check against the independent dense solver.
        let d = crate::dense::DenseSimplex::new().solve(&m).unwrap();
        assert!((d.objective - s.objective).abs() < 1e-6);
    }

    #[test]
    fn many_refactorizations() {
        // A chain problem long enough to force several refactorization
        // cycles with the default interval.
        let n = 400;
        let mut m = Model::new();
        let mut prev = None;
        let mut vars = Vec::new();
        for i in 0..n {
            let x = m.add_var(
                format!("x{i}"),
                0.0,
                10.0,
                if i % 3 == 0 { 1.0 } else { -1.0 },
            );
            if let Some(p) = prev {
                m.add_con(format!("link{i}"), [(p, 1.0), (x, -1.0)], Sense::Le, 1.0);
            }
            vars.push(x);
            prev = Some(x);
        }
        m.add_con("anchor", [(vars[0], 1.0)], Sense::Ge, 1.0);
        let s = solve(&m);
        // Every x_i free to sit at 10 except the minimized thirds which sit
        // as low as the chain allows; just check feasibility + finiteness.
        assert!(s.objective.is_finite());
        crate::validate::assert_feasible(&m, &s.values, 1e-6);
    }
}
