//! Bounded-variable revised simplex with sparse LU basis factorization.
//!
//! This is the production LP solver of the workspace. It works on the
//! computational form `A·x + s = b`, `l ≤ x ≤ u`, where each constraint row
//! gets a slack whose bounds encode the row sense, and phase 1 starts from an
//! all-artificial basis. Between refactorizations the basis inverse is
//! maintained as a product of eta matrices; every few dozen pivots the basis
//! is refactorized from scratch with [`crate::lu::SparseLu`] and the basic
//! solution is recomputed to shed accumulated error.
//!
//! # Pricing
//!
//! Nonbasic reduced costs are maintained *incrementally*: each pivot updates
//! them from the pivot row `αᵣ = ρᵀ·A` (with `ρ = B⁻ᵀ·eᵣ` a hyper-sparse
//! unit BTRAN, and the gather done by sparse row access over a CSR mirror of
//! the column matrix), so choosing an entering column is a scan of a dense
//! array instead of an `O(nnz(A))` rescan plus BTRAN per iteration. The
//! entering choice itself is governed by [`PricingMode`]: devex
//! reference-framework pricing by default, with classic Dantzig and
//! candidate-section partial pricing available. Degenerate stalls switch to
//! Bland's rule, which guarantees termination; optimality is only ever
//! declared on freshly recomputed (exact) reduced costs.

// Index loops here sweep multiple parallel arrays of the numerical kernel;
// iterator rewrites obscure the linear algebra.
#![allow(clippy::needless_range_loop)]
use crate::lu::{ColMatrix, FactorizeError, RowMatrix, SparseLu};
use crate::model::{Model, Sense, Solution, SolveError};
use crate::wallclock::Stopwatch;
use serde::{Deserialize, Serialize};

/// Status of one column in an exported [`Basis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BasisStatus {
    /// In the basis (its value is determined by the basic solve).
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Nonbasic free column parked at zero.
    Free,
}

/// A snapshot of the simplex basis at the end of a solve: one status per
/// structural variable followed by one per constraint slack (in model
/// order). Feed it back via [`RevisedSimplex::solve_warm`] to warm-start a
/// re-solve of the same model — or of a *neighbouring* model with the same
/// shape (identical variable/constraint counts, possibly different bounds,
/// coefficients, RHS, or objective). The solver validates the snapshot
/// against the new model (dimension check, bound repair, singularity check
/// via [`crate::lu::SparseLu`], primal feasibility) and silently falls back
/// to the cold crash basis when it cannot be used, so warm starts never
/// change *what* is solved — only how fast.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Basis {
    statuses: Vec<BasisStatus>,
    /// Rows whose *artificial* column was still (degenerately) basic at
    /// zero when the snapshot was taken. Re-installing those unit columns
    /// keeps the basis square without re-running phase 1.
    artificial_rows: Vec<usize>,
}

impl Basis {
    /// Builds a snapshot from raw statuses (structural variables first,
    /// then one slack per constraint).
    pub fn from_statuses(statuses: Vec<BasisStatus>) -> Self {
        Self {
            statuses,
            artificial_rows: Vec::new(),
        }
    }

    /// Builds a snapshot that also pins the artificial columns of
    /// `artificial_rows` into the basis (degenerate leftovers of phase 1).
    pub fn with_artificials(statuses: Vec<BasisStatus>, artificial_rows: Vec<usize>) -> Self {
        Self {
            statuses,
            artificial_rows,
        }
    }

    /// The per-column statuses (structural variables, then slacks).
    pub fn statuses(&self) -> &[BasisStatus] {
        &self.statuses
    }

    /// Rows whose artificial column is part of the basis (usually empty).
    pub fn artificial_rows(&self) -> &[usize] {
        &self.artificial_rows
    }

    /// Number of columns covered (num_vars + num_cons of the source model).
    pub fn len(&self) -> usize {
        self.statuses.len()
    }

    /// `true` for the empty model's basis.
    pub fn is_empty(&self) -> bool {
        self.statuses.is_empty()
    }

    /// Number of basic columns recorded, including pinned artificials
    /// (matches the source model's row count).
    pub fn num_basic(&self) -> usize {
        self.statuses
            .iter()
            .filter(|s| matches!(s, BasisStatus::Basic))
            .count()
            + self.artificial_rows.len()
    }
}

/// Entering-column pricing rule for the revised simplex.
///
/// All modes share the same incrementally maintained reduced costs and the
/// same Bland's-rule anti-cycling escape; they differ only in how the next
/// entering column is chosen from those reduced costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PricingMode {
    /// Devex reference-framework pricing: columns are ranked by
    /// `d²/w` where the weight `w` approximates the steepest-edge norm and
    /// is updated per pivot from the pivot row. Weights persist across
    /// refactorizations (resetting them there was measured to cost
    /// iterations) and restart from 1 at phase entry and after a
    /// singular-basis repair. Usually the fewest iterations; the default.
    #[default]
    Devex,
    /// Classic Dantzig pricing: most negative reduced cost.
    Dantzig,
    /// Candidate-section partial pricing: scan a rotating section of the
    /// columns and take the best (Dantzig-scored) eligible candidate in
    /// the first section that has any, wrapping through all sections
    /// before concluding none exists. Bounds per-iteration pricing work on
    /// very wide models.
    Partial,
}

/// Per-solve counters of the revised simplex, reported in
/// [`crate::Solution::stats`] so callers can see where the time went.
///
/// Equality compares the deterministic pivot/solve counters only:
/// `pricing_ns` is measured wall time and is excluded, so two replays of
/// the same solve compare equal even though their clocks differ.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SolveStats {
    /// Simplex iterations (phase 1 + phase 2 + dual restoration), including
    /// any discarded warm attempt that fell back to a cold solve.
    pub iterations: usize,
    /// Basis refactorizations (includes the final accuracy refactorization
    /// before extraction).
    pub refactorizations: usize,
    /// FTRAN solves (`B⁻¹·a`) performed.
    pub ftrans: usize,
    /// BTRAN solves (`B⁻ᵀ·y`) performed, dense and unit-vector alike.
    pub btrans: usize,
    /// Wall time spent pricing: maintaining reduced costs/devex weights and
    /// selecting entering columns.
    pub pricing_ns: u64,
}

impl SolveStats {
    /// Adds `other`'s counters into `self` (used to carry the work of a
    /// discarded warm attempt into the reported totals).
    pub fn absorb(&mut self, other: &SolveStats) {
        self.iterations += other.iterations;
        self.refactorizations += other.refactorizations;
        self.ftrans += other.ftrans;
        self.btrans += other.btrans;
        self.pricing_ns += other.pricing_ns;
    }

    /// Pricing time in milliseconds.
    pub fn pricing_ms(&self) -> f64 {
        self.pricing_ns as f64 / 1e6
    }
}

impl PartialEq for SolveStats {
    fn eq(&self, other: &Self) -> bool {
        self.iterations == other.iterations
            && self.refactorizations == other.refactorizations
            && self.ftrans == other.ftrans
            && self.btrans == other.btrans
    }
}

impl Eq for SolveStats {}

/// Tuning knobs for [`RevisedSimplex`].
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Hard cap on simplex iterations across both phases. `0` means
    /// auto-scale with problem size.
    pub max_iterations: usize,
    /// Primal feasibility tolerance (bound violations up to this are
    /// tolerated).
    pub feas_tol: f64,
    /// Dual feasibility (optimality) tolerance on reduced costs.
    pub opt_tol: f64,
    /// Refactorize the basis after this many eta updates.
    pub refactor_every: usize,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub bland_after: usize,
    /// Entering-column selection rule (see [`PricingMode`]).
    pub pricing: PricingMode,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self {
            max_iterations: 0,
            feas_tol: 1e-7,
            opt_tol: 1e-7,
            refactor_every: 64,
            // Bland's rule is the last-resort anti-cycling escape, not a
            // degeneracy strategy: devex pricing walks degenerate plateaus
            // productively (the battery-chain LPs take hundreds of zero-step
            // pivots on the way to the optimum), while Bland crawls. Engage
            // it only after a pathological streak.
            bland_after: 1000,
            pricing: PricingMode::default(),
        }
    }
}

/// The solver object; construct with options, then call
/// [`RevisedSimplex::solve`].
#[derive(Debug, Clone, Default)]
pub struct RevisedSimplex {
    options: SimplexOptions,
}

impl RevisedSimplex {
    /// Creates a solver with the given options.
    pub fn new(options: SimplexOptions) -> Self {
        Self { options }
    }

    /// Solves the LP relaxation of `model`.
    ///
    /// # Errors
    ///
    /// See [`Model::solve`].
    pub fn solve(&self, model: &Model) -> Result<Solution, SolveError> {
        self.solve_warm(model, None)
    }

    /// Solves the LP relaxation of `model`, optionally warm-starting from a
    /// basis exported by a previous [`Solution`].
    ///
    /// The warm basis is repaired against the model's current bounds and
    /// refactorized, with singular basic sets repaired column-by-column
    /// (dependent columns swapped for uncovered-row slacks). A basis whose
    /// basic solution violates bounds — routine after a rolling-horizon
    /// caller shifts the model's RHS or coefficients in place — is driven
    /// back to primal feasibility by dual-simplex pivots before ordinary
    /// phase 2 certifies optimality. If installation or restoration fails,
    /// the solver silently rebuilds and runs the cold two-phase path, so
    /// the result is always identical (up to tolerances) to a cold solve.
    ///
    /// # Errors
    ///
    /// See [`Model::solve`].
    pub fn solve_warm(&self, model: &Model, warm: Option<&Basis>) -> Result<Solution, SolveError> {
        model.validate()?;
        let mut w = Worker::build(model, &self.options)?;
        let mut warm_installed = false;
        if let Some(basis) = warm {
            // Validate-then-commit: a rejected basis leaves the cold
            // worker untouched, so no rebuild is needed on failure.
            warm_installed = w.try_install_basis(basis).is_ok();
        }
        // Work burned in a warm attempt that later falls back is still
        // real work; carry it into the reported counters.
        let mut discarded = SolveStats::default();
        if warm_installed {
            // Phase 2 straight from the installed basis; dual-simplex
            // restoration recovers primal feasibility when the snapshot
            // doesn't fit the current RHS. Any failure rebuilds and runs
            // cold — warm starts never change *what* is solved.
            if w.warm_optimize().is_err() {
                discarded = w.stats();
                w = Worker::build(model, &self.options)?;
                warm_installed = false;
                w.run()?;
            }
        } else {
            w.run()?;
        }
        let mut sol = w.extract(model);
        sol.warm_started = warm_installed;
        sol.stats.absorb(&discarded);
        sol.iterations = sol.stats.iterations;
        Ok(sol)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColStatus {
    Basic(usize),
    AtLower,
    AtUpper,
    /// Free variable currently parked at zero.
    FreeAtZero,
}

#[derive(Debug)]
struct Eta {
    slot: usize,
    pivot: f64,
    /// Off-pivot entries `(slot, value)` of the transformed entering column.
    entries: Vec<(usize, f64)>,
}

/// Partial pricing scans at least this many columns per section.
const PARTIAL_SECTION_MIN: usize = 256;

struct Worker<'a> {
    opts: &'a SimplexOptions,
    m: usize,
    n_struct: usize,
    n_total: usize,
    art_offset: usize,
    cols: ColMatrix,
    /// CSR mirror of `cols` for pivot-row gathers (`αᵣ = ρᵀ·A` by sparse
    /// row access instead of scanning every column).
    rows: RowMatrix,
    lb: Vec<f64>,
    ub: Vec<f64>,
    cost: Vec<f64>,
    cost_phase1: Vec<f64>,
    rhs: Vec<f64>,
    status: Vec<ColStatus>,
    basis: Vec<usize>,
    xb: Vec<f64>,
    lu: SparseLu,
    etas: Vec<Eta>,
    scratch: Vec<f64>,
    work_y: Vec<f64>,
    work_w: Vec<f64>,
    /// Unit-BTRAN output `ρ = B⁻ᵀ·eᵣ` (row `r` of the basis inverse).
    work_rho: Vec<f64>,
    /// Dense pivot-row workspace, reset sparsely via `alpha_touched`.
    work_alpha: Vec<f64>,
    alpha_mark: Vec<bool>,
    alpha_touched: Vec<usize>,
    /// Maintained reduced costs of every column (basic entries are 0).
    d: Vec<f64>,
    /// Devex reference-framework weights.
    devex_w: Vec<f64>,
    /// `d` must be recomputed from scratch before the next pricing scan
    /// (set after refactorization, phase changes, and drift detection).
    d_stale: bool,
    /// `d` holds exactly recomputed values (no incremental updates since
    /// the last full recompute). Optimality is only declared when true.
    d_exact: bool,
    /// Which phase's costs `d` was last computed for.
    d_phase1: bool,
    /// Columns subject to pricing for the current phase (`n_total` in
    /// phase 1, `art_offset` in phase 2).
    n_priced: usize,
    /// Rotating cursor of candidate-section partial pricing.
    part_cursor: usize,
    /// `GC_LP_PARANOID` was set at solver construction (env var read once,
    /// not per iteration).
    paranoid: bool,
    iterations: usize,
    max_iterations: usize,
    n_refactor: usize,
    n_ftran: usize,
    n_btran: usize,
    pricing_ns: u64,
}

impl<'a> Worker<'a> {
    fn build(model: &Model, opts: &'a SimplexOptions) -> Result<Self, SolveError> {
        let m = model.num_cons();
        let n_struct = model.num_vars();
        let art_offset = n_struct + m;
        let n_total = n_struct + 2 * m;

        let mut cols = ColMatrix::new(m);
        let mut lb = Vec::with_capacity(n_total);
        let mut ub = Vec::with_capacity(n_total);
        let mut cost = Vec::with_capacity(n_total);

        // Structural columns.
        let mut by_var: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_struct];
        for (i, con) in model.cons.iter().enumerate() {
            for &(v, c) in &con.terms {
                by_var[v.index()].push((i, c));
            }
        }
        for (j, var) in model.vars.iter().enumerate() {
            cols.push_col(by_var[j].iter().copied());
            lb.push(var.lb);
            ub.push(var.ub);
            cost.push(var.obj);
        }
        // Slack columns: row sense becomes slack bounds.
        for (i, con) in model.cons.iter().enumerate() {
            cols.push_col([(i, 1.0)]);
            let (l, u) = match con.sense {
                Sense::Le => (0.0, f64::INFINITY),
                Sense::Ge => (f64::NEG_INFINITY, 0.0),
                Sense::Eq => (0.0, 0.0),
            };
            lb.push(l);
            ub.push(u);
            cost.push(0.0);
        }
        // Artificial columns (bounds fixed after the initial residual is
        // known).
        for i in 0..m {
            cols.push_col([(i, 1.0)]);
            lb.push(0.0);
            ub.push(0.0);
            cost.push(0.0);
        }

        let rhs: Vec<f64> = model.cons.iter().map(|c| c.rhs).collect();

        // Nonbasic starting point: every structural/slack column at the
        // finite bound nearest zero, free columns parked at zero.
        let mut status = vec![ColStatus::AtLower; n_total];
        for j in 0..art_offset {
            status[j] = initial_status(lb[j], ub[j]);
        }

        // Residual of the nonbasic point decides artificial orientation.
        let mut resid = rhs.clone();
        for j in 0..art_offset {
            let v = nonbasic_value(status[j], lb[j], ub[j]);
            if v != 0.0 {
                for (r, a) in cols.col(j) {
                    resid[r] -= a * v;
                }
            }
        }
        // Crash basis: each row is covered by its own slack when the slack's
        // bounds can absorb the residual (the row starts feasible), and by a
        // sign-oriented artificial only otherwise. On the siting LPs almost
        // every row has zero residual at the nonbasic point, so phase 1
        // starts with a handful of artificials instead of one per row.
        let mut cost_phase1 = vec![0.0; n_total];
        let mut basis = Vec::with_capacity(m);
        let mut xb = Vec::with_capacity(m);
        for (i, &r) in resid.iter().enumerate() {
            let sj = n_struct + i;
            if lb[sj] <= r && r <= ub[sj] {
                status[sj] = ColStatus::Basic(i);
                basis.push(sj);
            } else {
                let aj = art_offset + i;
                if r >= 0.0 {
                    lb[aj] = 0.0;
                    ub[aj] = f64::INFINITY;
                    cost_phase1[aj] = 1.0;
                } else {
                    lb[aj] = f64::NEG_INFINITY;
                    ub[aj] = 0.0;
                    cost_phase1[aj] = -1.0;
                }
                status[aj] = ColStatus::Basic(i);
                basis.push(aj);
            }
            xb.push(r);
        }

        let lu = factorize_basis(&cols, &basis, m)?;

        let max_iterations = if opts.max_iterations == 0 {
            (20 * (m + n_struct)).max(2_000)
        } else {
            opts.max_iterations
        };

        let rows = RowMatrix::from_cols(&cols);

        Ok(Worker {
            opts,
            m,
            n_struct,
            n_total,
            art_offset,
            cols,
            rows,
            lb,
            ub,
            cost,
            cost_phase1,
            rhs,
            status,
            basis,
            xb,
            lu,
            etas: Vec::new(),
            scratch: Vec::new(),
            work_y: vec![0.0; m],
            work_w: vec![0.0; m],
            work_rho: vec![0.0; m],
            work_alpha: vec![0.0; n_total],
            alpha_mark: vec![false; n_total],
            alpha_touched: Vec::new(),
            d: vec![0.0; n_total],
            devex_w: vec![1.0; n_total],
            d_stale: true,
            d_exact: false,
            d_phase1: false,
            n_priced: n_total,
            part_cursor: 0,
            paranoid: std::env::var_os("GC_LP_PARANOID").is_some(),
            iterations: 0,
            max_iterations,
            n_refactor: 0,
            n_ftran: 0,
            n_btran: 0,
            pricing_ns: 0,
        })
    }

    fn stats(&self) -> SolveStats {
        SolveStats {
            iterations: self.iterations,
            refactorizations: self.n_refactor,
            ftrans: self.n_ftran,
            btrans: self.n_btran,
            pricing_ns: self.pricing_ns,
        }
    }

    /// Attempts to install an exported warm basis over the freshly built
    /// (cold) worker state. Validate-then-commit: all checks run on
    /// scratch state, and `self` is only mutated once the basis is proven
    /// usable — a failed attempt leaves the cold worker intact, so the
    /// caller falls straight through to the crash-basis solve with no
    /// rebuild.
    ///
    /// The snapshot is *repaired* rather than trusted: nonbasic statuses
    /// that no longer match the model's bounds are remapped, and a
    /// singular basic set is repaired column-by-column against the LU
    /// factorization. The recomputed basic solution may violate bounds —
    /// [`Worker::warm_optimize`] recovers feasibility by bound shifting.
    fn try_install_basis(&mut self, warm: &Basis) -> Result<(), ()> {
        if warm.statuses().len() != self.art_offset {
            return Err(()); // different model shape
        }
        let mut basics = Vec::with_capacity(self.m);
        for (j, &st) in warm.statuses().iter().enumerate() {
            if st == BasisStatus::Basic {
                basics.push(j);
            }
        }
        // Degenerate phase-1 leftovers: re-pin the recorded artificial unit
        // columns (at value 0) so the basis stays square.
        for &r in warm.artificial_rows() {
            if r >= self.m {
                return Err(());
            }
            basics.push(self.art_offset + r);
        }
        if basics.len() != self.m {
            return Err(()); // malformed snapshot; the crash basis handles it
        }
        // Factorize, repairing singularity the way production solvers do:
        // a column the LU proves dependent is swapped for the slack of a
        // row that has no pivot yet (a unit column, so the replacement can
        // never create a new dependency on the repaired prefix). Bounded
        // retries: pathological snapshots fall back to the crash basis.
        let lu = {
            let mut attempt = 0usize;
            loop {
                match factorize_basis_detailed(&self.cols, &basics, self.m) {
                    Ok(lu) => break lu,
                    Err(FactorizeError::NotSquare { .. }) => return Err(()),
                    Err(FactorizeError::Singular { col, pivoted }) => {
                        attempt += 1;
                        if attempt > 16 {
                            return Err(());
                        }
                        let replacement = (0..self.m)
                            .find(|&r| !pivoted[r] && !basics.contains(&(self.n_struct + r)));
                        let Some(r) = replacement else {
                            return Err(());
                        };
                        basics[col] = self.n_struct + r;
                    }
                }
            }
        };

        // Repaired statuses on scratch: warm nonbasics remapped against the
        // current bounds, artificials parked at zero, basics patched last.
        // Columns evicted by the singularity repair above fall through the
        // `Basic` arm to their initial nonbasic status.
        let mut status = vec![ColStatus::AtLower; self.n_total];
        for (j, &st) in warm.statuses().iter().enumerate() {
            status[j] = match st {
                BasisStatus::AtLower if self.lb[j].is_finite() => ColStatus::AtLower,
                BasisStatus::AtUpper if self.ub[j].is_finite() => ColStatus::AtUpper,
                _ => initial_status(self.lb[j], self.ub[j]),
            };
        }
        for (slot, &j) in basics.iter().enumerate() {
            status[j] = ColStatus::Basic(slot);
        }

        // Basic solution against the current RHS/bounds, still on scratch.
        // Artificial columns are nonbasic at zero here (unless re-pinned
        // basic above), so they contribute nothing to the residual.
        let mut resid = self.rhs.clone();
        for j in 0..self.art_offset {
            if matches!(status[j], ColStatus::Basic(_)) {
                continue;
            }
            let v = nonbasic_value(status[j], self.lb[j], self.ub[j]);
            if v != 0.0 {
                for (r, a) in self.cols.col(j) {
                    resid[r] -= a * v;
                }
            }
        }
        lu.ftran(&mut resid, &mut self.scratch);
        let xb = resid;
        if xb.iter().any(|x| !x.is_finite()) {
            return Err(());
        }

        // Commit.
        for i in 0..self.m {
            let aj = self.art_offset + i;
            self.lb[aj] = 0.0;
            self.ub[aj] = 0.0;
            self.cost_phase1[aj] = 0.0;
        }
        self.status = status;
        self.basis = basics;
        self.lu = lu;
        self.etas.clear();
        self.xb = xb;
        self.d_stale = true;
        Ok(())
    }

    /// Optimizes from an installed warm basis. When the basic solution
    /// violates bounds (the usual case after the caller shifted the RHS or
    /// coefficients of a rolling-horizon model), primal feasibility is
    /// first restored with dual-simplex pivots, then the ordinary primal
    /// phase 2 certifies optimality. The result is only accepted when both
    /// succeed.
    ///
    /// # Errors
    ///
    /// `Err(())` when restoration stalled or the solver hit any error —
    /// the caller must rebuild and fall back to the cold two-phase solve.
    fn warm_optimize(&mut self) -> Result<(), ()> {
        self.restore_primal_feasibility(false)?;
        self.iterate(false).map_err(|_| ())
    }

    /// Dual-simplex feasibility restoration: repeatedly drives the most
    /// bound-violated basic variable onto its violated bound, choosing the
    /// entering column by the dual ratio test (smallest |reduced cost| per
    /// unit of pivot, largest pivot on ties). Reduced costs come from the
    /// maintained array; candidate pivots come from the sparse pivot row,
    /// so only columns the row actually touches are examined. From a
    /// near-optimal warm basis this takes a handful of pivots; a stall (no
    /// usable pivot or too many steps) reports `Err` so the caller can
    /// solve cold instead.
    fn restore_primal_feasibility(&mut self, phase1: bool) -> Result<(), ()> {
        const PIV_TOL: f64 = 1e-9;
        let tol = self.opts.feas_tol;
        let max_steps = 2 * self.m + 64;
        for _ in 0..max_steps {
            // Leaving row: most violated basic. In phase 1 the artificials
            // keep their relaxed sign bounds — their infeasibility is the
            // primal phase-1 objective, not a violation to repair here.
            let mut worst: Option<(usize, f64, f64)> = None; // slot, viol, target
            for slot in 0..self.m {
                let j = self.basis[slot];
                let (lo, hi) = if phase1 {
                    (self.lb[j], self.ub[j])
                } else {
                    self.basic_bounds(j)
                };
                let x = self.xb[slot];
                if !x.is_finite() {
                    return Err(());
                }
                let (viol, target) = if x < lo - tol {
                    (lo - x, lo)
                } else if x > hi + tol {
                    (x - hi, hi)
                } else {
                    continue;
                };
                if worst.is_none_or(|(_, w, _)| viol > w) {
                    worst = Some((slot, viol, target));
                }
            }
            let Some((r, _, target)) = worst else {
                return Ok(()); // primal feasible
            };
            if self.iterations >= self.max_iterations {
                return Err(());
            }
            self.iterations += 1;

            let t0 = Stopwatch::start();
            if self.d_stale || self.d_phase1 != phase1 {
                self.compute_reduced_costs(phase1);
            }
            // Row r of B⁻¹ and the pivot row αᵣ = ρᵀ·A, via one
            // hyper-sparse unit BTRAN plus a CSR row gather.
            self.pivot_row(r);
            self.pricing_ns += t0.elapsed_ns();

            // Entering column: dual ratio test over the pivot row's
            // nonzeros. The required movement of xb[r] is `delta_r =
            // target − xb[r]`; entering q moving by t·dir changes xb[r] by
            // −t·dir·α_q, so q is eligible when dir·α_q opposes delta_r.
            let delta_r = target - self.xb[r];
            let mut best: Option<(usize, f64, f64, f64)> = None; // q, dir, ratio, |alpha|
            for idx in 0..self.alpha_touched.len() {
                let q = self.alpha_touched[idx];
                if q >= self.art_offset {
                    continue;
                }
                let st = self.status[q];
                if matches!(st, ColStatus::Basic(_)) || self.lb[q] == self.ub[q] {
                    continue;
                }
                let alpha = self.work_alpha[q];
                if alpha.abs() <= PIV_TOL {
                    continue;
                }
                let d = self.d[q];
                let dir = match st {
                    ColStatus::AtLower => 1.0,
                    ColStatus::AtUpper => -1.0,
                    ColStatus::FreeAtZero => {
                        if alpha * delta_r < 0.0 {
                            1.0
                        } else {
                            -1.0
                        }
                    }
                    ColStatus::Basic(_) => unreachable!(),
                };
                if dir * alpha * delta_r >= 0.0 {
                    continue; // moves xb[r] the wrong way
                }
                let ratio = d.abs() / alpha.abs();
                let better = match best {
                    None => true,
                    Some((_, _, br, ba)) => {
                        ratio < br - 1e-12 || (ratio <= br + 1e-12 && alpha.abs() > ba)
                    }
                };
                if better {
                    best = Some((q, dir, ratio, alpha.abs()));
                }
            }
            let Some((q, dir, _, alpha_abs)) = best else {
                return Err(()); // no usable pivot: let the cold solve decide
            };

            // w = B⁻¹·A_q, pivot magnitude re-derived through the eta file.
            self.ftran_col(q);
            let wr = self.work_w[r];
            if wr.abs() <= PIV_TOL {
                return Err(());
            }
            let t = delta_r / (-dir * wr);
            if !t.is_finite() || t < 0.0 {
                return Err(());
            }

            // Bound flip: when reaching the target would push the entering
            // variable past its own opposite bound, move it exactly there
            // instead of pivoting (standard bound-flipping dual ratio
            // test). The violation shrinks by |α|·span and the basis is
            // untouched — reduced costs are untouched too; the next sweep
            // picks up the remainder.
            let span = self.ub[q] - self.lb[q];
            if span.is_finite() && t > span {
                for s in 0..self.m {
                    self.xb[s] -= span * dir * self.work_w[s];
                }
                self.status[q] = match self.status[q] {
                    ColStatus::AtLower => ColStatus::AtUpper,
                    ColStatus::AtUpper => ColStatus::AtLower,
                    other => other,
                };
                debug_assert!(alpha_abs * span > 0.0);
                continue;
            }

            let leaving = self.basis[r];
            // Maintain reduced costs across the pivot while the pivot row
            // is still valid (before the eta push).
            let t0 = Stopwatch::start();
            if !self.d_stale {
                self.update_reduced_costs(q, wr, leaving, false);
            }
            self.pricing_ns += t0.elapsed_ns();
            for s in 0..self.m {
                self.xb[s] -= t * dir * self.work_w[s];
            }
            self.xb[r] = nonbasic_value(self.status[q], self.lb[q], self.ub[q]) + dir * t;
            // The leaving variable lands exactly on its violated bound.
            let (lo, _hi) = if phase1 {
                (self.lb[leaving], self.ub[leaving])
            } else {
                self.basic_bounds(leaving)
            };
            self.status[leaving] = if target == lo {
                if lo.is_finite() {
                    ColStatus::AtLower
                } else {
                    ColStatus::FreeAtZero
                }
            } else {
                ColStatus::AtUpper
            };
            self.status[q] = ColStatus::Basic(r);
            self.basis[r] = q;
            self.push_eta(r);
            if self.etas.len() >= self.opts.refactor_every {
                self.refactorize().map_err(|_| ())?;
            }
        }
        Err(())
    }

    /// Effective bounds of a basic column (artificials are frozen at zero).
    fn basic_bounds(&self, j: usize) -> (f64, f64) {
        if j >= self.art_offset {
            (0.0, 0.0)
        } else {
            (self.lb[j], self.ub[j])
        }
    }

    fn run(&mut self) -> Result<(), SolveError> {
        if self.m > 0 {
            // Phase 1: drive artificial infeasibility to zero.
            self.iterate(true)?;
            if self.infeasibility() > self.opts.feas_tol * 10.0 {
                return Err(SolveError::Infeasible);
            }
            // Freeze artificials at zero for phase 2.
            for i in 0..self.m {
                let aj = self.art_offset + i;
                self.lb[aj] = 0.0;
                self.ub[aj] = 0.0;
                if !matches!(self.status[aj], ColStatus::Basic(_)) {
                    self.status[aj] = ColStatus::AtLower;
                }
            }
        }
        // Phase 2: optimize the real objective.
        self.iterate(false)
    }

    fn infeasibility(&self) -> f64 {
        let mut s = 0.0;
        for (slot, &j) in self.basis.iter().enumerate() {
            if j >= self.art_offset {
                s += self.xb[slot].abs();
            }
        }
        s
    }

    /// Runs pivots until the phase objective is optimal.
    fn iterate(&mut self, phase1: bool) -> Result<(), SolveError> {
        let mut degen_streak = 0usize;
        let mut prev_bland = false;
        // A fresh phase restarts the devex reference framework.
        self.reset_devex();
        loop {
            if phase1 && self.infeasibility() <= self.opts.feas_tol {
                return Ok(());
            }
            if self.iterations >= self.max_iterations {
                return Err(SolveError::IterationLimit);
            }
            self.iterations += 1;

            let bland = degen_streak >= self.opts.bland_after;
            if bland && !prev_bland {
                // (Re-)entering the anti-cycling regime: Bland's rule must
                // see exact reduced-cost signs, not incrementally drifted
                // ones — on every engagement, not just the first.
                self.d_stale = true;
            }
            prev_bland = bland;
            let t0 = Stopwatch::start();
            let mut choice = self.price(phase1, bland);
            if choice.is_none() && !self.d_exact {
                // The maintained reduced costs say optimal; confirm against
                // exactly recomputed values before declaring the phase done.
                self.d_stale = true;
                choice = self.price(phase1, bland);
            }
            self.pricing_ns += t0.elapsed_ns();
            let Some((q, _)) = choice else {
                return Ok(()); // phase optimal (certified on exact values)
            };

            // w = B⁻¹ · A_q
            self.ftran_col(q);

            if self.paranoid {
                self.paranoid_check(q);
            }

            // Anchor the candidate's maintained reduced cost to the exact
            // value implied by its FTRANed column (`g_q − g_Bᵀ·B⁻¹·A_q`, an
            // O(m) dot): incremental maintenance drifts, and pivoting on a
            // column whose true reduced cost is no longer attractive stalls
            // the solve — or worse, degrades the basis until the LU calls
            // it singular. A candidate that fails the exact test is
            // repriced instead of pivoted on.
            let mut dq = if phase1 {
                self.cost_phase1[q]
            } else {
                self.cost[q]
            };
            for slot in 0..self.m {
                let b = self.basis[slot];
                let gb = if phase1 {
                    self.cost_phase1[b]
                } else {
                    self.cost[b]
                };
                if gb != 0.0 {
                    dq -= gb * self.work_w[slot];
                }
            }
            self.d[q] = dq;
            let Some((dir, _)) = self.eligible(q) else {
                self.d_exact = false;
                continue; // drifted candidate; the corrected entry deselects it
            };

            let mut outcome = self.ratio_test(q, dir, bland);
            // A pivot that is tiny after a long eta chain is often pure
            // round-off; refactorize and re-derive before trusting it.
            if let RatioOutcome::Pivot { slot, .. } = outcome {
                if self.work_w[slot].abs() < 1e-7 && !self.etas.is_empty() {
                    match self.refactorize() {
                        Ok(()) => {
                            self.ftran_col(q);
                            outcome = self.ratio_test(q, dir, bland);
                        }
                        Err(_) => {
                            // The basis repair may move any column, q
                            // included — reprice from scratch.
                            self.repair_singular_basis(phase1)?;
                            continue;
                        }
                    }
                }
            }

            match outcome {
                RatioOutcome::Unbounded => {
                    return if phase1 {
                        Err(SolveError::Numerical("phase-1 ray".into()))
                    } else {
                        Err(SolveError::Unbounded)
                    };
                }
                RatioOutcome::BoundFlip(t) => {
                    // x_q jumps to its opposite bound; basics absorb the
                    // move. The basis is unchanged, so the maintained
                    // reduced costs and devex weights stay valid as-is.
                    let w = &self.work_w;
                    for slot in 0..self.m {
                        self.xb[slot] -= t * dir * w[slot];
                    }
                    self.status[q] = match self.status[q] {
                        ColStatus::AtLower => ColStatus::AtUpper,
                        ColStatus::AtUpper => ColStatus::AtLower,
                        s => s,
                    };
                    if t <= self.opts.feas_tol {
                        degen_streak += 1;
                    } else {
                        degen_streak = 0;
                    }
                }
                RatioOutcome::Pivot { slot, t, to_upper } => {
                    let leaving = self.basis[slot];
                    // Maintain reduced costs and devex weights from the
                    // pivot row while the pre-pivot basis is still in
                    // place (the eta push below would invalidate ρ).
                    let t0 = Stopwatch::start();
                    if !self.d_stale {
                        self.pivot_row(slot);
                        self.update_reduced_costs(
                            q,
                            self.work_w[slot],
                            leaving,
                            self.opts.pricing == PricingMode::Devex,
                        );
                    }
                    self.pricing_ns += t0.elapsed_ns();
                    for s in 0..self.m {
                        self.xb[s] -= t * dir * self.work_w[s];
                    }
                    let entering_value =
                        nonbasic_value(self.status[q], self.lb[q], self.ub[q]) + dir * t;
                    self.xb[slot] = entering_value;
                    self.status[leaving] = if to_upper {
                        ColStatus::AtUpper
                    } else if self.lb[leaving].is_finite() {
                        ColStatus::AtLower
                    } else {
                        ColStatus::FreeAtZero
                    };
                    self.status[q] = ColStatus::Basic(slot);
                    self.basis[slot] = q;
                    self.push_eta(slot);
                    if t <= self.opts.feas_tol {
                        degen_streak += 1;
                    } else {
                        degen_streak = 0;
                    }
                    if self.etas.len() >= self.opts.refactor_every {
                        self.refactorize_or_repair(phase1)?;
                    }
                }
            }
        }
    }

    /// Recomputes all reduced costs exactly for the given phase: one dense
    /// BTRAN of the basic costs plus a full column scan — the `O(nnz(A))`
    /// sweep the incremental updates amortize away. Called lazily on phase
    /// entry, after refactorization, on detected drift, and to certify
    /// optimality.
    fn compute_reduced_costs(&mut self, phase1: bool) {
        for slot in 0..self.m {
            let b = self.basis[slot];
            self.work_y[slot] = if phase1 {
                self.cost_phase1[b]
            } else {
                self.cost[b]
            };
        }
        self.btran();
        let g = if phase1 {
            &self.cost_phase1
        } else {
            &self.cost
        };
        let limit = if phase1 {
            self.n_total
        } else {
            self.art_offset
        };
        for j in 0..limit {
            if matches!(self.status[j], ColStatus::Basic(_)) {
                self.d[j] = 0.0;
                continue;
            }
            let mut dj = g[j];
            for (r, a) in self.cols.col(j) {
                dj -= self.work_y[r] * a;
            }
            self.d[j] = dj;
        }
        self.n_priced = limit;
        self.d_stale = false;
        self.d_exact = true;
        self.d_phase1 = phase1;
    }

    /// Computes `ρ = B⁻ᵀ·eᵣ` into `work_rho` (hyper-sparse unit BTRAN:
    /// reverse eta pass on the unit vector, then a first-position-bounded
    /// LU BTRAN) and gathers the pivot row `αᵣ = ρᵀ·A` into
    /// `work_alpha`/`alpha_touched` by sparse row access over the CSR
    /// mirror — `O(Σ_{ρᵢ≠0} nnz(rowᵢ))` instead of scanning every column.
    fn pivot_row(&mut self, r: usize) {
        self.work_rho.fill(0.0);
        self.work_rho[r] = 1.0;
        for eta in self.etas.iter().rev() {
            let mut s = self.work_rho[eta.slot];
            for &(i, v) in &eta.entries {
                s -= v * self.work_rho[i];
            }
            self.work_rho[eta.slot] = s / eta.pivot;
        }
        self.lu.btran_sparse(&mut self.work_rho, &mut self.scratch);
        self.n_btran += 1;

        // Sparse reset of the previous pivot row, then the gather. The
        // mark array (not a zero test) guards `alpha_touched` against
        // duplicates when a value cancels exactly to zero mid-gather.
        for idx in 0..self.alpha_touched.len() {
            let j = self.alpha_touched[idx];
            self.work_alpha[j] = 0.0;
            self.alpha_mark[j] = false;
        }
        self.alpha_touched.clear();
        for i in 0..self.m {
            let rho = self.work_rho[i];
            if rho == 0.0 {
                continue;
            }
            for (j, a) in self.rows.row(i) {
                if !self.alpha_mark[j] {
                    self.alpha_mark[j] = true;
                    self.alpha_touched.push(j);
                }
                self.work_alpha[j] += rho * a;
            }
        }
    }

    /// Updates the maintained reduced costs (and, when `devex`, the devex
    /// weights) across the pivot that brings `q` into the basis replacing
    /// `leaving`. Must run after [`Worker::pivot_row`] and before the
    /// statuses/basis/eta file change. `wr` is the FTRAN-derived pivot
    /// element; it is cross-checked against the BTRAN-derived `α_q` and on
    /// disagreement the incremental state is discarded (recomputed lazily)
    /// instead of propagating drift.
    fn update_reduced_costs(&mut self, q: usize, wr: f64, leaving: usize, devex: bool) {
        let alpha_q = self.work_alpha[q];
        if !alpha_q.is_finite() || (alpha_q - wr).abs() > 1e-7 * (1.0 + wr.abs()) {
            self.d_stale = true;
            return;
        }
        let ratio = self.d[q] / wr;
        let wq = self.devex_w[q].max(1.0);
        let aq2 = wr * wr;
        for idx in 0..self.alpha_touched.len() {
            let j = self.alpha_touched[idx];
            if j == q || j >= self.n_priced {
                continue;
            }
            if matches!(self.status[j], ColStatus::Basic(_)) || self.lb[j] == self.ub[j] {
                continue;
            }
            let aj = self.work_alpha[j];
            self.d[j] -= ratio * aj;
            if devex {
                let cand = wq * (aj * aj) / aq2;
                if cand > self.devex_w[j] {
                    self.devex_w[j] = cand;
                }
            }
        }
        // The leaving variable turns nonbasic with d = −d_q/α_q (its pivot
        // row entry is exactly 1); the entering variable turns basic.
        self.d[leaving] = -ratio;
        self.d[q] = 0.0;
        if devex {
            self.devex_w[leaving] = (wq / aq2).max(1.0);
        }
        self.d_exact = false;
    }

    fn reset_devex(&mut self) {
        self.devex_w.fill(1.0);
    }

    /// Last-resort recovery when refactorization finds the basis
    /// (numerically) singular — the aftermath of an unavoidable pivot on a
    /// noise-scale element. Dependent columns are evicted for the slack of
    /// a row the factorization could not cover (the same repair the warm
    /// installer uses), the basic solution is recomputed, and primal
    /// feasibility is re-established by dual-simplex pivots (pricing with
    /// the phase-1 costs when `phase1`, the real objective otherwise)
    /// before the caller resumes its phase.
    fn repair_singular_basis(&mut self, phase1: bool) -> Result<(), SolveError> {
        let unrepairable = || SolveError::Numerical("unrepairable singular basis".into());
        let mut attempt = 0usize;
        let lu = loop {
            match factorize_basis_detailed(&self.cols, &self.basis, self.m) {
                Ok(lu) => break lu,
                Err(FactorizeError::NotSquare { .. }) => return Err(unrepairable()),
                Err(FactorizeError::Singular { col, pivoted }) => {
                    attempt += 1;
                    if attempt > 16 {
                        return Err(unrepairable());
                    }
                    let replacement = (0..self.m).find(|&r| {
                        !pivoted[r]
                            && !matches!(self.status[self.n_struct + r], ColStatus::Basic(_))
                    });
                    let Some(r) = replacement else {
                        return Err(unrepairable());
                    };
                    let evicted = self.basis[col];
                    let sj = self.n_struct + r;
                    self.status[evicted] = initial_status(self.lb[evicted], self.ub[evicted]);
                    self.status[sj] = ColStatus::Basic(col);
                    self.basis[col] = sj;
                }
            }
        };
        self.lu = lu;
        self.etas.clear();
        self.n_refactor += 1;
        self.recompute_xb();
        self.d_stale = true;
        self.reset_devex();
        self.restore_primal_feasibility(phase1)
            .map_err(|()| SolveError::Numerical("restoration after basis repair failed".into()))
    }

    /// Refactorizes, recovering from a singular basis via
    /// [`Worker::repair_singular_basis`].
    fn refactorize_or_repair(&mut self, phase1: bool) -> Result<(), SolveError> {
        match self.refactorize() {
            Ok(()) => Ok(()),
            Err(_) => self.repair_singular_basis(phase1),
        }
    }

    /// Eligibility of column `j` as an entering candidate: `Some((dir,
    /// viol))` when its maintained reduced cost violates dual feasibility
    /// by more than the optimality tolerance.
    #[inline]
    fn eligible(&self, j: usize) -> Option<(f64, f64)> {
        let st = self.status[j];
        if matches!(st, ColStatus::Basic(_)) || self.lb[j] == self.ub[j] {
            return None;
        }
        let d = self.d[j];
        let (dir, viol) = match st {
            ColStatus::AtLower => (1.0, -d),
            ColStatus::AtUpper => (-1.0, d),
            ColStatus::FreeAtZero => {
                if d > 0.0 {
                    (-1.0, d)
                } else {
                    (1.0, -d)
                }
            }
            ColStatus::Basic(_) => unreachable!(),
        };
        if viol > self.opts.opt_tol {
            Some((dir, viol))
        } else {
            None
        }
    }

    /// Chooses an entering column from the maintained reduced costs;
    /// returns `(column, direction)`. No matrix access: the per-iteration
    /// cost is one scan of the reduced-cost array (a section of it under
    /// partial pricing).
    fn price(&mut self, phase1: bool, bland: bool) -> Option<(usize, f64)> {
        if self.d_stale || self.d_phase1 != phase1 {
            self.compute_reduced_costs(phase1);
        }
        let limit = self.n_priced;
        if bland {
            // Anti-cycling escape: first eligible column by index.
            return (0..limit).find_map(|j| self.eligible(j).map(|(dir, _)| (j, dir)));
        }
        match self.opts.pricing {
            PricingMode::Dantzig => {
                let mut best: Option<(usize, f64, f64)> = None;
                for j in 0..limit {
                    if let Some((dir, viol)) = self.eligible(j) {
                        if best.is_none_or(|(_, _, s)| viol > s) {
                            best = Some((j, dir, viol));
                        }
                    }
                }
                best.map(|(j, dir, _)| (j, dir))
            }
            PricingMode::Devex => {
                let mut best: Option<(usize, f64, f64)> = None;
                for j in 0..limit {
                    if let Some((dir, viol)) = self.eligible(j) {
                        let score = viol * viol / self.devex_w[j];
                        if best.is_none_or(|(_, _, s)| score > s) {
                            best = Some((j, dir, score));
                        }
                    }
                }
                best.map(|(j, dir, _)| (j, dir))
            }
            PricingMode::Partial => self.price_partial(limit),
        }
    }

    /// Candidate-section partial pricing: best Dantzig-scored candidate in
    /// the first section (from a rotating cursor) that has any eligible
    /// column, wrapping through every section before concluding none
    /// exists — so a `None` is still a full certification scan. Every 16th
    /// iteration prices the full array instead: on heavily degenerate
    /// models, pure section-local choices were observed to stall for
    /// thousands of near-zero pivots that a global view avoids.
    fn price_partial(&mut self, limit: usize) -> Option<(usize, f64)> {
        if limit == 0 {
            return None;
        }
        let section = if self.iterations.is_multiple_of(16) {
            limit
        } else {
            (limit / 8).max(PARTIAL_SECTION_MIN).min(limit)
        };
        let mut cursor = self.part_cursor % limit;
        let mut scanned = 0usize;
        while scanned < limit {
            let len = section.min(limit - scanned);
            let mut best: Option<(usize, f64, f64)> = None;
            for k in 0..len {
                let j = (cursor + k) % limit;
                if let Some((dir, viol)) = self.eligible(j) {
                    if best.is_none_or(|(_, _, s)| viol > s) {
                        best = Some((j, dir, viol));
                    }
                }
            }
            cursor = (cursor + len) % limit;
            scanned += len;
            if let Some((j, dir, _)) = best {
                self.part_cursor = cursor;
                return Some((j, dir));
            }
        }
        self.part_cursor = cursor;
        None
    }

    /// Bounded-variable ratio test for entering column `q` moving in `dir`.
    ///
    /// Harris two-pass: pass 1 computes the step limit with every basic
    /// bound relaxed by the feasibility tolerance, pass 2 picks — among
    /// slots whose *unrelaxed* ratio fits inside that limit — the one with
    /// the largest pivot magnitude. Degenerate LPs tie at `t = 0`
    /// constantly; the relaxed window is what lets the test reach past a
    /// 1e-9 pivot at `t = 0` to a well-scaled pivot at `t = 1e-8` (the
    /// bypassed slot then overshoots its bound by ~1e-17 — far inside
    /// tolerance) instead of corrupting the eta file and, eventually, the
    /// basis. Under Bland's rule the strict smallest-ratio/smallest-index
    /// pairing is kept, as the anti-cycling proof requires.
    fn ratio_test(&self, q: usize, dir: f64, bland: bool) -> RatioOutcome {
        const PIV_TOL: f64 = 1e-9;
        const BLAND_TIE: f64 = 1e-12;
        let tol = self.opts.feas_tol;
        // Pass 1: the largest step no basic bound rejects by more than the
        // feasibility tolerance (Bland: the strict minimum ratio).
        let mut t_lim = f64::INFINITY;
        for slot in 0..self.m {
            let delta = -dir * self.work_w[slot];
            if delta.abs() <= PIV_TOL {
                continue;
            }
            let b = self.basis[slot];
            let limit = if delta > 0.0 { self.ub[b] } else { self.lb[b] };
            if !limit.is_finite() {
                continue;
            }
            let relaxed = if bland {
                limit
            } else if delta > 0.0 {
                limit + tol
            } else {
                limit - tol
            };
            let t = ((relaxed - self.xb[slot]) / delta).max(0.0);
            if t < t_lim {
                t_lim = t;
            }
        }

        let mut leave: Option<(usize, bool)> = None;
        let mut t_chosen = t_lim;
        if t_lim.is_finite() {
            let mut best_piv = 0.0f64;
            // Bland: candidates are the strict minimum-ratio slots (up to
            // fp round-off) and the step is the strict minimum itself, as
            // the anti-cycling proof requires.
            let window = if bland { t_lim + BLAND_TIE } else { t_lim };
            for slot in 0..self.m {
                let delta = -dir * self.work_w[slot];
                if delta.abs() <= PIV_TOL {
                    continue;
                }
                let b = self.basis[slot];
                let (limit, to_upper) = if delta > 0.0 {
                    (self.ub[b], true)
                } else {
                    (self.lb[b], false)
                };
                if !limit.is_finite() {
                    continue;
                }
                let t = ((limit - self.xb[slot]) / delta).max(0.0);
                if t <= window {
                    let piv = self.work_w[slot].abs();
                    let better = match leave {
                        None => true,
                        Some((ls, _)) => {
                            if bland {
                                b < self.basis[ls]
                            } else {
                                piv > best_piv
                            }
                        }
                    };
                    if better {
                        best_piv = piv;
                        t_chosen = t;
                        leave = Some((slot, to_upper));
                    }
                }
            }
        }
        // Step by the chosen slot's own ratio so the leaving variable lands
        // exactly on its bound; every bypassed basic overshoots its own
        // bound by at most the feasibility tolerance (pass-1 guarantee).
        // Under Bland the step is the strict minimum ratio, so nothing
        // overshoots beyond fp round-off.
        let t_best = if bland { t_chosen.min(t_lim) } else { t_chosen };

        // The entering variable may hit its own opposite bound first.
        let span = self.ub[q] - self.lb[q];
        let t_flip = if matches!(self.status[q], ColStatus::FreeAtZero) || !span.is_finite() {
            f64::INFINITY
        } else {
            span
        };

        if t_flip < t_best {
            return RatioOutcome::BoundFlip(t_flip);
        }
        match leave {
            None if t_flip.is_finite() => RatioOutcome::BoundFlip(t_flip),
            None => RatioOutcome::Unbounded,
            Some((slot, to_upper)) => RatioOutcome::Pivot {
                slot,
                t: t_best,
                to_upper,
            },
        }
    }

    /// FTRAN of column `q`: `work_w ← B⁻¹·A_q` via the sparse-RHS LU solve
    /// (no dense gather; the forward sweep starts at the first position
    /// the column touches), then the eta file.
    fn ftran_col(&mut self, q: usize) {
        self.work_w.fill(0.0);
        self.lu
            .ftran_sparse(self.cols.col(q), &mut self.work_w, &mut self.scratch);
        for eta in &self.etas {
            let t = self.work_w[eta.slot] / eta.pivot;
            if t != 0.0 {
                for &(i, v) in &eta.entries {
                    self.work_w[i] -= v * t;
                }
            }
            self.work_w[eta.slot] = t;
        }
        self.n_ftran += 1;
    }

    /// BTRAN `work_y ← B⁻ᵀ·work_y` (etas in reverse, then the factors).
    fn btran(&mut self) {
        for eta in self.etas.iter().rev() {
            let mut s = self.work_y[eta.slot];
            for &(i, v) in &eta.entries {
                s -= v * self.work_y[i];
            }
            self.work_y[eta.slot] = s / eta.pivot;
        }
        self.lu.btran(&mut self.work_y, &mut self.scratch);
        self.n_btran += 1;
    }

    /// `GC_LP_PARANOID` cross-check: the eta-file FTRAN of the entering
    /// column must match a fresh factorization's answer.
    fn paranoid_check(&mut self, q: usize) {
        if let Ok(lu) = factorize_basis(&self.cols, &self.basis, self.m) {
            let mut check = vec![0.0; self.m];
            for (r, a) in self.cols.col(q) {
                check[r] = a;
            }
            let mut scratch = Vec::new();
            lu.ftran(&mut check, &mut scratch);
            let diff = check
                .iter()
                .zip(self.work_w.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            if diff > 1e-6 {
                let worst = check
                    .iter()
                    .zip(self.work_w.iter())
                    .enumerate()
                    .max_by(|a, b| {
                        let da = (a.1 .0 - a.1 .1).abs();
                        let db = (b.1 .0 - b.1 .1).abs();
                        da.total_cmp(&db)
                    });
                if let Some(worst) = worst {
                    eprintln!(
                        "PARANOID iter {}: ftran drift {diff:.3e} q={q} (etas {}) worst slot {} fresh={} eta={}",
                        self.iterations,
                        self.etas.len(),
                        worst.0,
                        worst.1 .0,
                        worst.1 .1,
                    );
                }
                for (k, e) in self.etas.iter().enumerate() {
                    eprintln!(
                        "  eta {k}: slot {} pivot {:.6e} nnz {}",
                        e.slot,
                        e.pivot,
                        e.entries.len()
                    );
                }
                // gclint: allow(panic-path) — GC_LP_PARANOID is an opt-in crash-on-drift debug mode
                panic!("paranoid drift");
            }
        } else {
            eprintln!(
                "PARANOID iter {}: current basis SINGULAR (etas {})",
                self.iterations,
                self.etas.len()
            );
            // gclint: allow(panic-path) — GC_LP_PARANOID is an opt-in crash-on-drift debug mode
            panic!("paranoid singular");
        }
    }

    fn push_eta(&mut self, slot: usize) {
        let pivot = self.work_w[slot];
        let entries: Vec<(usize, f64)> = self
            .work_w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != slot && v.abs() > 1e-13)
            .map(|(i, &v)| (i, v))
            .collect();
        self.etas.push(Eta {
            slot,
            pivot,
            entries,
        });
    }

    fn refactorize(&mut self) -> Result<(), SolveError> {
        self.etas.clear();
        debug_assert!(
            {
                let mut b = self.basis.clone();
                b.sort_unstable();
                b.iter().zip(b.iter().skip(1)).all(|(a, b)| a != b)
            },
            "duplicate column in basis"
        );
        self.lu = factorize_basis(&self.cols, &self.basis, self.m)?;
        self.n_refactor += 1;
        // Refactorization is the accuracy anchor: the basic values are
        // recomputed from scratch, and the maintained reduced costs are
        // recomputed the same way (lazily, on the next pricing scan).
        self.recompute_xb();
        self.d_stale = true;
        Ok(())
    }

    /// Recomputes the basic solution from scratch against the current
    /// factorization: `x_B = B⁻¹·(b − A_N·x_N)`.
    fn recompute_xb(&mut self) {
        let mut resid = self.rhs.clone();
        for j in 0..self.n_total {
            if matches!(self.status[j], ColStatus::Basic(_)) {
                continue;
            }
            let v = nonbasic_value(self.status[j], self.lb[j], self.ub[j]);
            if v != 0.0 {
                for (r, a) in self.cols.col(j) {
                    resid[r] -= a * v;
                }
            }
        }
        self.work_w.copy_from_slice(&resid);
        self.lu.ftran(&mut self.work_w, &mut self.scratch);
        self.xb.copy_from_slice(&self.work_w);
    }

    fn extract(&mut self, model: &Model) -> Solution {
        // A final refactorization sheds eta-file drift before reporting.
        if !self.etas.is_empty() {
            let _ = self.refactorize();
        }
        let mut values = vec![0.0; self.n_struct];
        for (j, value) in values.iter_mut().enumerate() {
            *value = match self.status[j] {
                ColStatus::Basic(slot) => self.xb[slot],
                st => nonbasic_value(st, self.lb[j], self.ub[j]),
            };
        }
        let objective = model.objective_value(&values);
        // Export the final basis (structural + slack columns) so callers
        // can warm-start re-solves of this model or of close neighbours.
        // Artificials still basic at zero (degenerate phase-1 leftovers)
        // are recorded by row so the re-installed basis stays square.
        let statuses: Vec<BasisStatus> = self.status[..self.art_offset]
            .iter()
            .map(|st| match st {
                ColStatus::Basic(_) => BasisStatus::Basic,
                ColStatus::AtLower => BasisStatus::AtLower,
                ColStatus::AtUpper => BasisStatus::AtUpper,
                ColStatus::FreeAtZero => BasisStatus::Free,
            })
            .collect();
        let artificial_rows: Vec<usize> = self
            .basis
            .iter()
            .filter(|&&j| j >= self.art_offset)
            .map(|&j| j - self.art_offset)
            .collect();
        Solution {
            objective,
            values,
            iterations: self.iterations,
            basis: Some(Basis::with_artificials(statuses, artificial_rows)),
            warm_started: false,
            stats: self.stats(),
        }
    }
}

enum RatioOutcome {
    Unbounded,
    BoundFlip(f64),
    Pivot { slot: usize, t: f64, to_upper: bool },
}

fn initial_status(lb: f64, ub: f64) -> ColStatus {
    match (lb.is_finite(), ub.is_finite()) {
        (true, true) => {
            if lb.abs() <= ub.abs() {
                ColStatus::AtLower
            } else {
                ColStatus::AtUpper
            }
        }
        (true, false) => ColStatus::AtLower,
        (false, true) => ColStatus::AtUpper,
        (false, false) => ColStatus::FreeAtZero,
    }
}

fn nonbasic_value(status: ColStatus, lb: f64, ub: f64) -> f64 {
    match status {
        ColStatus::AtLower => lb,
        ColStatus::AtUpper => ub,
        ColStatus::FreeAtZero => 0.0,
        ColStatus::Basic(_) => unreachable!("basic column has no implied value"),
    }
}

fn factorize_basis(cols: &ColMatrix, basis: &[usize], m: usize) -> Result<SparseLu, SolveError> {
    let mut b = ColMatrix::new(m);
    for &j in basis {
        b.push_col(cols.col(j));
    }
    SparseLu::factorize(&b)
}

fn factorize_basis_detailed(
    cols: &ColMatrix,
    basis: &[usize],
    m: usize,
) -> Result<SparseLu, FactorizeError> {
    let mut b = ColMatrix::new(m);
    for &j in basis {
        b.push_col(cols.col(j));
    }
    SparseLu::factorize_detailed(&b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn solve(m: &Model) -> Solution {
        RevisedSimplex::new(SimplexOptions::default())
            .solve(m)
            .expect("solve")
    }

    #[test]
    fn textbook_max_problem() {
        // max 3x + 5y (as min of the negation), the classic Dantzig example.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY, -3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, -5.0);
        m.add_con("c1", [(x, 1.0)], Sense::Le, 4.0);
        m.add_con("c2", [(y, 2.0)], Sense::Le, 12.0);
        m.add_con("c3", [(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        let s = solve(&m);
        assert!((s.objective + 36.0).abs() < 1e-7);
        assert!((s[x] - 2.0).abs() < 1e-7);
        assert!((s[y] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn all_pricing_modes_agree_on_textbook_problem() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY, -3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, -5.0);
        m.add_con("c1", [(x, 1.0)], Sense::Le, 4.0);
        m.add_con("c2", [(y, 2.0)], Sense::Le, 12.0);
        m.add_con("c3", [(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        for pricing in [
            PricingMode::Devex,
            PricingMode::Dantzig,
            PricingMode::Partial,
        ] {
            let s = RevisedSimplex::new(SimplexOptions {
                pricing,
                ..SimplexOptions::default()
            })
            .solve(&m)
            .expect("solve");
            assert!(
                (s.objective + 36.0).abs() < 1e-7,
                "{pricing:?}: {}",
                s.objective
            );
        }
    }

    #[test]
    fn solve_stats_are_reported() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY, -3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, -5.0);
        m.add_con("c1", [(x, 1.0)], Sense::Le, 4.0);
        m.add_con("c2", [(y, 2.0)], Sense::Le, 12.0);
        m.add_con("c3", [(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        let s = solve(&m);
        assert_eq!(s.stats.iterations, s.iterations);
        assert!(s.stats.iterations > 0);
        assert!(s.stats.ftrans > 0, "stats: {:?}", s.stats);
        assert!(s.stats.btrans > 0, "stats: {:?}", s.stats);
        // extract() always refactorizes once when etas exist; either way
        // the counter must be consistent with having solved something.
        assert!(s.stats.refactorizations <= s.stats.iterations + 1);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + 2y  s.t.  x + y = 10, x >= 3, y >= 2
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 2.0);
        m.add_con("sum", [(x, 1.0), (y, 1.0)], Sense::Eq, 10.0);
        m.add_con("xmin", [(x, 1.0)], Sense::Ge, 3.0);
        m.add_con("ymin", [(y, 1.0)], Sense::Ge, 2.0);
        let s = solve(&m);
        assert!((s[x] - 8.0).abs() < 1e-7);
        assert!((s[y] - 2.0).abs() < 1e-7);
        assert!((s.objective - 12.0).abs() < 1e-7);
    }

    #[test]
    fn upper_bounds_and_bound_flips() {
        // min -x - y with x,y in [0,1] and x + y <= 1.5
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0, -1.0);
        let y = m.add_var("y", 0.0, 1.0, -1.0);
        m.add_con("cap", [(x, 1.0), (y, 1.0)], Sense::Le, 1.5);
        let s = solve(&m);
        assert!((s.objective + 1.5).abs() < 1e-7);
    }

    #[test]
    fn free_variable() {
        // min |style| problem: x free, minimize x s.t. x >= -5.
        let mut m = Model::new();
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_con("lo", [(x, 1.0)], Sense::Ge, -5.0);
        let s = solve(&m);
        assert!((s[x] + 5.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_con("hi", [(x, 1.0)], Sense::Ge, 2.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY, -1.0);
        m.add_con("lo", [(x, 1.0)], Sense::Ge, 0.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn negative_rhs_rows() {
        // Rows with negative residual exercise the sign-adapted artificials.
        let mut m = Model::new();
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_con("eq", [(x, 1.0)], Sense::Eq, -7.0);
        let s = solve(&m);
        assert!((s[x] + 7.0).abs() < 1e-7);
    }

    #[test]
    fn fixed_variables_are_respected() {
        let mut m = Model::new();
        let x = m.add_var("x", 3.0, 3.0, 10.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_con("c", [(x, 1.0), (y, 1.0)], Sense::Ge, 5.0);
        let s = solve(&m);
        assert!((s[x] - 3.0).abs() < 1e-9);
        assert!((s[y] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the optimum.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY, -1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, -1.0);
        for k in 0..12 {
            let a = 1.0 + (k as f64) * 1e-9;
            m.add_con(format!("c{k}"), [(x, a), (y, 1.0)], Sense::Le, 10.0);
        }
        let s = solve(&m);
        assert!(s.objective <= -10.0 + 1e-6);
    }

    #[test]
    fn no_constraints_uses_bounds() {
        let mut m = Model::new();
        let x = m.add_var("x", -2.0, 5.0, 1.0);
        let y = m.add_var("y", -2.0, 5.0, -1.0);
        let s = solve(&m);
        assert!((s[x] + 2.0).abs() < 1e-9);
        assert!((s[y] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn transport_problem() {
        // 2 plants, 3 markets; classic transportation LP with known optimum.
        let supply = [350.0, 600.0];
        let demand = [325.0, 300.0, 275.0];
        let unit_cost = [[2.5, 1.7, 1.8], [2.5, 1.8, 1.4]];
        let mut m = Model::new();
        let mut ship = [[None; 3]; 2];
        for p in 0..2 {
            for q in 0..3 {
                ship[p][q] =
                    Some(m.add_var(format!("s{p}{q}"), 0.0, f64::INFINITY, unit_cost[p][q]));
            }
        }
        for p in 0..2 {
            m.add_con(
                format!("supply{p}"),
                (0..3).map(|q| (ship[p][q].unwrap(), 1.0)),
                Sense::Le,
                supply[p],
            );
        }
        for q in 0..3 {
            m.add_con(
                format!("demand{q}"),
                (0..2).map(|p| (ship[p][q].unwrap(), 1.0)),
                Sense::Ge,
                demand[q],
            );
        }
        let s = solve(&m);
        // Optimal: plant0 -> m1 (300) + m0 (50); plant1 -> m0 (275) + m2 (275).
        let expected = 300.0 * 1.7 + 50.0 * 2.5 + 275.0 * 2.5 + 275.0 * 1.4;
        assert!(
            (s.objective - expected).abs() < 1e-6,
            "got {} want {expected}",
            s.objective
        );
        crate::validate::assert_feasible(&m, &s.values, 1e-7);
        // Cross-check against the independent dense solver.
        let d = crate::dense::DenseSimplex::new().solve(&m).unwrap();
        assert!((d.objective - s.objective).abs() < 1e-6);
    }

    #[test]
    fn many_refactorizations() {
        // A chain problem long enough to force several refactorization
        // cycles with the default interval.
        let n = 400;
        let mut m = Model::new();
        let mut prev = None;
        let mut vars = Vec::new();
        for i in 0..n {
            let x = m.add_var(
                format!("x{i}"),
                0.0,
                10.0,
                if i % 3 == 0 { 1.0 } else { -1.0 },
            );
            if let Some(p) = prev {
                m.add_con(format!("link{i}"), [(p, 1.0), (x, -1.0)], Sense::Le, 1.0);
            }
            vars.push(x);
            prev = Some(x);
        }
        m.add_con("anchor", [(vars[0], 1.0)], Sense::Ge, 1.0);
        let s = solve(&m);
        // Every x_i free to sit at 10 except the minimized thirds which sit
        // as low as the chain allows; just check feasibility + finiteness.
        assert!(s.objective.is_finite());
        crate::validate::assert_feasible(&m, &s.values, 1e-6);
        assert!(s.stats.refactorizations > 1, "stats: {:?}", s.stats);
    }
}
