//! Linear and mixed-integer programming for the `greencloud` workspace.
//!
//! The green-datacenter siting problem of Berral et al. (ICDCS 2014) is a
//! mixed-integer linear program; its heuristic solver evaluates thousands of
//! pure-LP subproblems. No external solver is available in this workspace, so
//! this crate implements the whole stack from scratch:
//!
//! * [`Model`] — a builder for LPs/MILPs with named, bounded variables and
//!   linear constraints ([`expr::LinExpr`]).
//! * [`dense::DenseSimplex`] — a two-phase full-tableau simplex. Simple and
//!   easy to audit; used as the reference implementation in tests and for
//!   small models.
//! * [`revised::RevisedSimplex`] — a bounded-variable revised simplex with a
//!   sparse LU factorization of the basis ([`lu::SparseLu`]), product-form
//!   eta updates, and periodic refactorization. This is the production path
//!   and comfortably solves the multi-thousand-variable siting LPs.
//! * [`branch::BranchAndBound`] — mixed-integer solving by branch & bound on
//!   the LP relaxation.
//! * [`validate`] — independent feasibility checking of solutions, used by
//!   tests and debug assertions.
//!
//! # Example
//!
//! ```
//! use greencloud_lp::{Model, Sense};
//!
//! # fn main() -> Result<(), greencloud_lp::SolveError> {
//! // minimize  -3x - 5y   subject to  x <= 4, 2y <= 12, 3x + 2y <= 18
//! let mut m = Model::new();
//! let x = m.add_var("x", 0.0, f64::INFINITY, -3.0);
//! let y = m.add_var("y", 0.0, f64::INFINITY, -5.0);
//! m.add_con("cap_x", [(x, 1.0)], Sense::Le, 4.0);
//! m.add_con("cap_y", [(y, 2.0)], Sense::Le, 12.0);
//! m.add_con("mix", [(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
//! let sol = m.solve()?;
//! assert!((sol.objective - (-36.0)).abs() < 1e-6);
//! assert!((sol[x] - 2.0).abs() < 1e-6);
//! assert!((sol[y] - 6.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod dense;
pub mod expr;
pub mod lu;
pub mod model;
pub mod revised;
pub mod validate;
pub mod wallclock;

pub use branch::{BranchAndBound, MilpOptions};
pub use expr::LinExpr;
pub use lu::FactorizeError;
pub use model::{ConId, Model, Sense, Solution, SolveError, VarId, VarKind};
pub use revised::{Basis, BasisStatus, PricingMode, RevisedSimplex, SimplexOptions, SolveStats};
