//! Branch & bound for mixed-integer linear programs.
//!
//! The siting problem uses binaries for "is a datacenter placed at location
//! d" and "is it in the large construction-cost class"; the GreenNebula
//! scheduler optionally rounds VM counts. Those MILPs are small (tens of
//! integer variables), so a classic LP-relaxation branch & bound with
//! most-fractional branching and best-first exploration is entirely
//! adequate — and is exactly what the paper's formulation needs.

use crate::model::{Model, Solution, SolveError, VarId};
use crate::revised::{RevisedSimplex, SimplexOptions};

/// Options for [`BranchAndBound`].
#[derive(Debug, Clone)]
pub struct MilpOptions {
    /// Tolerance under which a fractional value counts as integral.
    pub int_tol: f64,
    /// Give up (returning the incumbent if any) after this many nodes.
    pub max_nodes: usize,
    /// Relative optimality gap at which search stops.
    pub rel_gap: f64,
    /// Options for the underlying LP solves.
    pub lp: SimplexOptions,
}

impl Default for MilpOptions {
    fn default() -> Self {
        Self {
            int_tol: 1e-6,
            max_nodes: 50_000,
            rel_gap: 1e-9,
            lp: SimplexOptions::default(),
        }
    }
}

/// Mixed-integer solver; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct BranchAndBound {
    options: MilpOptions,
}

#[derive(Debug)]
struct Node {
    /// Bound overrides accumulated along the branch: `(var, lb, ub)`.
    bounds: Vec<(VarId, f64, f64)>,
    /// LP bound of the parent (for best-first ordering).
    parent_bound: f64,
}

impl BranchAndBound {
    /// Creates a solver with the given options.
    pub fn new(options: MilpOptions) -> Self {
        Self { options }
    }

    /// Solves `model` enforcing integrality of its [`VarId`]s declared
    /// integer.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when no integral point exists,
    /// [`SolveError::Unbounded`] when the relaxation is unbounded,
    /// [`SolveError::IterationLimit`] when `max_nodes` is exhausted without
    /// an incumbent, plus any LP-level error.
    pub fn solve(&self, model: &Model) -> Result<Solution, SolveError> {
        let int_vars = model.integer_vars();
        if int_vars.is_empty() {
            return model.solve_with(self.options.lp.clone());
        }
        let lp = RevisedSimplex::new(self.options.lp.clone());

        let mut incumbent: Option<Solution> = None;
        // Solver work accumulated across every explored node, so the
        // returned solution reports the whole tree's effort rather than
        // the incumbent node's single LP solve.
        let mut total_stats = crate::revised::SolveStats::default();
        let mut nodes_explored = 0usize;
        // Best-first: nodes sorted by parent LP bound (min-heap behaviour via
        // sorted insertion into a Vec used as a stack from the back).
        let mut open: Vec<Node> = vec![Node {
            bounds: Vec::new(),
            parent_bound: f64::NEG_INFINITY,
        }];

        while let Some(node) = open.pop() {
            nodes_explored += 1;
            if nodes_explored > self.options.max_nodes {
                return match incumbent {
                    Some(mut sol) => {
                        sol.iterations = total_stats.iterations;
                        sol.stats = total_stats;
                        Ok(sol)
                    }
                    None => Err(SolveError::IterationLimit),
                };
            }
            // Prune against the incumbent before solving.
            if let Some(inc) = &incumbent {
                if node.parent_bound >= inc.objective - self.options.rel_gap * inc.objective.abs() {
                    continue;
                }
            }

            let mut sub = model.clone();
            let mut conflict = false;
            for &(v, lb, ub) in &node.bounds {
                let (cur_lb, cur_ub) = sub.bounds(v);
                let new_lb = cur_lb.max(lb);
                let new_ub = cur_ub.min(ub);
                if new_lb > new_ub {
                    conflict = true;
                    break;
                }
                sub.set_bounds(v, new_lb, new_ub);
            }
            if conflict {
                continue;
            }

            let relax = match lp.solve(&sub) {
                Ok(s) => s,
                Err(SolveError::Infeasible) => continue,
                Err(SolveError::Unbounded) if node.bounds.is_empty() => {
                    return Err(SolveError::Unbounded)
                }
                Err(SolveError::Unbounded) => continue,
                Err(e) => return Err(e),
            };
            total_stats.absorb(&relax.stats);
            if let Some(inc) = &incumbent {
                if relax.objective >= inc.objective - self.options.rel_gap * inc.objective.abs() {
                    continue;
                }
            }

            // Most-fractional branching variable.
            let mut branch: Option<(VarId, f64, f64)> = None; // (var, value, frac-distance)
            for &v in &int_vars {
                let x = relax.values[v.index()];
                let frac = (x - x.round()).abs();
                if frac > self.options.int_tol {
                    let dist = (x - x.floor() - 0.5).abs(); // 0 = most fractional
                    if branch.is_none_or(|(_, _, d)| dist < d) {
                        branch = Some((v, x, dist));
                    }
                }
            }

            match branch {
                None => {
                    // Integral: new incumbent.
                    let better = incumbent
                        .as_ref()
                        .is_none_or(|inc| relax.objective < inc.objective);
                    if better {
                        incumbent = Some(relax);
                    }
                }
                Some((v, x, _)) => {
                    let bound = relax.objective;
                    let mut lo = node.bounds.clone();
                    lo.push((v, f64::NEG_INFINITY, x.floor()));
                    let mut hi = node.bounds;
                    hi.push((v, x.ceil(), f64::INFINITY));
                    // Push the child whose rounded side is nearer first so it
                    // is explored second (Vec-pop order), keeping a mild
                    // best-first flavour.
                    open.push(Node {
                        bounds: lo,
                        parent_bound: bound,
                    });
                    open.push(Node {
                        bounds: hi,
                        parent_bound: bound,
                    });
                    // Keep the most promising node at the back.
                    let k = open.len();
                    if k >= 2 && open[k - 2].parent_bound < open[k - 1].parent_bound {
                        open.swap(k - 2, k - 1);
                    }
                }
            }
        }

        match incumbent {
            Some(mut sol) => {
                sol.iterations = total_stats.iterations;
                sol.stats = total_stats;
                Ok(sol)
            }
            None => Err(SolveError::Infeasible),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn milp(m: &Model) -> Solution {
        BranchAndBound::new(MilpOptions::default())
            .solve(m)
            .expect("milp solve")
    }

    #[test]
    fn knapsack() {
        // max 8a + 11b + 6c + 4d  (weights 5,7,4,3; capacity 14)
        let mut m = Model::new();
        let items = [(8.0, 5.0), (11.0, 7.0), (6.0, 4.0), (4.0, 3.0)];
        let vars: Vec<_> = items
            .iter()
            .enumerate()
            .map(|(i, &(value, _))| m.add_bin_var(format!("x{i}"), -value))
            .collect();
        m.add_con(
            "cap",
            vars.iter().zip(items.iter()).map(|(&v, &(_, w))| (v, w)),
            Sense::Le,
            14.0,
        );
        let s = milp(&m);
        assert!(
            (s.objective + 21.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        // Optimal picks b + c + d (weight 14, value 21).
        assert!(s[vars[1]] > 0.5 && s[vars[2]] > 0.5 && s[vars[3]] > 0.5);
        assert!(s[vars[0]] < 0.5);
    }

    #[test]
    fn pure_lp_falls_through() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 4.0, -1.0);
        let s = milp(&m);
        assert!((s[x] - 4.0).abs() < 1e-7);
    }

    #[test]
    fn integer_rounding_matters() {
        // LP optimum is fractional; MILP must drop to the integral one.
        // max x + y s.t. 2x + y <= 3.5, x,y integer >= 0.
        let mut m = Model::new();
        let x = m.add_int_var("x", 0.0, 10.0, -1.0);
        let y = m.add_int_var("y", 0.0, 10.0, -1.0);
        m.add_con("c", [(x, 2.0), (y, 1.0)], Sense::Le, 3.5);
        let s = milp(&m);
        assert!((s.objective + 3.0).abs() < 1e-6);
        assert!((s[x] - s[x].round()).abs() < 1e-6);
        assert!((s[y] - s[y].round()).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integrality() {
        // 2x = 1 has no integer solution.
        let mut m = Model::new();
        let x = m.add_int_var("x", 0.0, 10.0, 0.0);
        m.add_con("eq", [(x, 2.0)], Sense::Eq, 1.0);
        assert_eq!(
            BranchAndBound::default().solve(&m).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn mixed_integer_continuous() {
        // min -y - 0.5 x, y integer, x continuous; x <= 2.5, y <= x.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 2.5, -0.5);
        let y = m.add_int_var("y", 0.0, 10.0, -1.0);
        m.add_con("link", [(y, 1.0), (x, -1.0)], Sense::Le, 0.0);
        let s = milp(&m);
        assert!((s[y] - 2.0).abs() < 1e-6);
        assert!((s[x] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn binary_facility_location_toy() {
        // Two facilities with opening costs, three demands; the classic
        // structure of the paper's at(d) binaries in miniature.
        let mut m = Model::new();
        let open0 = m.add_bin_var("open0", 10.0);
        let open1 = m.add_bin_var("open1", 6.0);
        let mut total = Vec::new();
        for j in 0..3 {
            let a0 = m.add_var(format!("a0_{j}"), 0.0, f64::INFINITY, 1.0);
            let a1 = m.add_var(format!("a1_{j}"), 0.0, f64::INFINITY, 2.0);
            m.add_con(format!("demand{j}"), [(a0, 1.0), (a1, 1.0)], Sense::Ge, 1.0);
            // Capacity only if open (big-M link).
            m.add_con(
                format!("cap0_{j}"),
                [(a0, 1.0), (open0, -10.0)],
                Sense::Le,
                0.0,
            );
            m.add_con(
                format!("cap1_{j}"),
                [(a1, 1.0), (open1, -10.0)],
                Sense::Le,
                0.0,
            );
            total.push((a0, a1));
        }
        let s = milp(&m);
        // Opening only facility 1 costs 6 + 3*2 = 12; only facility 0 costs
        // 10 + 3*1 = 13; both costs 16+. Optimum = 12.
        assert!(
            (s.objective - 12.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert!(s[open1] > 0.5 && s[open0] < 0.5);
    }
}
