//! Linear expressions over model variables.

use crate::model::VarId;
use std::collections::HashMap;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A linear expression `Σ coeff_i · x_i + constant`.
///
/// `LinExpr` is the currency of constraint construction: it can be built
/// incrementally with [`LinExpr::add_term`], combined with `+`/`-`, and
/// scaled with `*`. Duplicate variables are allowed while building and are
/// merged by [`LinExpr::compress`] (called automatically when the expression
/// is attached to a model).
///
/// # Example
///
/// ```
/// use greencloud_lp::{LinExpr, Model, Sense};
///
/// let mut m = Model::new();
/// let x = m.add_var("x", 0.0, 10.0, 1.0);
/// let y = m.add_var("y", 0.0, 10.0, 1.0);
/// let e = LinExpr::term(x, 2.0) + LinExpr::term(y, 3.0);
/// m.add_con_expr("budget", e, Sense::Le, 12.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: Vec<(VarId, f64)>,
    constant: f64,
}

impl LinExpr {
    /// Creates the zero expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an expression consisting of a single term `coeff · var`.
    pub fn term(var: VarId, coeff: f64) -> Self {
        Self {
            terms: vec![(var, coeff)],
            constant: 0.0,
        }
    }

    /// Creates a constant expression.
    pub fn constant(value: f64) -> Self {
        Self {
            terms: Vec::new(),
            constant: value,
        }
    }

    /// Adds `coeff · var` to the expression and returns `&mut self` for
    /// chaining.
    pub fn add_term(&mut self, var: VarId, coeff: f64) -> &mut Self {
        if coeff != 0.0 {
            self.terms.push((var, coeff));
        }
        self
    }

    /// Adds a constant offset.
    pub fn add_constant(&mut self, value: f64) -> &mut Self {
        self.constant += value;
        self
    }

    /// The constant offset of the expression.
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// The (possibly uncompressed) terms of the expression.
    pub fn terms(&self) -> &[(VarId, f64)] {
        &self.terms
    }

    /// Merges duplicate variables and drops zero coefficients.
    pub fn compress(&mut self) {
        if self.terms.len() <= 1 {
            return;
        }
        let mut acc: HashMap<VarId, f64> = HashMap::with_capacity(self.terms.len());
        for &(v, c) in &self.terms {
            *acc.entry(v).or_insert(0.0) += c;
        }
        self.terms = acc.into_iter().filter(|&(_, c)| c != 0.0).collect();
        self.terms.sort_by_key(|&(v, _)| v);
    }

    /// Evaluates the expression for an assignment of variable values.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range for `values`.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|&(v, c)| c * values[v.index()])
                .sum::<f64>()
    }

    /// Returns `true` when the expression has no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }
}

impl FromIterator<(VarId, f64)> for LinExpr {
    fn from_iter<T: IntoIterator<Item = (VarId, f64)>>(iter: T) -> Self {
        let mut e = LinExpr::new();
        for (v, c) in iter {
            e.add_term(v, c);
        }
        e
    }
}

impl Extend<(VarId, f64)> for LinExpr {
    fn extend<T: IntoIterator<Item = (VarId, f64)>>(&mut self, iter: T) {
        for (v, c) in iter {
            self.add_term(v, c);
        }
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        self.terms
            .extend(rhs.terms.into_iter().map(|(v, c)| (v, -c)));
        self.constant -= rhs.constant;
        self
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        self.terms
            .extend(rhs.terms.into_iter().map(|(v, c)| (v, -c)));
        self.constant -= rhs.constant;
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        for t in &mut self.terms {
            t.1 *= rhs;
        }
        self.constant *= rhs;
        self
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self * -1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;

    fn vars() -> (Model, VarId, VarId) {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0, 0.0);
        let y = m.add_var("y", 0.0, 1.0, 0.0);
        (m, x, y)
    }

    #[test]
    fn term_arithmetic() {
        let (_m, x, y) = vars();
        let e = LinExpr::term(x, 2.0) + LinExpr::term(y, 3.0) - LinExpr::term(x, 0.5);
        assert_eq!(e.eval(&[1.0, 1.0]), 4.5);
    }

    #[test]
    fn compress_merges_duplicates() {
        let (_m, x, y) = vars();
        let mut e = LinExpr::new();
        e.add_term(x, 1.0)
            .add_term(x, 2.0)
            .add_term(y, -1.0)
            .add_term(y, 1.0);
        e.compress();
        assert_eq!(e.terms().len(), 1);
        assert_eq!(e.terms()[0], (x, 3.0));
    }

    #[test]
    fn scaling_and_negation() {
        let (_m, x, _y) = vars();
        let e = (LinExpr::term(x, 2.0) + LinExpr::constant(1.0)) * 3.0;
        assert_eq!(e.eval(&[2.0, 0.0]), 15.0);
        let n = -e;
        assert_eq!(n.eval(&[2.0, 0.0]), -15.0);
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let (_m, x, _y) = vars();
        let mut e = LinExpr::new();
        e.add_term(x, 0.0);
        assert!(e.is_constant());
    }

    #[test]
    fn from_iterator_collects_terms() {
        let (_m, x, y) = vars();
        let e: LinExpr = vec![(x, 1.0), (y, 2.0)].into_iter().collect();
        assert_eq!(e.terms().len(), 2);
    }
}
