//! Sparse LU factorization of simplex basis matrices.
//!
//! The revised simplex refactorizes its basis every few dozen pivots. Basis
//! matrices arising from the siting formulation are extremely sparse (3–6
//! nonzeros per column), so a dense factorization would dominate solve time.
//! [`SparseLu`] implements a left-looking column LU with partial pivoting:
//! `P·B = L·U` with `L` unit lower triangular and `U` upper triangular, both
//! stored column-wise in pivot-position space. Triangular solves use a dense
//! workspace and run in `O(n + nnz(L+U))`.

// Index loops here sweep multiple parallel arrays of the numerical kernel;
// iterator rewrites obscure the linear algebra.
#![allow(clippy::needless_range_loop)]
use crate::model::SolveError;

/// A sparse matrix stored in compressed-column form, used to hand basis
/// columns to the factorization.
#[derive(Debug, Clone, Default)]
pub struct ColMatrix {
    n_rows: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl ColMatrix {
    /// Creates an empty matrix with `n_rows` rows and no columns.
    pub fn new(n_rows: usize) -> Self {
        Self {
            n_rows,
            col_ptr: vec![0],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Appends a column given as `(row, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any row index is out of range.
    pub fn push_col<I: IntoIterator<Item = (usize, f64)>>(&mut self, entries: I) {
        for (r, v) in entries {
            assert!(r < self.n_rows, "row index {r} out of range");
            if v != 0.0 {
                self.row_idx.push(r);
                self.values.push(v);
            }
        }
        self.col_ptr.push(self.row_idx.len());
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The `(row, value)` entries of column `j`.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Multiplies `self · x` into a fresh vector (used by tests/validation).
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        for j in 0..self.n_cols() {
            let xj = x[j];
            if xj != 0.0 {
                for (r, v) in self.col(j) {
                    y[r] += v * xj;
                }
            }
        }
        y
    }
}

/// A row-wise (CSR) mirror of a [`ColMatrix`].
///
/// The revised simplex prices by pivot row: `αᵣ = ρᵀ·A` where `ρ = B⁻ᵀ·eᵣ`
/// is hyper-sparse on the siting bases. With only column access, forming
/// the pivot row means scanning every column of `A` — `O(nnz(A))` per
/// pivot. With a row mirror it is a gather over the rows where `ρ` is
/// nonzero: `O(Σ_{ρᵢ≠0} nnz(rowᵢ))`, typically a few dozen entries.
///
/// The mirror is immutable and built once per solve; the column form stays
/// the source of truth for FTRANs and factorization.
#[derive(Debug, Clone, Default)]
pub struct RowMatrix {
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl RowMatrix {
    /// Builds the CSR mirror of `cols` (two-pass counting transpose,
    /// `O(nnz)`).
    pub fn from_cols(cols: &ColMatrix) -> Self {
        let n_rows = cols.n_rows();
        let mut row_ptr = vec![0usize; n_rows + 1];
        for &r in &cols.row_idx {
            row_ptr[r + 1] += 1;
        }
        for i in 0..n_rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let nnz = cols.nnz();
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut cursor = row_ptr.clone();
        for j in 0..cols.n_cols() {
            for (r, v) in cols.col(j) {
                let t = cursor[r];
                col_idx[t] = j;
                values[t] = v;
                cursor[r] += 1;
            }
        }
        Self {
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.row_ptr.len().saturating_sub(1)
    }

    /// The `(column, value)` entries of row `i`, in column order.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }
}

/// Sparse LU factors of a square basis matrix, with row pivoting.
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// L (unit diagonal implicit), columns in position space, entries strictly
    /// below the diagonal.
    l_ptr: Vec<usize>,
    l_idx: Vec<usize>,
    l_val: Vec<f64>,
    /// U columns in position space, entries strictly above the diagonal.
    u_ptr: Vec<usize>,
    u_idx: Vec<usize>,
    u_val: Vec<f64>,
    u_diag: Vec<f64>,
    /// `row_of[p]` = original row pivoted at position `p`.
    row_of: Vec<usize>,
    /// `pos_of[r]` = pivot position of original row `r`.
    pos_of: Vec<usize>,
    /// `col_of[p]` = original column factored at position `p` (the
    /// triangularization preorder: `P·B·Q = L·U`).
    col_of: Vec<usize>,
}

/// Smallest acceptable pivot magnitude.
const PIVOT_TOL: f64 = 1e-11;

/// Structured factorization failure, rich enough to drive basis repair:
/// a warm-start installer can swap the dead column for the slack of a
/// not-yet-pivoted row and retry.
#[derive(Debug, Clone)]
pub enum FactorizeError {
    /// The matrix is not square.
    NotSquare {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
    /// No acceptable pivot exists for position `col`: that basis column is
    /// (numerically) dependent on its predecessors.
    Singular {
        /// Zero-based position of the failing column.
        col: usize,
        /// `pivoted[r]` is `true` for original rows already holding a pivot
        /// when the factorization gave up; any `false` row is a valid
        /// replacement target.
        pivoted: Vec<bool>,
    },
}

impl FactorizeError {
    fn to_solve_error(&self) -> SolveError {
        self.clone().into()
    }
}

impl std::fmt::Display for FactorizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorizeError::NotSquare { rows, cols } => {
                write!(f, "basis not square: {rows}x{cols}")
            }
            FactorizeError::Singular { col, .. } => {
                write!(f, "singular basis at column {col}")
            }
        }
    }
}

impl std::error::Error for FactorizeError {}

/// The crate-boundary collapse into the solver error type: callers that do
/// not repair singular bases themselves treat a failed factorization as
/// numerical trouble.
impl From<FactorizeError> for SolveError {
    fn from(e: FactorizeError) -> Self {
        SolveError::Numerical(e.to_string())
    }
}

/// Computes a fill-reducing column order for a simplex basis: the classic
/// doubly-bordered triangularization. Column singletons peel to the front
/// (their L columns are empty, so later eliminations through them create no
/// fill), row singletons peel to the back in reverse (their off-pivot
/// entries land in U), and only the residual "bump" — ordered sparsest
/// column first — can fill in. Simplex bases are mostly slacks and
/// chain-structured columns, so the bump is typically tiny; without this
/// preorder the plain left-looking factorization was observed to fill a
/// 1.3k-row siting basis from ~4k to ~90k nonzeros, making LU solves (and
/// refactorization itself) the dominant solver cost.
fn triangular_order(b: &ColMatrix) -> Vec<usize> {
    let n = b.n_rows();
    let rows = RowMatrix::from_cols(b);
    let mut ccnt: Vec<usize> = (0..n).map(|j| b.col(j).count()).collect();
    let mut rcnt: Vec<usize> = (0..n).map(|r| rows.row(r).count()).collect();
    let mut col_active = vec![true; n];
    let mut row_active = vec![true; n];
    let mut col_stack: Vec<usize> = (0..n).filter(|&j| ccnt[j] == 1).collect();
    let mut row_stack: Vec<usize> = (0..n).filter(|&r| rcnt[r] == 1).collect();
    let mut front: Vec<usize> = Vec::with_capacity(n);
    let mut back: Vec<usize> = Vec::new();

    // Peel until neither kind of singleton remains. Stack entries can go
    // stale as counts change; validity is re-checked on pop.
    loop {
        let mut peeled: Option<(usize, usize, bool)> = None; // (col, row, to front)
        while let Some(j) = col_stack.pop() {
            if col_active[j] && ccnt[j] == 1 {
                // A stale count with no active row left just means this
                // column misses its singleton turn and falls through to
                // the bump — the preorder is a fill heuristic, never a
                // correctness requirement, so degrade instead of panicking.
                match b.col(j).map(|(r, _)| r).find(|&r| row_active[r]) {
                    Some(r) => {
                        peeled = Some((j, r, true));
                        break;
                    }
                    None => continue,
                }
            }
        }
        if peeled.is_none() {
            while let Some(r) = row_stack.pop() {
                if row_active[r] && rcnt[r] == 1 {
                    match rows.row(r).map(|(j, _)| j).find(|&j| col_active[j]) {
                        Some(j) => {
                            peeled = Some((j, r, false));
                            break;
                        }
                        None => continue,
                    }
                }
            }
        }
        let Some((j, r, to_front)) = peeled else {
            break;
        };
        if to_front {
            front.push(j);
        } else {
            back.push(j);
        }
        col_active[j] = false;
        for (r2, _) in b.col(j) {
            if row_active[r2] {
                rcnt[r2] -= 1;
                if rcnt[r2] == 1 {
                    row_stack.push(r2);
                }
            }
        }
        row_active[r] = false;
        for (j2, _) in rows.row(r) {
            if col_active[j2] {
                ccnt[j2] -= 1;
                if ccnt[j2] == 1 {
                    col_stack.push(j2);
                }
            }
        }
    }

    // The bump: whatever the peel could not order, sparsest column first
    // (deterministic tie-break on index).
    let mut bump: Vec<usize> = (0..n).filter(|&j| col_active[j]).collect();
    bump.sort_unstable_by_key(|&j| (ccnt[j], j));
    front.extend(bump);
    back.reverse();
    front.extend(back);
    front
}

impl SparseLu {
    /// Factorizes the square matrix whose columns are given by `basis`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Numerical`] if the matrix is (numerically)
    /// singular or not square.
    pub fn factorize(basis: &ColMatrix) -> Result<Self, SolveError> {
        Self::factorize_detailed(basis).map_err(|e| e.to_solve_error())
    }

    /// Factorizes, reporting singularity with enough structure for the
    /// caller to repair the basis (see [`FactorizeError`]).
    ///
    /// # Errors
    ///
    /// [`FactorizeError::NotSquare`] / [`FactorizeError::Singular`].
    pub fn factorize_detailed(basis: &ColMatrix) -> Result<Self, FactorizeError> {
        let n = basis.n_rows();
        if basis.n_cols() != n {
            return Err(FactorizeError::NotSquare {
                rows: n,
                cols: basis.n_cols(),
            });
        }
        let mut lu = SparseLu {
            n,
            l_ptr: Vec::with_capacity(n + 1),
            l_idx: Vec::new(),
            l_val: Vec::new(),
            u_ptr: Vec::with_capacity(n + 1),
            u_idx: Vec::new(),
            u_val: Vec::new(),
            u_diag: vec![0.0; n],
            row_of: vec![usize::MAX; n],
            pos_of: vec![usize::MAX; n],
            col_of: triangular_order(basis),
        };
        lu.l_ptr.push(0);
        lu.u_ptr.push(0);

        // Dense workspace indexed by ORIGINAL row index, plus the list of
        // touched entries for sparse reset. Membership must be tracked with
        // an explicit mark — testing `x[r] == 0.0` would re-add a row whose
        // value cancelled exactly to zero, duplicating entries in L.
        let mut x = vec![0.0; n];
        let mut mark = vec![false; n];
        let mut touched: Vec<usize> = Vec::with_capacity(64);

        for k in 0..n {
            // Scatter the column ordered at position k.
            for (r, v) in basis.col(lu.col_of[k]) {
                if !mark[r] {
                    mark[r] = true;
                    touched.push(r);
                }
                x[r] += v;
            }

            // Left-looking elimination: apply pivots 0..k in position order.
            // A pivot p only updates rows that were not pivoted before p, so
            // increasing-order processing over original-row workspace is
            // exact.
            for p in 0..k {
                let pr = lu.row_of[p];
                let xp = x[pr];
                if xp == 0.0 {
                    continue;
                }
                // U[p, k] = xp; eliminate using L column p.
                lu.u_idx.push(p);
                lu.u_val.push(xp);
                let lo = lu.l_ptr[p];
                let hi = lu.l_ptr[p + 1];
                for t in lo..hi {
                    let r = lu.l_idx[t];
                    if !mark[r] {
                        mark[r] = true;
                        touched.push(r);
                    }
                    x[r] -= lu.l_val[t] * xp;
                }
                x[pr] = 0.0;
            }
            lu.u_ptr.push(lu.u_idx.len());

            // Partial pivot among unpivoted rows.
            let mut piv_row = usize::MAX;
            let mut piv_abs = PIVOT_TOL;
            for &r in &touched {
                if lu.pos_of[r] == usize::MAX {
                    let a = x[r].abs();
                    if a > piv_abs {
                        piv_abs = a;
                        piv_row = r;
                    }
                }
            }
            if piv_row == usize::MAX {
                return Err(FactorizeError::Singular {
                    col: lu.col_of[k],
                    pivoted: lu.pos_of.iter().map(|&p| p != usize::MAX).collect(),
                });
            }
            let piv_val = x[piv_row];
            lu.u_diag[k] = piv_val;
            lu.row_of[k] = piv_row;
            lu.pos_of[piv_row] = k;

            // L column k: remaining unpivoted nonzeros, scaled.
            for &r in &touched {
                if r != piv_row && lu.pos_of[r] == usize::MAX && x[r] != 0.0 {
                    lu.l_idx.push(r);
                    lu.l_val.push(x[r] / piv_val);
                }
            }
            lu.l_ptr.push(lu.l_idx.len());

            // Sparse reset.
            for &r in &touched {
                x[r] = 0.0;
                mark[r] = false;
            }
            touched.clear();
        }

        // Convert L's row indices from original-row space to position space so
        // the triangular solves are pure position-space sweeps.
        for idx in &mut lu.l_idx {
            *idx = lu.pos_of[*idx];
        }
        Ok(lu)
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Nonzeros stored in the factors (fill-in indicator).
    pub fn fill_nnz(&self) -> usize {
        self.l_idx.len() + self.u_idx.len() + self.n
    }

    /// Solves `B·x = b` in place: `b` enters in original-row space and leaves
    /// as `x` in basis-column (position) space.
    pub fn ftran(&self, b: &mut [f64], scratch: &mut Vec<f64>) {
        debug_assert_eq!(b.len(), self.n);
        scratch.resize(self.n, 0.0);
        // z = P·b
        for p in 0..self.n {
            scratch[p] = b[self.row_of[p]];
        }
        // L·y = z (forward, unit diagonal)
        for k in 0..self.n {
            let yk = scratch[k];
            if yk != 0.0 {
                for t in self.l_ptr[k]..self.l_ptr[k + 1] {
                    scratch[self.l_idx[t]] -= self.l_val[t] * yk;
                }
            }
        }
        // U·x = y (backward)
        for k in (0..self.n).rev() {
            let xk = scratch[k] / self.u_diag[k];
            scratch[k] = xk;
            if xk != 0.0 {
                for t in self.u_ptr[k]..self.u_ptr[k + 1] {
                    scratch[self.u_idx[t]] -= self.u_val[t] * xk;
                }
            }
        }
        // x = Q·(position-space solution)
        for p in 0..self.n {
            b[self.col_of[p]] = scratch[p];
        }
    }

    /// Solves `B·x = b` for a *sparse* right-hand side given as `(row,
    /// value)` entries in original-row space, writing the solution (in
    /// basis-column space) into `out`, which must be all-zero on entry.
    ///
    /// Exploits hyper-sparsity two ways: the permutation gather of the
    /// dense path is replaced by scattering only the given entries, and the
    /// forward `L` sweep starts at the first pivot position the input
    /// touches (everything before it provably stays zero). The backward
    /// `U` sweep still spans all positions but skips zero values, so a
    /// single-column FTRAN on a near-triangular basis costs `O(n)` index
    /// arithmetic plus work proportional to the true fill.
    pub fn ftran_sparse<I: IntoIterator<Item = (usize, f64)>>(
        &self,
        entries: I,
        out: &mut [f64],
        scratch: &mut Vec<f64>,
    ) {
        debug_assert_eq!(out.len(), self.n);
        scratch.clear();
        scratch.resize(self.n, 0.0);
        let mut first = self.n;
        for (r, v) in entries {
            let p = self.pos_of[r];
            scratch[p] += v;
            if p < first {
                first = p;
            }
        }
        // L·y = P·b (forward, unit diagonal): positions before `first` are
        // zero on input and L is lower triangular, so they stay zero.
        for k in first..self.n {
            let yk = scratch[k];
            if yk != 0.0 {
                for t in self.l_ptr[k]..self.l_ptr[k + 1] {
                    scratch[self.l_idx[t]] -= self.l_val[t] * yk;
                }
            }
        }
        // U·x = y (backward). Updates propagate toward position 0, so the
        // sweep cannot be truncated at `first`, only value-skipped.
        for k in (0..self.n).rev() {
            let xk = scratch[k];
            if xk != 0.0 {
                let xk = xk / self.u_diag[k];
                scratch[k] = xk;
                for t in self.u_ptr[k]..self.u_ptr[k + 1] {
                    scratch[self.u_idx[t]] -= self.u_val[t] * xk;
                }
            }
        }
        // x = Q·y, scattering only nonzeros into the caller's zeroed buffer.
        for p in 0..self.n {
            let v = scratch[p];
            if v != 0.0 {
                out[self.col_of[p]] = v;
            }
        }
    }

    /// Solves `Bᵀ·y = c` in place like [`SparseLu::btran`], optimized for
    /// a sparse right-hand side (e.g. the unit vector `eᵣ` of a dual
    /// simplex row BTRAN): the forward `Uᵀ` sweep starts at the first
    /// position the (column-permuted) input actually touches — everything
    /// before it is provably zero because `Uᵀ` is lower triangular — and
    /// inner elimination loops are value-skipped.
    pub fn btran_sparse(&self, c: &mut [f64], scratch: &mut Vec<f64>) {
        debug_assert_eq!(c.len(), self.n);
        scratch.resize(self.n, 0.0);
        let mut first = self.n;
        for k in 0..self.n {
            if c[self.col_of[k]] != 0.0 {
                first = k;
                break;
            }
        }
        scratch[..first].fill(0.0);
        // Uᵀ·w = Qᵀ·c (forward, skipping the provably-zero prefix).
        for k in first..self.n {
            let mut s = c[self.col_of[k]];
            for t in self.u_ptr[k]..self.u_ptr[k + 1] {
                s -= self.u_val[t] * scratch[self.u_idx[t]];
            }
            scratch[k] = if s != 0.0 { s / self.u_diag[k] } else { 0.0 };
        }
        // Lᵀ·v = w (backward, unit diagonal).
        for k in (0..self.n).rev() {
            let mut s = scratch[k];
            for t in self.l_ptr[k]..self.l_ptr[k + 1] {
                s -= self.l_val[t] * scratch[self.l_idx[t]];
            }
            scratch[k] = s;
        }
        // y = Pᵀ·v
        for p in 0..self.n {
            c[self.row_of[p]] = scratch[p];
        }
    }

    /// Solves `Bᵀ·y = c` in place: `c` enters in basis-column space and
    /// leaves as `y` in original-row space.
    pub fn btran(&self, c: &mut [f64], scratch: &mut Vec<f64>) {
        debug_assert_eq!(c.len(), self.n);
        scratch.resize(self.n, 0.0);
        // Uᵀ·w = Qᵀ·c (forward)
        for k in 0..self.n {
            let mut s = c[self.col_of[k]];
            for t in self.u_ptr[k]..self.u_ptr[k + 1] {
                s -= self.u_val[t] * scratch[self.u_idx[t]];
            }
            scratch[k] = s / self.u_diag[k];
        }
        // Lᵀ·v = w (backward, unit diagonal)
        for k in (0..self.n).rev() {
            let mut s = scratch[k];
            for t in self.l_ptr[k]..self.l_ptr[k + 1] {
                s -= self.l_val[t] * scratch[self.l_idx[t]];
            }
            scratch[k] = s;
        }
        // y = Pᵀ·v
        for p in 0..self.n {
            c[self.row_of[p]] = scratch[p];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_to_cols(a: &[&[f64]]) -> ColMatrix {
        let n = a.len();
        let mut m = ColMatrix::new(n);
        for j in 0..n {
            m.push_col((0..n).map(|i| (i, a[i][j])).filter(|&(_, v)| v != 0.0));
        }
        m
    }

    fn assert_solves(a: &[&[f64]]) {
        let n = a.len();
        let m = dense_to_cols(a);
        let lu = SparseLu::factorize(&m).expect("factorize");
        let mut scratch = Vec::new();

        // FTRAN against known product.
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
        let mut b = m.mul_vec(&x_true);
        lu.ftran(&mut b, &mut scratch);
        for i in 0..n {
            assert!(
                (b[i] - x_true[i]).abs() < 1e-9,
                "ftran mismatch at {i}: {} vs {}",
                b[i],
                x_true[i]
            );
        }

        // BTRAN: check Bᵀ·y = c.
        let c_true: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.25).collect();
        let mut c = c_true.clone();
        lu.btran(&mut c, &mut scratch);
        for j in 0..n {
            let mut dot = 0.0;
            for (r, v) in m.col(j) {
                dot += v * c[r];
            }
            assert!(
                (dot - c_true[j]).abs() < 1e-9,
                "btran residual at {j}: {dot} vs {}",
                c_true[j]
            );
        }
    }

    #[test]
    fn identity() {
        assert_solves(&[&[1.0, 0.0], &[0.0, 1.0]]);
    }

    #[test]
    fn permuted_identity() {
        assert_solves(&[&[0.0, 0.0, 1.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
    }

    #[test]
    fn general_dense_3x3() {
        assert_solves(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]);
    }

    #[test]
    fn requires_pivoting() {
        // Zero on the diagonal forces a row exchange.
        assert_solves(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert_solves(&[&[0.0, 2.0, 3.0], &[1.0, 0.0, 1.0], &[2.0, 1.0, 0.0]]);
    }

    #[test]
    fn negative_slack_columns() {
        // Simplex bases mix ±unit columns with structural columns.
        assert_solves(&[&[-1.0, 0.0, 0.5], &[0.0, -1.0, 2.0], &[0.0, 0.0, 1.5]]);
    }

    #[test]
    fn singular_is_detected() {
        let m = dense_to_cols(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(SparseLu::factorize(&m).is_err());
    }

    #[test]
    fn not_square_is_detected() {
        let mut m = ColMatrix::new(3);
        m.push_col([(0, 1.0)]);
        assert!(SparseLu::factorize(&m).is_err());
    }

    #[test]
    fn bidiagonal_chain_like_battery_dynamics() {
        // The structure produced by battery level-linking constraints.
        let n = 50;
        let mut m = ColMatrix::new(n);
        for j in 0..n {
            let mut col = vec![(j, 1.0)];
            if j > 0 {
                col.push((j - 1, -0.75));
            }
            m.push_col(col);
        }
        let lu = SparseLu::factorize(&m).expect("factorize");
        // No fill-in beyond the original bidiagonal pattern.
        assert!(lu.fill_nnz() <= 2 * n);
        let mut scratch = Vec::new();
        let x_true: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.3 - 1.0).collect();
        let mut b = m.mul_vec(&x_true);
        lu.ftran(&mut b, &mut scratch);
        for i in 0..n {
            assert!((b[i] - x_true[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn exact_cancellation_does_not_duplicate_l_entries() {
        // Regression test: unit-coefficient matrices cancel exactly during
        // elimination; re-adding a row to the touched list on the 0→nonzero
        // transition used to duplicate L entries (applied twice in solves).
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        for _ in 0..50 {
            let n = 12;
            let mut rows: Vec<Vec<f64>> = vec![vec![0.0; n]; n];
            for (i, row) in rows.iter_mut().enumerate() {
                for (j, cell) in row.iter_mut().enumerate() {
                    if rng.gen_bool(0.45) {
                        // ±1 entries make exact cancellation common.
                        *cell = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                    }
                    if i == j {
                        *cell += 3.0;
                    }
                }
            }
            let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            assert_solves(&refs);
        }
    }

    #[test]
    fn row_matrix_mirrors_columns() {
        let mut m = ColMatrix::new(3);
        m.push_col([(0, 1.0), (2, -2.0)]);
        m.push_col([(1, 3.0)]);
        m.push_col([(0, 4.0), (1, 5.0), (2, 6.0)]);
        m.push_col([]);
        let rows = RowMatrix::from_cols(&m);
        assert_eq!(rows.n_rows(), 3);
        let collect = |i: usize| rows.row(i).collect::<Vec<_>>();
        assert_eq!(collect(0), vec![(0, 1.0), (2, 4.0)]);
        assert_eq!(collect(1), vec![(1, 3.0), (2, 5.0)]);
        assert_eq!(collect(2), vec![(0, -2.0), (2, 6.0)]);
    }

    #[test]
    fn sparse_solves_agree_with_dense_solves() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for trial in 0..30 {
            let n = 5 + trial % 11;
            let mut rows: Vec<Vec<f64>> = vec![vec![0.0; n]; n];
            for (i, row) in rows.iter_mut().enumerate() {
                for (j, cell) in row.iter_mut().enumerate() {
                    if rng.gen_bool(0.35) {
                        *cell = rng.gen_range(-2.0..2.0);
                    }
                    if i == j {
                        *cell += 4.0;
                    }
                }
            }
            let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            let m = dense_to_cols(&refs);
            let lu = SparseLu::factorize(&m).expect("factorize");
            let mut scratch = Vec::new();

            // Sparse FTRAN of a random column == dense FTRAN of the same.
            let q = rng.gen_range(0..n);
            let mut dense = vec![0.0; n];
            for (r, v) in m.col(q) {
                dense[r] = v;
            }
            lu.ftran(&mut dense, &mut scratch);
            let mut sparse = vec![0.0; n];
            lu.ftran_sparse(m.col(q), &mut sparse, &mut scratch);
            for i in 0..n {
                assert!(
                    (dense[i] - sparse[i]).abs() < 1e-12,
                    "ftran_sparse mismatch at {i}"
                );
            }

            // Unit BTRAN via btran_sparse == dense btran.
            let r = rng.gen_range(0..n);
            let mut dense = vec![0.0; n];
            dense[r] = 1.0;
            lu.btran(&mut dense, &mut scratch);
            let mut sparse = vec![0.0; n];
            sparse[r] = 1.0;
            lu.btran_sparse(&mut sparse, &mut scratch);
            for i in 0..n {
                assert!(
                    (dense[i] - sparse[i]).abs() < 1e-12,
                    "btran_sparse mismatch at {i}"
                );
            }
        }
    }

    #[test]
    fn random_matrices_round_trip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        for trial in 0..20 {
            let n = 4 + trial % 13;
            // Diagonally-dominated random matrix: always nonsingular.
            let mut rows: Vec<Vec<f64>> = vec![vec![0.0; n]; n];
            for (i, row) in rows.iter_mut().enumerate() {
                for (j, cell) in row.iter_mut().enumerate() {
                    if rng.gen_bool(0.4) {
                        *cell = rng.gen_range(-2.0..2.0);
                    }
                    if i == j {
                        *cell += 4.0;
                    }
                }
            }
            let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            assert_solves(&refs);
        }
    }
}
