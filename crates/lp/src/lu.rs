//! Sparse LU factorization of simplex basis matrices.
//!
//! The revised simplex refactorizes its basis every few dozen pivots. Basis
//! matrices arising from the siting formulation are extremely sparse (3–6
//! nonzeros per column), so a dense factorization would dominate solve time.
//! [`SparseLu`] implements a left-looking column LU with partial pivoting:
//! `P·B = L·U` with `L` unit lower triangular and `U` upper triangular, both
//! stored column-wise in pivot-position space. Triangular solves use a dense
//! workspace and run in `O(n + nnz(L+U))`.

// Index loops here sweep multiple parallel arrays of the numerical kernel;
// iterator rewrites obscure the linear algebra.
#![allow(clippy::needless_range_loop)]
use crate::model::SolveError;

/// A sparse matrix stored in compressed-column form, used to hand basis
/// columns to the factorization.
#[derive(Debug, Clone, Default)]
pub struct ColMatrix {
    n_rows: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl ColMatrix {
    /// Creates an empty matrix with `n_rows` rows and no columns.
    pub fn new(n_rows: usize) -> Self {
        Self {
            n_rows,
            col_ptr: vec![0],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Appends a column given as `(row, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any row index is out of range.
    pub fn push_col<I: IntoIterator<Item = (usize, f64)>>(&mut self, entries: I) {
        for (r, v) in entries {
            assert!(r < self.n_rows, "row index {r} out of range");
            if v != 0.0 {
                self.row_idx.push(r);
                self.values.push(v);
            }
        }
        self.col_ptr.push(self.row_idx.len());
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The `(row, value)` entries of column `j`.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Multiplies `self · x` into a fresh vector (used by tests/validation).
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        for j in 0..self.n_cols() {
            let xj = x[j];
            if xj != 0.0 {
                for (r, v) in self.col(j) {
                    y[r] += v * xj;
                }
            }
        }
        y
    }
}

/// Sparse LU factors of a square basis matrix, with row pivoting.
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// L (unit diagonal implicit), columns in position space, entries strictly
    /// below the diagonal.
    l_ptr: Vec<usize>,
    l_idx: Vec<usize>,
    l_val: Vec<f64>,
    /// U columns in position space, entries strictly above the diagonal.
    u_ptr: Vec<usize>,
    u_idx: Vec<usize>,
    u_val: Vec<f64>,
    u_diag: Vec<f64>,
    /// `row_of[p]` = original row pivoted at position `p`.
    row_of: Vec<usize>,
    /// `pos_of[r]` = pivot position of original row `r`.
    pos_of: Vec<usize>,
}

/// Smallest acceptable pivot magnitude.
const PIVOT_TOL: f64 = 1e-11;

/// Structured factorization failure, rich enough to drive basis repair:
/// a warm-start installer can swap the dead column for the slack of a
/// not-yet-pivoted row and retry.
#[derive(Debug, Clone)]
pub enum FactorizeError {
    /// The matrix is not square.
    NotSquare {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
    /// No acceptable pivot exists for position `col`: that basis column is
    /// (numerically) dependent on its predecessors.
    Singular {
        /// Zero-based position of the failing column.
        col: usize,
        /// `pivoted[r]` is `true` for original rows already holding a pivot
        /// when the factorization gave up; any `false` row is a valid
        /// replacement target.
        pivoted: Vec<bool>,
    },
}

impl FactorizeError {
    fn to_solve_error(&self) -> SolveError {
        match self {
            FactorizeError::NotSquare { rows, cols } => {
                SolveError::Numerical(format!("basis not square: {rows}x{cols}"))
            }
            FactorizeError::Singular { col, .. } => {
                SolveError::Numerical(format!("singular basis at column {col}"))
            }
        }
    }
}

impl SparseLu {
    /// Factorizes the square matrix whose columns are given by `basis`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Numerical`] if the matrix is (numerically)
    /// singular or not square.
    pub fn factorize(basis: &ColMatrix) -> Result<Self, SolveError> {
        Self::factorize_detailed(basis).map_err(|e| e.to_solve_error())
    }

    /// Factorizes, reporting singularity with enough structure for the
    /// caller to repair the basis (see [`FactorizeError`]).
    ///
    /// # Errors
    ///
    /// [`FactorizeError::NotSquare`] / [`FactorizeError::Singular`].
    pub fn factorize_detailed(basis: &ColMatrix) -> Result<Self, FactorizeError> {
        let n = basis.n_rows();
        if basis.n_cols() != n {
            return Err(FactorizeError::NotSquare {
                rows: n,
                cols: basis.n_cols(),
            });
        }
        let mut lu = SparseLu {
            n,
            l_ptr: Vec::with_capacity(n + 1),
            l_idx: Vec::new(),
            l_val: Vec::new(),
            u_ptr: Vec::with_capacity(n + 1),
            u_idx: Vec::new(),
            u_val: Vec::new(),
            u_diag: vec![0.0; n],
            row_of: vec![usize::MAX; n],
            pos_of: vec![usize::MAX; n],
        };
        lu.l_ptr.push(0);
        lu.u_ptr.push(0);

        // Dense workspace indexed by ORIGINAL row index, plus the list of
        // touched entries for sparse reset. Membership must be tracked with
        // an explicit mark — testing `x[r] == 0.0` would re-add a row whose
        // value cancelled exactly to zero, duplicating entries in L.
        let mut x = vec![0.0; n];
        let mut mark = vec![false; n];
        let mut touched: Vec<usize> = Vec::with_capacity(64);

        for k in 0..n {
            // Scatter column k.
            for (r, v) in basis.col(k) {
                if !mark[r] {
                    mark[r] = true;
                    touched.push(r);
                }
                x[r] += v;
            }

            // Left-looking elimination: apply pivots 0..k in position order.
            // A pivot p only updates rows that were not pivoted before p, so
            // increasing-order processing over original-row workspace is
            // exact.
            for p in 0..k {
                let pr = lu.row_of[p];
                let xp = x[pr];
                if xp == 0.0 {
                    continue;
                }
                // U[p, k] = xp; eliminate using L column p.
                lu.u_idx.push(p);
                lu.u_val.push(xp);
                let lo = lu.l_ptr[p];
                let hi = lu.l_ptr[p + 1];
                for t in lo..hi {
                    let r = lu.l_idx[t];
                    if !mark[r] {
                        mark[r] = true;
                        touched.push(r);
                    }
                    x[r] -= lu.l_val[t] * xp;
                }
                x[pr] = 0.0;
            }
            lu.u_ptr.push(lu.u_idx.len());

            // Partial pivot among unpivoted rows.
            let mut piv_row = usize::MAX;
            let mut piv_abs = PIVOT_TOL;
            for &r in &touched {
                if lu.pos_of[r] == usize::MAX {
                    let a = x[r].abs();
                    if a > piv_abs {
                        piv_abs = a;
                        piv_row = r;
                    }
                }
            }
            if piv_row == usize::MAX {
                return Err(FactorizeError::Singular {
                    col: k,
                    pivoted: lu.pos_of.iter().map(|&p| p != usize::MAX).collect(),
                });
            }
            let piv_val = x[piv_row];
            lu.u_diag[k] = piv_val;
            lu.row_of[k] = piv_row;
            lu.pos_of[piv_row] = k;

            // L column k: remaining unpivoted nonzeros, scaled.
            for &r in &touched {
                if r != piv_row && lu.pos_of[r] == usize::MAX && x[r] != 0.0 {
                    lu.l_idx.push(r);
                    lu.l_val.push(x[r] / piv_val);
                }
            }
            lu.l_ptr.push(lu.l_idx.len());

            // Sparse reset.
            for &r in &touched {
                x[r] = 0.0;
                mark[r] = false;
            }
            touched.clear();
        }

        // Convert L's row indices from original-row space to position space so
        // the triangular solves are pure position-space sweeps.
        for idx in &mut lu.l_idx {
            *idx = lu.pos_of[*idx];
        }
        Ok(lu)
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Nonzeros stored in the factors (fill-in indicator).
    pub fn fill_nnz(&self) -> usize {
        self.l_idx.len() + self.u_idx.len() + self.n
    }

    /// Solves `B·x = b` in place: `b` enters in original-row space and leaves
    /// as `x` in basis-column (position) space.
    pub fn ftran(&self, b: &mut [f64], scratch: &mut Vec<f64>) {
        debug_assert_eq!(b.len(), self.n);
        scratch.resize(self.n, 0.0);
        // z = P·b
        for p in 0..self.n {
            scratch[p] = b[self.row_of[p]];
        }
        // L·y = z (forward, unit diagonal)
        for k in 0..self.n {
            let yk = scratch[k];
            if yk != 0.0 {
                for t in self.l_ptr[k]..self.l_ptr[k + 1] {
                    scratch[self.l_idx[t]] -= self.l_val[t] * yk;
                }
            }
        }
        // U·x = y (backward)
        for k in (0..self.n).rev() {
            let xk = scratch[k] / self.u_diag[k];
            scratch[k] = xk;
            if xk != 0.0 {
                for t in self.u_ptr[k]..self.u_ptr[k + 1] {
                    scratch[self.u_idx[t]] -= self.u_val[t] * xk;
                }
            }
        }
        b.copy_from_slice(scratch);
    }

    /// Solves `Bᵀ·y = c` in place: `c` enters in basis-column (position)
    /// space and leaves as `y` in original-row space.
    pub fn btran(&self, c: &mut [f64], scratch: &mut Vec<f64>) {
        debug_assert_eq!(c.len(), self.n);
        scratch.resize(self.n, 0.0);
        // Uᵀ·w = c (forward)
        for k in 0..self.n {
            let mut s = c[k];
            for t in self.u_ptr[k]..self.u_ptr[k + 1] {
                s -= self.u_val[t] * scratch[self.u_idx[t]];
            }
            scratch[k] = s / self.u_diag[k];
        }
        // Lᵀ·v = w (backward, unit diagonal)
        for k in (0..self.n).rev() {
            let mut s = scratch[k];
            for t in self.l_ptr[k]..self.l_ptr[k + 1] {
                s -= self.l_val[t] * scratch[self.l_idx[t]];
            }
            scratch[k] = s;
        }
        // y = Pᵀ·v
        for p in 0..self.n {
            c[self.row_of[p]] = scratch[p];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_to_cols(a: &[&[f64]]) -> ColMatrix {
        let n = a.len();
        let mut m = ColMatrix::new(n);
        for j in 0..n {
            m.push_col((0..n).map(|i| (i, a[i][j])).filter(|&(_, v)| v != 0.0));
        }
        m
    }

    fn assert_solves(a: &[&[f64]]) {
        let n = a.len();
        let m = dense_to_cols(a);
        let lu = SparseLu::factorize(&m).expect("factorize");
        let mut scratch = Vec::new();

        // FTRAN against known product.
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
        let mut b = m.mul_vec(&x_true);
        lu.ftran(&mut b, &mut scratch);
        for i in 0..n {
            assert!(
                (b[i] - x_true[i]).abs() < 1e-9,
                "ftran mismatch at {i}: {} vs {}",
                b[i],
                x_true[i]
            );
        }

        // BTRAN: check Bᵀ·y = c.
        let c_true: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.25).collect();
        let mut c = c_true.clone();
        lu.btran(&mut c, &mut scratch);
        for j in 0..n {
            let mut dot = 0.0;
            for (r, v) in m.col(j) {
                dot += v * c[r];
            }
            assert!(
                (dot - c_true[j]).abs() < 1e-9,
                "btran residual at {j}: {dot} vs {}",
                c_true[j]
            );
        }
    }

    #[test]
    fn identity() {
        assert_solves(&[&[1.0, 0.0], &[0.0, 1.0]]);
    }

    #[test]
    fn permuted_identity() {
        assert_solves(&[&[0.0, 0.0, 1.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
    }

    #[test]
    fn general_dense_3x3() {
        assert_solves(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]);
    }

    #[test]
    fn requires_pivoting() {
        // Zero on the diagonal forces a row exchange.
        assert_solves(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert_solves(&[&[0.0, 2.0, 3.0], &[1.0, 0.0, 1.0], &[2.0, 1.0, 0.0]]);
    }

    #[test]
    fn negative_slack_columns() {
        // Simplex bases mix ±unit columns with structural columns.
        assert_solves(&[&[-1.0, 0.0, 0.5], &[0.0, -1.0, 2.0], &[0.0, 0.0, 1.5]]);
    }

    #[test]
    fn singular_is_detected() {
        let m = dense_to_cols(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(SparseLu::factorize(&m).is_err());
    }

    #[test]
    fn not_square_is_detected() {
        let mut m = ColMatrix::new(3);
        m.push_col([(0, 1.0)]);
        assert!(SparseLu::factorize(&m).is_err());
    }

    #[test]
    fn bidiagonal_chain_like_battery_dynamics() {
        // The structure produced by battery level-linking constraints.
        let n = 50;
        let mut m = ColMatrix::new(n);
        for j in 0..n {
            let mut col = vec![(j, 1.0)];
            if j > 0 {
                col.push((j - 1, -0.75));
            }
            m.push_col(col);
        }
        let lu = SparseLu::factorize(&m).expect("factorize");
        // No fill-in beyond the original bidiagonal pattern.
        assert!(lu.fill_nnz() <= 2 * n);
        let mut scratch = Vec::new();
        let x_true: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.3 - 1.0).collect();
        let mut b = m.mul_vec(&x_true);
        lu.ftran(&mut b, &mut scratch);
        for i in 0..n {
            assert!((b[i] - x_true[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn exact_cancellation_does_not_duplicate_l_entries() {
        // Regression test: unit-coefficient matrices cancel exactly during
        // elimination; re-adding a row to the touched list on the 0→nonzero
        // transition used to duplicate L entries (applied twice in solves).
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        for _ in 0..50 {
            let n = 12;
            let mut rows: Vec<Vec<f64>> = vec![vec![0.0; n]; n];
            for (i, row) in rows.iter_mut().enumerate() {
                for (j, cell) in row.iter_mut().enumerate() {
                    if rng.gen_bool(0.45) {
                        // ±1 entries make exact cancellation common.
                        *cell = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                    }
                    if i == j {
                        *cell += 3.0;
                    }
                }
            }
            let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            assert_solves(&refs);
        }
    }

    #[test]
    fn random_matrices_round_trip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        for trial in 0..20 {
            let n = 4 + trial % 13;
            // Diagonally-dominated random matrix: always nonsingular.
            let mut rows: Vec<Vec<f64>> = vec![vec![0.0; n]; n];
            for (i, row) in rows.iter_mut().enumerate() {
                for (j, cell) in row.iter_mut().enumerate() {
                    if rng.gen_bool(0.4) {
                        *cell = rng.gen_range(-2.0..2.0);
                    }
                    if i == j {
                        *cell += 4.0;
                    }
                }
            }
            let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            assert_solves(&refs);
        }
    }
}
