//! The crate's one sanctioned wall-clock access point.
//!
//! gclint's `wall-clock` rule forbids `Instant::now`/`SystemTime::now`
//! everywhere except a file named `wallclock.rs`, so every timing read is
//! forced through here — making it auditable that measured wall time only
//! ever lands in fields the determinism tests exclude from comparison
//! (`SolveStats::pricing_ns` and friends), never in solver decisions or
//! report bodies that are pinned byte-for-byte.

use std::time::Instant;

/// A started timer for accumulating nanosecond counters.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Reads the monotonic clock and starts timing.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Nanoseconds since [`Stopwatch::start`], saturating at `u64::MAX`.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}
