//! Independent feasibility checking of candidate solutions.
//!
//! The solvers in this crate are nontrivial numerical code; every test and
//! every higher-level consumer can cheaply re-verify that a reported
//! solution actually satisfies the model. This module performs that check
//! without sharing any code with the solvers themselves.

use crate::model::{Model, Sense};
use std::fmt;

/// A single constraint or bound violation found by [`check_feasible`].
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Human-readable owner of the violated condition (variable or
    /// constraint name).
    pub name: String,
    /// How far outside the allowed region the value lies.
    pub amount: f64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} violated by {:.3e}", self.name, self.amount)
    }
}

/// Checks `values` against every bound and constraint of `model`.
///
/// Violations larger than `tol` (scaled by the constraint's magnitude) are
/// reported; an empty vector means the point is feasible.
pub fn check_feasible(model: &Model, values: &[f64], tol: f64) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, v) in model.vars.iter().enumerate() {
        let x = values[i];
        let scale = 1.0 + x.abs();
        if x < v.lb - tol * scale {
            out.push(Violation {
                name: format!("lb({})", v.name),
                amount: v.lb - x,
            });
        }
        if x > v.ub + tol * scale {
            out.push(Violation {
                name: format!("ub({})", v.name),
                amount: x - v.ub,
            });
        }
    }
    for con in &model.cons {
        let lhs: f64 = con.terms.iter().map(|&(v, c)| c * values[v.index()]).sum();
        let scale = 1.0 + con.rhs.abs() + con.terms.iter().map(|t| t.1.abs()).sum::<f64>();
        let violated = match con.sense {
            Sense::Le => lhs - con.rhs,
            Sense::Ge => con.rhs - lhs,
            Sense::Eq => (lhs - con.rhs).abs(),
        };
        if violated > tol * scale {
            out.push(Violation {
                name: con.name.clone(),
                amount: violated,
            });
        }
    }
    out
}

/// Panics with a readable report if `values` is infeasible for `model`.
///
/// # Panics
///
/// Panics when [`check_feasible`] reports any violation beyond `tol`.
pub fn assert_feasible(model: &Model, values: &[f64], tol: f64) {
    let violations = check_feasible(model, values, tol);
    assert!(
        violations.is_empty(),
        "solution infeasible: {}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn clean_point_passes() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 5.0, 1.0);
        m.add_con("c", [(x, 2.0)], Sense::Le, 6.0);
        assert!(check_feasible(&m, &[3.0], 1e-9).is_empty());
    }

    #[test]
    fn bound_violations_reported() {
        let mut m = Model::new();
        m.add_var("x", 0.0, 1.0, 0.0);
        let v = check_feasible(&m, &[2.0], 1e-9);
        assert_eq!(v.len(), 1);
        assert!(v[0].name.contains("ub(x)"));
    }

    #[test]
    fn each_sense_checked() {
        let mut m = Model::new();
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 0.0);
        m.add_con("le", [(x, 1.0)], Sense::Le, 1.0);
        m.add_con("ge", [(x, 1.0)], Sense::Ge, -1.0);
        m.add_con("eq", [(x, 1.0)], Sense::Eq, 0.5);
        assert!(check_feasible(&m, &[0.5], 1e-9).is_empty());
        assert_eq!(check_feasible(&m, &[2.0], 1e-9).len(), 2); // le + eq
    }

    #[test]
    #[should_panic(expected = "solution infeasible")]
    fn assert_feasible_panics() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0, 0.0);
        m.add_con("c", [(x, 1.0)], Sense::Ge, 5.0);
        assert_feasible(&m, &[0.0], 1e-9);
    }
}
