//! Problem definition: variables, constraints, objective.

use crate::expr::LinExpr;
use crate::revised::{RevisedSimplex, SimplexOptions};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// Handle to a decision variable in a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Zero-based position of the variable in its model.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs a handle from a raw index. Intended for callers that
    /// assemble models from pre-compiled blocks and track offsets
    /// themselves; the index must refer to a variable that exists in the
    /// target model by the time the handle is used.
    pub fn from_index(index: usize) -> Self {
        VarId(index)
    }
}

/// Handle to a constraint in a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConId(pub(crate) usize);

impl ConId {
    /// Zero-based position of the constraint in its model.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sense {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

impl fmt::Display for Sense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sense::Le => "<=",
            Sense::Ge => ">=",
            Sense::Eq => "=",
        })
    }
}

/// Continuity class of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum VarKind {
    /// Real-valued.
    #[default]
    Continuous,
    /// Integer-valued (enforced by [`crate::BranchAndBound`], relaxed by the
    /// pure-LP solvers).
    Integer,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct VarDef {
    pub name: String,
    pub lb: f64,
    pub ub: f64,
    pub obj: f64,
    pub kind: VarKind,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct ConDef {
    pub name: String,
    pub terms: Vec<(VarId, f64)>,
    pub sense: Sense,
    pub rhs: f64,
}

/// Error returned by the solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
    /// The iteration limit was exceeded before reaching optimality.
    IterationLimit,
    /// Numerical difficulty the solver could not recover from.
    Numerical(String),
    /// The model is malformed (e.g. a variable with `lb > ub`).
    InvalidModel(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "problem is infeasible"),
            SolveError::Unbounded => write!(f, "objective is unbounded"),
            SolveError::IterationLimit => write!(f, "iteration limit exceeded"),
            SolveError::Numerical(msg) => write!(f, "numerical trouble: {msg}"),
            SolveError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// An optimal solution to a [`Model`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Solution {
    /// Objective value (minimization).
    pub objective: f64,
    /// Value of every variable, indexed by [`VarId::index`].
    pub values: Vec<f64>,
    /// Simplex iterations spent (phase 1 + phase 2), when reported.
    /// Mirrors [`Solution::stats`]`.iterations`; kept as a direct field for
    /// API stability with earlier callers.
    pub iterations: usize,
    /// Final simplex basis, when the solver maintains one (the revised
    /// simplex does; the dense tableau and branch & bound report `None`).
    /// Feed it to [`Model::solve_with_basis`] to warm-start a re-solve.
    pub basis: Option<crate::revised::Basis>,
    /// `true` when the solve actually started from a supplied warm basis
    /// (rather than falling back to the cold crash basis).
    pub warm_started: bool,
    /// Per-solve solver counters (iterations, refactorizations,
    /// FTRAN/BTRAN counts, pricing time). The revised simplex fills every
    /// field; branch & bound reports the totals accumulated across every
    /// node relaxation it solved; the dense tableau reports iterations
    /// only.
    pub stats: crate::revised::SolveStats,
}

impl Solution {
    /// Value of `var` in this solution.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }
}

impl Index<VarId> for Solution {
    type Output = f64;
    fn index(&self, var: VarId) -> &f64 {
        &self.values[var.index()]
    }
}

/// A linear (or mixed-integer) program in minimization form.
///
/// Variables carry bounds and objective coefficients; constraints are linear
/// expressions compared against a right-hand side. The model is solved with
/// [`Model::solve`] (LP, integrality relaxed) or
/// [`crate::BranchAndBound`] (MILP).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Model {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) cons: Vec<ConDef>,
    pub(crate) obj_offset: f64,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a continuous variable with bounds `[lb, ub]` and objective
    /// coefficient `obj`; returns its handle.
    pub fn add_var(&mut self, name: impl Into<String>, lb: f64, ub: f64, obj: f64) -> VarId {
        self.add_var_kind(name, lb, ub, obj, VarKind::Continuous)
    }

    /// Adds an integer variable (see [`VarKind::Integer`]).
    pub fn add_int_var(&mut self, name: impl Into<String>, lb: f64, ub: f64, obj: f64) -> VarId {
        self.add_var_kind(name, lb, ub, obj, VarKind::Integer)
    }

    /// Adds a binary (0/1 integer) variable.
    pub fn add_bin_var(&mut self, name: impl Into<String>, obj: f64) -> VarId {
        self.add_var_kind(name, 0.0, 1.0, obj, VarKind::Integer)
    }

    fn add_var_kind(
        &mut self,
        name: impl Into<String>,
        lb: f64,
        ub: f64,
        obj: f64,
        kind: VarKind,
    ) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(VarDef {
            name: name.into(),
            lb,
            ub,
            obj,
            kind,
        });
        id
    }

    /// Adds the constraint `Σ coeff·var  sense  rhs` from an iterator of
    /// terms; returns its handle.
    pub fn add_con<I>(&mut self, name: impl Into<String>, terms: I, sense: Sense, rhs: f64) -> ConId
    where
        I: IntoIterator<Item = (VarId, f64)>,
    {
        let expr: LinExpr = terms.into_iter().collect();
        self.add_con_expr(name, expr, sense, rhs)
    }

    /// Adds the constraint `expr  sense  rhs`. The expression's constant part
    /// is moved to the right-hand side.
    pub fn add_con_expr(
        &mut self,
        name: impl Into<String>,
        mut expr: LinExpr,
        sense: Sense,
        rhs: f64,
    ) -> ConId {
        expr.compress();
        let id = ConId(self.cons.len());
        let adjusted_rhs = rhs - expr.constant_part();
        self.cons.push(ConDef {
            name: name.into(),
            terms: expr.terms().to_vec(),
            sense,
            rhs: adjusted_rhs,
        });
        id
    }

    /// Adds a constant offset to the objective (reported in
    /// [`Solution::objective`]).
    pub fn add_obj_offset(&mut self, offset: f64) {
        self.obj_offset += offset;
    }

    /// Overwrites the objective coefficient of `var`.
    pub fn set_obj(&mut self, var: VarId, obj: f64) {
        self.vars[var.index()].obj = obj;
    }

    /// Adds `delta` to the objective coefficient of `var`.
    pub fn add_obj(&mut self, var: VarId, delta: f64) {
        self.vars[var.index()].obj += delta;
    }

    /// Tightens/replaces the bounds of `var`.
    pub fn set_bounds(&mut self, var: VarId, lb: f64, ub: f64) {
        let v = &mut self.vars[var.index()];
        v.lb = lb;
        v.ub = ub;
    }

    /// Overwrites the right-hand side of `con`. Together with
    /// [`Model::set_con_term`] this lets rolling-horizon callers shift a
    /// model in place between solves instead of rebuilding it.
    pub fn set_rhs(&mut self, con: ConId, rhs: f64) {
        self.cons[con.index()].rhs = rhs;
    }

    /// The right-hand side of `con`.
    pub fn rhs(&self, con: ConId) -> f64 {
        self.cons[con.index()].rhs
    }

    /// Sets the coefficient of `var` in `con`, updating the existing term or
    /// appending a new one when `var` does not yet appear.
    pub fn set_con_term(&mut self, con: ConId, var: VarId, coeff: f64) {
        let terms = &mut self.cons[con.index()].terms;
        if let Some(t) = terms.iter_mut().find(|(v, _)| *v == var) {
            t.1 = coeff;
        } else {
            terms.push((var, coeff));
        }
    }

    /// The bounds `[lb, ub]` of `var`.
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        let v = &self.vars[var.index()];
        (v.lb, v.ub)
    }

    /// The objective coefficient of `var`.
    pub fn obj_coeff(&self, var: VarId) -> f64 {
        self.vars[var.index()].obj
    }

    /// The name of `var`.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.index()].name
    }

    /// The name of `con`.
    pub fn con_name(&self, con: ConId) -> &str {
        &self.cons[con.index()].name
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_cons(&self) -> usize {
        self.cons.len()
    }

    /// Handles of all integer variables.
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Integer)
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Returns `true` if any variable is integer.
    pub fn is_mip(&self) -> bool {
        self.vars.iter().any(|v| v.kind == VarKind::Integer)
    }

    /// Validates structural sanity (finite coefficients, `lb ≤ ub`).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InvalidModel`] describing the first defect found.
    pub fn validate(&self) -> Result<(), SolveError> {
        for (i, v) in self.vars.iter().enumerate() {
            if v.lb > v.ub {
                return Err(SolveError::InvalidModel(format!(
                    "variable {} (#{i}) has lb {} > ub {}",
                    v.name, v.lb, v.ub
                )));
            }
            if !v.obj.is_finite() {
                return Err(SolveError::InvalidModel(format!(
                    "variable {} (#{i}) has non-finite objective coefficient",
                    v.name
                )));
            }
            if v.lb.is_nan() || v.ub.is_nan() {
                return Err(SolveError::InvalidModel(format!(
                    "variable {} (#{i}) has NaN bound",
                    v.name
                )));
            }
        }
        for (i, c) in self.cons.iter().enumerate() {
            if !c.rhs.is_finite() {
                return Err(SolveError::InvalidModel(format!(
                    "constraint {} (#{i}) has non-finite rhs",
                    c.name
                )));
            }
            for &(v, coeff) in &c.terms {
                if v.index() >= self.vars.len() {
                    return Err(SolveError::InvalidModel(format!(
                        "constraint {} (#{i}) references unknown variable",
                        c.name
                    )));
                }
                if !coeff.is_finite() {
                    return Err(SolveError::InvalidModel(format!(
                        "constraint {} (#{i}) has non-finite coefficient",
                        c.name
                    )));
                }
            }
        }
        Ok(())
    }

    /// Solves the LP relaxation with the production revised simplex and
    /// default options.
    ///
    /// Integer variables are treated as continuous; use
    /// [`crate::BranchAndBound`] to enforce integrality.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] / [`SolveError::Unbounded`] for the
    /// corresponding problem statuses, [`SolveError::InvalidModel`] for
    /// malformed input, and [`SolveError::Numerical`] /
    /// [`SolveError::IterationLimit`] when the solver gives up.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        RevisedSimplex::new(SimplexOptions::default()).solve(self)
    }

    /// Solves with explicit simplex options.
    ///
    /// # Errors
    ///
    /// Same as [`Model::solve`].
    pub fn solve_with(&self, options: SimplexOptions) -> Result<Solution, SolveError> {
        RevisedSimplex::new(options).solve(self)
    }

    /// Solves with default options but an explicit entering-column pricing
    /// rule (see [`crate::revised::PricingMode`]).
    ///
    /// # Errors
    ///
    /// Same as [`Model::solve`].
    pub fn solve_with_pricing(
        &self,
        pricing: crate::revised::PricingMode,
    ) -> Result<Solution, SolveError> {
        self.solve_with(SimplexOptions {
            pricing,
            ..SimplexOptions::default()
        })
    }

    /// Solves with explicit simplex options, warm-starting from a basis
    /// previously exported in [`Solution::basis`] (from this model or a
    /// same-shape neighbour). An unusable basis silently falls back to a
    /// cold solve; see [`crate::revised::Basis`].
    ///
    /// # Errors
    ///
    /// Same as [`Model::solve`].
    pub fn solve_with_basis(
        &self,
        options: SimplexOptions,
        warm: Option<&crate::revised::Basis>,
    ) -> Result<Solution, SolveError> {
        RevisedSimplex::new(options).solve_warm(self, warm)
    }

    /// Objective value of an assignment (including the constant offset).
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.obj_offset
            + self
                .vars
                .iter()
                .enumerate()
                .map(|(i, v)| v.obj * values[i])
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 5.0, 1.0);
        let y = m.add_int_var("y", 0.0, 3.0, -2.0);
        let c = m.add_con("c", [(x, 1.0), (y, 1.0)], Sense::Le, 4.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_cons(), 1);
        assert_eq!(m.var_name(x), "x");
        assert_eq!(m.con_name(c), "c");
        assert_eq!(m.bounds(y), (0.0, 3.0));
        assert!(m.is_mip());
        assert_eq!(m.integer_vars(), vec![y]);
    }

    #[test]
    fn constant_moves_to_rhs() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        let mut e = LinExpr::term(x, 1.0);
        e.add_constant(3.0);
        m.add_con_expr("c", e, Sense::Le, 5.0);
        assert_eq!(m.cons[0].rhs, 2.0);
    }

    #[test]
    fn in_place_mutation_shifts_the_solved_problem() {
        // min x subject to x ≥ rhs: the mutated model re-solves correctly,
        // both cold and warm-started from the previous basis.
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 100.0, 1.0);
        let c = m.add_con("c", [(x, 1.0)], Sense::Ge, 3.0);
        let first = m.solve().expect("solve");
        assert!((first.value(x) - 3.0).abs() < 1e-9);
        m.set_rhs(c, 7.0);
        assert_eq!(m.rhs(c), 7.0);
        let warm = m
            .solve_with_basis(SimplexOptions::default(), first.basis.as_ref())
            .expect("warm");
        assert!((warm.value(x) - 7.0).abs() < 1e-9);
        // Doubling the coefficient halves the optimum.
        m.set_con_term(c, x, 2.0);
        let again = m.solve().expect("resolve");
        assert!((again.value(x) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn set_con_term_appends_missing_vars() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        let y = m.add_var("y", 0.0, 10.0, 1.0);
        let c = m.add_con("c", [(x, 1.0)], Sense::Ge, 4.0);
        m.set_con_term(c, y, 1.0);
        let sol = m.solve().expect("solve");
        assert!((sol.value(x) + sol.value(y) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn validate_rejects_bad_bounds() {
        let mut m = Model::new();
        m.add_var("x", 1.0, 0.0, 0.0);
        assert!(matches!(m.validate(), Err(SolveError::InvalidModel(_))));
    }

    #[test]
    fn validate_rejects_nan() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0, 0.0);
        m.add_con("c", [(x, f64::NAN)], Sense::Le, 1.0);
        assert!(matches!(m.validate(), Err(SolveError::InvalidModel(_))));
    }

    #[test]
    fn objective_value_includes_offset() {
        let mut m = Model::new();
        let _x = m.add_var("x", 0.0, 1.0, 2.0);
        m.add_obj_offset(10.0);
        assert_eq!(m.objective_value(&[3.0]), 16.0);
    }

    #[test]
    fn solve_error_display() {
        assert_eq!(SolveError::Infeasible.to_string(), "problem is infeasible");
        assert!(SolveError::Numerical("x".into()).to_string().contains("x"));
    }
}
