//! Property tests: the dense tableau and the revised simplex are two
//! independent implementations — on random models they must agree on
//! status and objective, and any reported solution must verify feasible.

use greencloud_lp::dense::DenseSimplex;
use greencloud_lp::validate::check_feasible;
use greencloud_lp::{Model, Sense, SolveError};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomLp {
    n: usize,
    bounds: Vec<(f64, f64)>,
    obj: Vec<f64>,
    cons: Vec<(Vec<f64>, Sense, f64)>,
}

fn arb_bound() -> impl Strategy<Value = (f64, f64)> {
    prop_oneof![
        // Finite box.
        (-5.0..5.0f64, 0.0..10.0f64).prop_map(|(lo, w)| (lo, lo + w)),
        // Lower-bounded only.
        (-5.0..5.0f64).prop_map(|lo| (lo, f64::INFINITY)),
        // Upper-bounded only.
        (-5.0..5.0f64).prop_map(|hi| (f64::NEG_INFINITY, hi)),
        // Fixed.
        (-3.0..3.0f64).prop_map(|v| (v, v)),
    ]
}

fn arb_sense() -> impl Strategy<Value = Sense> {
    prop_oneof![Just(Sense::Le), Just(Sense::Ge), Just(Sense::Eq)]
}

fn arb_lp() -> impl Strategy<Value = RandomLp> {
    (1usize..6).prop_flat_map(|n| {
        let bounds = prop::collection::vec(arb_bound(), n);
        let obj = prop::collection::vec(-3.0..3.0f64, n);
        let con = (
            prop::collection::vec(-2.0..2.0f64, n),
            arb_sense(),
            -8.0..8.0f64,
        );
        let cons = prop::collection::vec(con, 0..7);
        (bounds, obj, cons).prop_map(move |(bounds, obj, cons)| RandomLp {
            n,
            bounds,
            obj,
            cons,
        })
    })
}

fn build(lp: &RandomLp) -> Model {
    let mut m = Model::new();
    let vars: Vec<_> = (0..lp.n)
        .map(|i| m.add_var(format!("x{i}"), lp.bounds[i].0, lp.bounds[i].1, lp.obj[i]))
        .collect();
    for (k, (coeffs, sense, rhs)) in lp.cons.iter().enumerate() {
        m.add_con(
            format!("c{k}"),
            vars.iter().zip(coeffs.iter()).map(|(&v, &c)| (v, c)),
            *sense,
            *rhs,
        );
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn revised_and_dense_agree(lp in arb_lp()) {
        let m = build(&lp);
        let r = m.solve();
        let d = DenseSimplex::new().solve(&m);
        match (&r, &d) {
            (Ok(rs), Ok(ds)) => {
                let scale = 1.0 + rs.objective.abs().max(ds.objective.abs());
                prop_assert!(
                    (rs.objective - ds.objective).abs() < 1e-5 * scale,
                    "objectives differ: revised={} dense={}",
                    rs.objective, ds.objective
                );
                prop_assert!(check_feasible(&m, &rs.values, 1e-6).is_empty(),
                    "revised solution infeasible");
                prop_assert!(check_feasible(&m, &ds.values, 1e-6).is_empty(),
                    "dense solution infeasible");
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (Err(SolveError::Unbounded), Err(SolveError::Unbounded)) => {}
            // A genuinely borderline model may be classed infeasible by one
            // solver and solved with a near-violating point by the other;
            // only accept that disagreement when a tiny tolerance bridge
            // exists. Anything else is a real bug.
            (Ok(rs), Err(SolveError::Infeasible)) => {
                let v = check_feasible(&m, &rs.values, 1e-9);
                prop_assert!(!v.is_empty() || m.num_cons() == 0,
                    "revised says optimal (clean), dense says infeasible");
            }
            (Err(SolveError::Infeasible), Ok(ds)) => {
                let v = check_feasible(&m, &ds.values, 1e-9);
                prop_assert!(!v.is_empty() || m.num_cons() == 0,
                    "dense says optimal (clean), revised says infeasible");
            }
            (a, b) => {
                prop_assert!(false, "solver disagreement: revised={a:?} dense={b:?}");
            }
        }
    }

    #[test]
    fn optimal_beats_random_feasible_points(lp in arb_lp(), probe in prop::collection::vec(0.0..1.0f64, 6)) {
        let m = build(&lp);
        if let Ok(sol) = m.solve() {
            // Sample a point inside the variable box; if it happens to be
            // feasible, the reported optimum must not be worse.
            let mut point = vec![0.0; lp.n];
            for i in 0..lp.n {
                let (lo, hi) = lp.bounds[i];
                let lo_f = if lo.is_finite() { lo } else { -10.0 };
                let hi_f = if hi.is_finite() { hi } else { 10.0 };
                point[i] = lo_f + (hi_f - lo_f) * probe[i % probe.len()];
            }
            if check_feasible(&m, &point, 1e-9).is_empty() {
                let obj = m.objective_value(&point);
                prop_assert!(
                    sol.objective <= obj + 1e-6 * (1.0 + obj.abs()),
                    "random feasible point beats 'optimal': {} < {}",
                    obj, sol.objective
                );
            }
        }
    }
}

#[test]
fn milp_relaxation_bound_holds() {
    use greencloud_lp::{BranchAndBound, MilpOptions};
    // On a deterministic family of knapsacks, the MILP optimum is never
    // better than the LP relaxation and matches brute force.
    for seed in 0..20u64 {
        let weights: Vec<f64> = (0..6).map(|i| 1.0 + ((seed * 7 + i) % 9) as f64).collect();
        let values: Vec<f64> = (0..6).map(|i| 1.0 + ((seed * 5 + i) % 7) as f64).collect();
        let cap = weights.iter().sum::<f64>() * 0.5;
        let mut m = Model::new();
        let vars: Vec<_> = (0..6)
            .map(|i| m.add_bin_var(format!("x{i}"), -values[i]))
            .collect();
        m.add_con(
            "cap",
            vars.iter().zip(weights.iter()).map(|(&v, &w)| (v, w)),
            Sense::Le,
            cap,
        );
        let relax = m.solve().unwrap();
        let milp = BranchAndBound::new(MilpOptions::default()).solve(&m).unwrap();
        assert!(milp.objective >= relax.objective - 1e-9);
        // Brute force.
        let mut best = 0.0f64;
        for mask in 0u32..64 {
            let w: f64 = (0..6).filter(|i| mask >> i & 1 == 1).map(|i| weights[i]).sum();
            if w <= cap + 1e-9 {
                let v: f64 = (0..6).filter(|i| mask >> i & 1 == 1).map(|i| values[i]).sum();
                best = best.max(v);
            }
        }
        assert!(
            (milp.objective + best).abs() < 1e-6,
            "seed {seed}: milp {} vs brute {}",
            -milp.objective,
            best
        );
    }
}
