//! Property tests: the dense tableau and the revised simplex are two
//! independent implementations — on random models they must agree on
//! status and objective, and any reported solution must verify feasible.
//!
//! Originally written against `proptest`; the offline build environment has
//! no registry access, so the random-model generator is hand-rolled on the
//! vendored ChaCha8 RNG instead. Coverage is the same shape (512 random
//! LPs, mixed bound kinds, all three senses) and fully deterministic.

use greencloud_lp::dense::DenseSimplex;
use greencloud_lp::revised::{Basis, RevisedSimplex, SimplexOptions};
use greencloud_lp::validate::check_feasible;
use greencloud_lp::{Model, Sense, SolveError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

#[derive(Debug, Clone)]
struct RandomLp {
    n: usize,
    bounds: Vec<(f64, f64)>,
    obj: Vec<f64>,
    cons: Vec<(Vec<f64>, Sense, f64)>,
}

fn arb_bound<R: Rng>(rng: &mut R) -> (f64, f64) {
    match rng.gen_range(0..4u32) {
        // Finite box.
        0 => {
            let lo = rng.gen_range(-5.0..5.0);
            (lo, lo + rng.gen_range(0.0..10.0))
        }
        // Lower-bounded only.
        1 => (rng.gen_range(-5.0..5.0), f64::INFINITY),
        // Upper-bounded only.
        2 => (f64::NEG_INFINITY, rng.gen_range(-5.0..5.0)),
        // Fixed.
        _ => {
            let v = rng.gen_range(-3.0..3.0);
            (v, v)
        }
    }
}

fn arb_sense<R: Rng>(rng: &mut R) -> Sense {
    match rng.gen_range(0..3u32) {
        0 => Sense::Le,
        1 => Sense::Ge,
        _ => Sense::Eq,
    }
}

fn arb_lp<R: Rng>(rng: &mut R) -> RandomLp {
    let n = rng.gen_range(1..6usize);
    let bounds: Vec<(f64, f64)> = (0..n).map(|_| arb_bound(rng)).collect();
    let obj: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
    let n_cons = rng.gen_range(0..7usize);
    let cons: Vec<(Vec<f64>, Sense, f64)> = (0..n_cons)
        .map(|_| {
            let coeffs: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            (coeffs, arb_sense(rng), rng.gen_range(-8.0..8.0))
        })
        .collect();
    RandomLp {
        n,
        bounds,
        obj,
        cons,
    }
}

fn build(lp: &RandomLp) -> Model {
    let mut m = Model::new();
    let vars: Vec<_> = (0..lp.n)
        .map(|i| m.add_var(format!("x{i}"), lp.bounds[i].0, lp.bounds[i].1, lp.obj[i]))
        .collect();
    for (k, (coeffs, sense, rhs)) in lp.cons.iter().enumerate() {
        m.add_con(
            format!("c{k}"),
            vars.iter().zip(coeffs.iter()).map(|(&v, &c)| (v, c)),
            *sense,
            *rhs,
        );
    }
    m
}

#[test]
fn revised_and_dense_agree() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_A9EE);
    for case in 0..512 {
        let lp = arb_lp(&mut rng);
        let m = build(&lp);
        let r = m.solve();
        let d = DenseSimplex::new().solve(&m);
        match (&r, &d) {
            (Ok(rs), Ok(ds)) => {
                let scale = 1.0 + rs.objective.abs().max(ds.objective.abs());
                assert!(
                    (rs.objective - ds.objective).abs() < 1e-5 * scale,
                    "case {case}: objectives differ: revised={} dense={} lp={lp:?}",
                    rs.objective,
                    ds.objective
                );
                assert!(
                    check_feasible(&m, &rs.values, 1e-6).is_empty(),
                    "case {case}: revised solution infeasible: {lp:?}"
                );
                assert!(
                    check_feasible(&m, &ds.values, 1e-6).is_empty(),
                    "case {case}: dense solution infeasible: {lp:?}"
                );
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (Err(SolveError::Unbounded), Err(SolveError::Unbounded)) => {}
            // A genuinely borderline model may be classed infeasible by one
            // solver and solved with a near-violating point by the other;
            // only accept that disagreement when a tiny tolerance bridge
            // exists. Anything else is a real bug.
            (Ok(rs), Err(SolveError::Infeasible)) => {
                let v = check_feasible(&m, &rs.values, 1e-9);
                assert!(
                    !v.is_empty() || m.num_cons() == 0,
                    "case {case}: revised says optimal (clean), dense says infeasible: {lp:?}"
                );
            }
            (Err(SolveError::Infeasible), Ok(ds)) => {
                let v = check_feasible(&m, &ds.values, 1e-9);
                assert!(
                    !v.is_empty() || m.num_cons() == 0,
                    "case {case}: dense says optimal (clean), revised says infeasible: {lp:?}"
                );
            }
            (a, b) => {
                panic!("case {case}: solver disagreement: revised={a:?} dense={b:?} lp={lp:?}");
            }
        }
    }
}

#[test]
fn optimal_beats_random_feasible_points() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBEA7_F00D);
    for case in 0..512 {
        let lp = arb_lp(&mut rng);
        let probe: Vec<f64> = (0..6).map(|_| rng.gen_range(0.0..1.0)).collect();
        let m = build(&lp);
        if let Ok(sol) = m.solve() {
            // Sample a point inside the variable box; if it happens to be
            // feasible, the reported optimum must not be worse.
            let mut point = vec![0.0; lp.n];
            for i in 0..lp.n {
                let (lo, hi) = lp.bounds[i];
                let lo_f = if lo.is_finite() { lo } else { -10.0 };
                let hi_f = if hi.is_finite() { hi } else { 10.0 };
                point[i] = lo_f + (hi_f - lo_f) * probe[i % probe.len()];
            }
            if check_feasible(&m, &point, 1e-9).is_empty() {
                let obj = m.objective_value(&point);
                assert!(
                    sol.objective <= obj + 1e-6 * (1.0 + obj.abs()),
                    "case {case}: random feasible point beats 'optimal': {} < {}",
                    obj,
                    sol.objective
                );
            }
        }
    }
}

/// Warm starts must not change what the solver reports: re-solving any
/// solvable random LP from its own exported basis reproduces the cold
/// objective to 1e-6 and converges without pivoting.
#[test]
fn warm_start_agrees_with_cold_solve() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x3A5E_11FE);
    let solver = RevisedSimplex::new(SimplexOptions::default());
    let mut warmed = 0usize;
    for case in 0..512 {
        let lp = arb_lp(&mut rng);
        let m = build(&lp);
        let Ok(cold) = solver.solve(&m) else {
            continue;
        };
        let basis: &Basis = cold.basis.as_ref().expect("solution exports basis");
        let warm = solver
            .solve_warm(&m, Some(basis))
            .expect("warm re-solve of a solved LP succeeds");
        let scale = 1.0 + cold.objective.abs();
        assert!(
            (warm.objective - cold.objective).abs() < 1e-6 * scale,
            "case {case}: warm {} vs cold {} ({lp:?})",
            warm.objective,
            cold.objective
        );
        assert!(
            warm.iterations <= 1,
            "case {case}: warm re-solve took {} iterations ({lp:?})",
            warm.iterations
        );
        assert!(
            check_feasible(&m, &warm.values, 1e-6).is_empty(),
            "case {case}: warm solution infeasible"
        );
        warmed += 1;
    }
    assert!(warmed > 100, "too few solvable cases warmed: {warmed}");
}

#[test]
fn milp_relaxation_bound_holds() {
    use greencloud_lp::{BranchAndBound, MilpOptions};
    // On a deterministic family of knapsacks, the MILP optimum is never
    // better than the LP relaxation and matches brute force.
    for seed in 0..20u64 {
        let weights: Vec<f64> = (0..6).map(|i| 1.0 + ((seed * 7 + i) % 9) as f64).collect();
        let values: Vec<f64> = (0..6).map(|i| 1.0 + ((seed * 5 + i) % 7) as f64).collect();
        let cap = weights.iter().sum::<f64>() * 0.5;
        let mut m = Model::new();
        let vars: Vec<_> = (0..6)
            .map(|i| m.add_bin_var(format!("x{i}"), -values[i]))
            .collect();
        m.add_con(
            "cap",
            vars.iter().zip(weights.iter()).map(|(&v, &w)| (v, w)),
            Sense::Le,
            cap,
        );
        let relax = m.solve().unwrap();
        let milp = BranchAndBound::new(MilpOptions::default())
            .solve(&m)
            .unwrap();
        assert!(milp.objective >= relax.objective - 1e-9);
        // Brute force.
        let mut best = 0.0f64;
        for mask in 0u32..64 {
            let w: f64 = (0..6)
                .filter(|i| mask >> i & 1 == 1)
                .map(|i| weights[i])
                .sum();
            if w <= cap + 1e-9 {
                let v: f64 = (0..6)
                    .filter(|i| mask >> i & 1 == 1)
                    .map(|i| values[i])
                    .sum();
                best = best.max(v);
            }
        }
        assert!(
            (milp.objective + best).abs() < 1e-6,
            "seed {seed}: milp {} vs brute {}",
            -milp.objective,
            best
        );
    }
}
