//! Pricing-mode agreement: devex, Dantzig, and candidate-section partial
//! pricing are three routes through the same revised simplex, and the dense
//! tableau is an independent implementation — on randomly generated
//! *bounded* LPs (finite boxes, so every instance has an optimum) all four
//! must report the same objective, and every reported point must verify
//! feasible.

use greencloud_lp::dense::DenseSimplex;
use greencloud_lp::revised::{PricingMode, RevisedSimplex, SimplexOptions};
use greencloud_lp::validate::check_feasible;
use greencloud_lp::{Model, Sense};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

struct BoundedLp {
    n: usize,
    bounds: Vec<(f64, f64)>,
    obj: Vec<f64>,
    cons: Vec<(Vec<f64>, Sense, f64)>,
}

/// A random LP whose variables all live in finite boxes: never unbounded,
/// and infeasibility can only come from the constraints.
fn arb_bounded_lp<R: Rng>(rng: &mut R) -> BoundedLp {
    let n = rng.gen_range(1..8usize);
    let bounds: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            let lo = rng.gen_range(-6.0..6.0);
            (lo, lo + rng.gen_range(0.0..12.0))
        })
        .collect();
    let obj: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
    let n_cons = rng.gen_range(0..9usize);
    let cons: Vec<(Vec<f64>, Sense, f64)> = (0..n_cons)
        .map(|_| {
            let coeffs: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let sense = match rng.gen_range(0..3u32) {
                0 => Sense::Le,
                1 => Sense::Ge,
                _ => Sense::Eq,
            };
            (coeffs, sense, rng.gen_range(-10.0..10.0))
        })
        .collect();
    BoundedLp {
        n,
        bounds,
        obj,
        cons,
    }
}

fn build(lp: &BoundedLp) -> Model {
    let mut m = Model::new();
    let vars: Vec<_> = (0..lp.n)
        .map(|i| m.add_var(format!("x{i}"), lp.bounds[i].0, lp.bounds[i].1, lp.obj[i]))
        .collect();
    for (k, (coeffs, sense, rhs)) in lp.cons.iter().enumerate() {
        m.add_con(
            format!("c{k}"),
            vars.iter().zip(coeffs.iter()).map(|(&v, &c)| (v, c)),
            *sense,
            *rhs,
        );
    }
    m
}

#[test]
fn all_pricing_modes_and_dense_agree_on_bounded_lps() {
    let modes = [
        PricingMode::Devex,
        PricingMode::Dantzig,
        PricingMode::Partial,
    ];
    let mut rng = ChaCha8Rng::seed_from_u64(0x9D1C_E5EE);
    let mut solved = 0usize;
    for case in 0..512 {
        let lp = arb_bounded_lp(&mut rng);
        let m = build(&lp);
        let dense = DenseSimplex::new().solve(&m);
        let revised: Vec<_> = modes
            .iter()
            .map(|&pricing| {
                RevisedSimplex::new(SimplexOptions {
                    pricing,
                    ..SimplexOptions::default()
                })
                .solve(&m)
            })
            .collect();
        // All four runs must agree on solvability; bounded boxes rule out
        // Unbounded, so Ok/Infeasible is the whole space (modulo borderline
        // tolerance cases, which the plain-mode agreement suite covers —
        // here the *modes* must agree with each other exactly).
        let ok_count = revised.iter().filter(|r| r.is_ok()).count();
        assert!(
            ok_count == 0 || ok_count == modes.len(),
            "case {case}: pricing modes disagree on solvability: {revised:?}"
        );
        let Ok(first) = &revised[0] else {
            continue;
        };
        solved += 1;
        let scale = 1.0 + first.objective.abs();
        for (mode, r) in modes.iter().zip(&revised) {
            let sol = r.as_ref().expect("all Ok per the gate above");
            assert!(
                (sol.objective - first.objective).abs() < 1e-6 * scale,
                "case {case}: {mode:?} objective {} vs devex {}",
                sol.objective,
                first.objective
            );
            assert!(
                check_feasible(&m, &sol.values, 1e-6).is_empty(),
                "case {case}: {mode:?} solution infeasible"
            );
        }
        if let Ok(d) = &dense {
            assert!(
                (d.objective - first.objective).abs() < 1e-5 * scale,
                "case {case}: dense {} vs revised {}",
                d.objective,
                first.objective
            );
        }
    }
    assert!(solved > 100, "too few solvable cases: {solved}");
}

#[test]
fn pricing_modes_agree_on_degenerate_chains() {
    // Battery-style level-linking chains are the degenerate stress case
    // that historically separated the pricing modes; all three must reach
    // the known optimum.
    let n = 60;
    let mut m = Model::new();
    let mut vars = Vec::new();
    for i in 0..n {
        vars.push(m.add_var(
            format!("x{i}"),
            0.0,
            4.0,
            if i % 2 == 0 { 1.0 } else { -1.0 },
        ));
    }
    for i in 1..n {
        m.add_con(
            format!("link{i}"),
            [(vars[i - 1], 0.75), (vars[i], -1.0)],
            Sense::Le,
            0.5,
        );
    }
    m.add_con("anchor", [(vars[0], 1.0)], Sense::Ge, 1.0);
    let reference = m.solve().expect("solvable");
    for pricing in [
        PricingMode::Devex,
        PricingMode::Dantzig,
        PricingMode::Partial,
    ] {
        let sol = RevisedSimplex::new(SimplexOptions {
            pricing,
            ..SimplexOptions::default()
        })
        .solve(&m)
        .expect("solvable in every mode");
        assert!(
            (sol.objective - reference.objective).abs() < 1e-6,
            "{pricing:?}: {} vs {}",
            sol.objective,
            reference.objective
        );
        let violations = check_feasible(&m, &sol.values, 1e-6);
        assert!(
            violations.is_empty(),
            "{pricing:?}: violations {violations:?}"
        );
    }
}

#[test]
fn solve_stats_travel_with_the_solution() {
    let mut m = Model::new();
    let x = m.add_var("x", 0.0, 10.0, -1.0);
    let y = m.add_var("y", 0.0, 10.0, -2.0);
    m.add_con("cap", [(x, 1.0), (y, 1.0)], Sense::Le, 12.0);
    let sol = m.solve().expect("solvable");
    assert_eq!(sol.stats.iterations, sol.iterations);
    assert!(sol.stats.ftrans > 0);
    assert!(sol.stats.btrans > 0);
    // A warm re-solve from the optimal basis should pivot less than the
    // cold solve did and keep its counters consistent.
    let warm = m
        .solve_with_basis(SimplexOptions::default(), sol.basis.as_ref())
        .expect("warm");
    assert!(warm.warm_started);
    assert!(warm.stats.iterations <= sol.stats.iterations);
}
