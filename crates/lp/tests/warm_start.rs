//! Warm-start behaviour: basis round-tripping, repair of stale or singular
//! snapshots, and cross-model basis transfer. The invariant throughout:
//! supplying *any* basis never changes the reported optimum, only the work
//! needed to reach it.

use greencloud_lp::revised::{Basis, BasisStatus, RevisedSimplex, SimplexOptions};
use greencloud_lp::{Model, Sense};

fn solver() -> RevisedSimplex {
    RevisedSimplex::new(SimplexOptions::default())
}

/// A small production-style LP with a unique optimum.
fn sample_model() -> Model {
    let mut m = Model::new();
    let x = m.add_var("x", 0.0, 10.0, 1.0);
    let y = m.add_var("y", 0.0, 10.0, 2.0);
    let z = m.add_var("z", 0.0, 10.0, 0.5);
    m.add_con("need", [(x, 1.0), (y, 1.0), (z, 1.0)], Sense::Ge, 12.0);
    m.add_con("mix", [(x, 1.0), (y, -1.0)], Sense::Le, 4.0);
    m.add_con("zcap", [(z, 1.0)], Sense::Le, 5.0);
    m
}

#[test]
fn round_trip_converges_in_at_most_one_iteration() {
    let m = sample_model();
    let cold = solver().solve(&m).expect("cold solve");
    let basis = cold.basis.as_ref().expect("basis exported");
    let warm = solver().solve_warm(&m, Some(basis)).expect("warm solve");
    assert!(
        warm.warm_started,
        "identical re-solve must accept the basis"
    );
    assert!(warm.iterations <= 1, "took {} iterations", warm.iterations);
    assert!((warm.objective - cold.objective).abs() < 1e-9);
    for (a, b) in warm.values.iter().zip(cold.values.iter()) {
        assert!((a - b).abs() < 1e-9);
    }
}

#[test]
fn singular_basis_is_repaired_to_cold_optimum() {
    // x and y have linearly dependent columns; forcing both basic with all
    // slacks nonbasic builds a singular basis. The installer repairs it by
    // swapping the dependent column for an uncovered row's slack, and the
    // repaired warm solve still reaches the cold optimum.
    let mut m = Model::new();
    let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
    let y = m.add_var("y", 0.0, f64::INFINITY, 3.0);
    m.add_con("r1", [(x, 1.0), (y, 1.0)], Sense::Ge, 2.0);
    m.add_con("r2", [(x, 2.0), (y, 2.0)], Sense::Ge, 4.0);
    let cold = solver().solve(&m).expect("cold solve");

    let singular = Basis::from_statuses(vec![
        BasisStatus::Basic,   // x
        BasisStatus::Basic,   // y  (dependent with x)
        BasisStatus::AtLower, // slack r1
        BasisStatus::AtLower, // slack r2
    ]);
    let warm = solver()
        .solve_warm(&m, Some(&singular))
        .expect("repairs or falls back");
    assert!((warm.objective - cold.objective).abs() < 1e-9);

    // A snapshot that is beyond repair (more basics than rows) still falls
    // back to the crash basis.
    let overfull = Basis::from_statuses(vec![BasisStatus::Basic; 4]);
    let cold2 = solver()
        .solve_warm(&m, Some(&overfull))
        .expect("falls back");
    assert!(!cold2.warm_started, "malformed snapshot must be rejected");
    assert!((cold2.objective - cold.objective).abs() < 1e-9);
}

#[test]
fn wrong_shape_basis_falls_back() {
    let m = sample_model();
    let alien = Basis::from_statuses(vec![BasisStatus::Basic; 2]);
    let cold = solver().solve(&m).expect("cold");
    let warm = solver().solve_warm(&m, Some(&alien)).expect("fallback");
    assert!(!warm.warm_started);
    assert!((warm.objective - cold.objective).abs() < 1e-9);
}

#[test]
fn stale_bound_statuses_are_repaired() {
    // Solve a model where y sits at its upper bound, then relax that bound
    // to infinity: the exported `AtUpper` status no longer refers to a
    // finite bound and must be remapped, not trusted.
    let mut m = Model::new();
    let x = m.add_var("x", 0.0, 10.0, 1.0);
    let y = m.add_var("y", 0.0, 3.0, -1.0);
    m.add_con("link", [(x, 1.0), (y, 1.0)], Sense::Ge, 2.0);
    let first = solver().solve(&m).expect("solve");
    assert!((first.values[y.index()] - 3.0).abs() < 1e-9, "y at ub");
    let basis = first.basis.clone().expect("basis");

    let mut relaxed = m.clone();
    relaxed.set_bounds(y, 0.0, f64::INFINITY);
    relaxed.set_obj(y, 1.0); // keep it bounded
    let cold = solver().solve(&relaxed).expect("cold");
    let warm = solver()
        .solve_warm(&relaxed, Some(&basis))
        .expect("warm or fallback");
    assert!((warm.objective - cold.objective).abs() < 1e-9);
}

#[test]
fn basis_transfers_to_perturbed_neighbour() {
    // Same shape, slightly different RHS/objective: the old optimal basis
    // stays primal feasible here, so the warm path engages and agrees with
    // the cold solve.
    let m = sample_model();
    let cold_a = solver().solve(&m).expect("solve A");
    let basis = cold_a.basis.as_ref().expect("basis");

    let mut n = Model::new();
    let x = n.add_var("x", 0.0, 10.0, 1.1);
    let y = n.add_var("y", 0.0, 10.0, 1.9);
    let z = n.add_var("z", 0.0, 10.0, 0.6);
    n.add_con("need", [(x, 1.0), (y, 1.0), (z, 1.0)], Sense::Ge, 11.5);
    n.add_con("mix", [(x, 1.0), (y, -1.0)], Sense::Le, 4.0);
    n.add_con("zcap", [(z, 1.0)], Sense::Le, 5.0);

    let cold_b = solver().solve(&n).expect("cold B");
    let warm_b = solver().solve_warm(&n, Some(basis)).expect("warm B");
    assert!(
        (warm_b.objective - cold_b.objective).abs() < 1e-9,
        "warm {} vs cold {}",
        warm_b.objective,
        cold_b.objective
    );
    if warm_b.warm_started {
        assert!(
            warm_b.iterations <= cold_b.iterations,
            "warm start must not take more pivots (warm {}, cold {})",
            warm_b.iterations,
            cold_b.iterations
        );
    }
}

#[test]
fn primal_infeasible_warm_basis_is_restored_by_dual_pivots() {
    // Rolling-horizon pattern: same model shape, drastically moved RHS.
    // The exported basis is far from primal feasible for the new data; the
    // dual-simplex restoration must still deliver the cold optimum (and,
    // being warm, in no more iterations than the cold two-phase solve).
    let mut m = Model::new();
    let x = m.add_var("x", 0.0, 100.0, 2.0);
    let y = m.add_var("y", 0.0, 100.0, 3.0);
    let z = m.add_var("z", 0.0, 10.0, 1.0);
    let need = m.add_con("need", [(x, 1.0), (y, 1.0), (z, 1.0)], Sense::Ge, 8.0);
    let cap = m.add_con("cap", [(x, 1.0), (y, -1.0)], Sense::Le, 3.0);
    let first = solver().solve(&m).expect("first");
    let basis = first.basis.clone().expect("basis");

    for rhs in [40.0, 95.0, 1.0, 60.0] {
        m.set_rhs(need, rhs);
        m.set_rhs(cap, rhs / 4.0);
        let cold = solver().solve(&m).expect("cold");
        let warm = solver().solve_warm(&m, Some(&basis)).expect("warm");
        assert!(
            (warm.objective - cold.objective).abs() < 1e-7,
            "rhs {rhs}: warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        if warm.warm_started {
            assert!(
                warm.iterations <= cold.iterations,
                "rhs {rhs}: warm {} > cold {} iterations",
                warm.iterations,
                cold.iterations
            );
        }
    }
}

#[test]
fn infeasible_and_unbounded_unaffected_by_warm_basis() {
    use greencloud_lp::SolveError;
    let mut inf = Model::new();
    let x = inf.add_var("x", 0.0, 1.0, 1.0);
    inf.add_con("hi", [(x, 1.0)], Sense::Ge, 2.0);
    let junk = Basis::from_statuses(vec![BasisStatus::Basic, BasisStatus::AtLower]);
    assert_eq!(
        solver().solve_warm(&inf, Some(&junk)).unwrap_err(),
        SolveError::Infeasible
    );

    let mut unb = Model::new();
    let y = unb.add_var("y", 0.0, f64::INFINITY, -1.0);
    unb.add_con("lo", [(y, 1.0)], Sense::Ge, 0.0);
    let junk = Basis::from_statuses(vec![BasisStatus::AtLower, BasisStatus::Basic]);
    assert_eq!(
        solver().solve_warm(&unb, Some(&junk)).unwrap_err(),
        SolveError::Unbounded
    );
}
