//! Benchmarks the GreenNebula migration-schedule computation (§V-C).
//!
//! The paper reports 240–780 ms per 48-hour schedule on 2 GHz hardware for
//! 50–200 MW of IT power; this bench regenerates the comparable numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greencloud_bench::REPRO_SEED;
use greencloud_climate::catalog::WorldCatalog;
use greencloud_energy::profile::EnergyProfile;
use greencloud_energy::pue::PueModel;
use greencloud_nebula::emulation::EmulationConfig;
use greencloud_nebula::scheduler::{Scheduler, SchedulerConfig, SiteState};
use std::hint::black_box;

fn states(load_mw: f64) -> Vec<SiteState> {
    let w = WorldCatalog::anchors_only(REPRO_SEED);
    let cfg = EmulationConfig::default();
    cfg.sites
        .iter()
        .enumerate()
        .map(|(i, site)| {
            let loc = w.find(&site.location_name).expect("anchor");
            let tmy = w.tmy(loc.id);
            let p = EnergyProfile::from_tmy_hourly(
                &tmy,
                &Default::default(),
                &Default::default(),
                &PueModel::new(),
            );
            SiteState {
                green_forecast_mw: (0..48)
                    .map(|h| p.alpha[4080 + h] * site.solar_mw + p.beta[4080 + h] * site.wind_mw)
                    .collect(),
                pue_forecast: (0..48).map(|h| p.pue[4080 + h]).collect(),
                current_load_mw: if i == 0 { load_mw } else { 0.0 },
                capacity_mw: load_mw,
            }
        })
        .collect()
}

fn scheduler_benches(c: &mut Criterion) {
    let sched = Scheduler::new(SchedulerConfig::default());
    let mut group = c.benchmark_group("schedule_48h_3dc");
    for &load in &[50.0f64, 200.0] {
        let s = states(load);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{load}MW")),
            &s,
            |b, s| b.iter(|| black_box(sched.plan(s).expect("plan"))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500));
    targets = scheduler_benches
}
criterion_main!(benches);
