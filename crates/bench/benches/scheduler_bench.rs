//! Benchmarks the GreenNebula migration-schedule computation (§V-C).
//!
//! The paper reports 240–780 ms per 48-hour schedule on 2 GHz hardware for
//! 50–200 MW of IT power; this bench regenerates the comparable numbers,
//! plus the operational quantity the rolling simulator lives on: the
//! warm-started hourly re-solve against the cold rebuild-and-solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greencloud_bench::{rolling_states, table3_profiles, SiteProfile, REPRO_SEED};
use greencloud_climate::catalog::WorldCatalog;
use greencloud_nebula::scheduler::{RollingScheduler, Scheduler, SchedulerConfig};
use std::hint::black_box;

fn scheduler_benches(c: &mut Criterion) {
    let w = WorldCatalog::anchors_only(REPRO_SEED);
    let profs = table3_profiles(&w).expect("anchor sites");
    let window = SchedulerConfig::default().window_hours;
    let sched = Scheduler::new(SchedulerConfig::default());
    let mut group = c.benchmark_group("schedule_48h_3dc");
    for &load in &[50.0f64, 200.0] {
        // Capacity scales with the offered load for the paper's 50/200 MW
        // timing points.
        let mut scaled: Vec<SiteProfile> = profs.clone();
        for sp in &mut scaled {
            sp.3 = load;
        }
        let s = rolling_states(&scaled, 4080, window, &[load, 0.0, 0.0]);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{load}MW")),
            &s,
            |b, s| b.iter(|| black_box(sched.plan(s).expect("plan"))),
        );
    }
    group.finish();

    // The rolling-horizon comparison: 24 consecutive hourly re-solves,
    // loads following the previous round's targets. `warm` keeps one
    // persistent model and warm-starts from the shifted basis; `cold`
    // rebuilds and two-phase-solves every hour. The warm/cold time ratio
    // is the speedup `repro annual` reports.
    let mut group = c.benchmark_group("hourly_resolve_24rounds_3dc");
    group.bench_function("cold", |b| {
        b.iter(|| {
            let cold = Scheduler::new(SchedulerConfig::default());
            let mut loads = vec![50.0, 0.0, 0.0];
            for t in 4080..4104 {
                let plan = cold
                    .plan(&rolling_states(&profs, t, window, &loads))
                    .expect("cold plan");
                loads = plan.target_mw;
            }
            black_box(loads)
        })
    });
    group.bench_function("warm", |b| {
        b.iter(|| {
            let mut rolling = RollingScheduler::new(SchedulerConfig::default());
            let mut loads = vec![50.0, 0.0, 0.0];
            for t in 4080..4104 {
                let plan = rolling
                    .plan(&rolling_states(&profs, t, window, &loads))
                    .expect("warm plan");
                loads = plan.target_mw;
            }
            black_box(loads)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500));
    targets = scheduler_benches
}
criterion_main!(benches);
