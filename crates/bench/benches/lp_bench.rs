//! Benchmarks the LP substrate: single-site and network siting LPs.

use criterion::{criterion_group, criterion_main, Criterion};
use greencloud_bench::anchor_candidates;
use greencloud_core::formulation::build_network_lp;
use greencloud_core::framework::{PlacementInput, SizeClass, StorageMode, TechMix};
use greencloud_cost::params::CostParams;
use greencloud_lp::{PricingMode, SimplexOptions};
use std::hint::black_box;

fn lp_benches(c: &mut Criterion) {
    let cands = anchor_candidates();
    let params = CostParams::default();

    let single = PlacementInput {
        total_capacity_mw: 25.0,
        min_green_fraction: 0.5,
        min_availability: 0.0,
        tech: TechMix::WindOnly,
        storage: StorageMode::NetMetering,
        ..PlacementInput::default()
    };
    c.bench_function("single_site_lp_96_slots", |b| {
        b.iter(|| {
            let lp = build_network_lp(&params, &single, &[(&cands[3], SizeClass::Large)]);
            black_box(lp.solve().expect("solvable"))
        })
    });

    let network = PlacementInput {
        total_capacity_mw: 50.0,
        min_green_fraction: 0.5,
        tech: TechMix::Both,
        storage: StorageMode::NetMetering,
        ..PlacementInput::default()
    };
    c.bench_function("three_site_network_lp_96_slots", |b| {
        b.iter(|| {
            let lp = build_network_lp(
                &params,
                &network,
                &[
                    (&cands[3], SizeClass::Large),
                    (&cands[4], SizeClass::Large),
                    (&cands[7], SizeClass::Large),
                ],
            );
            black_box(lp.solve().expect("solvable"))
        })
    });

    // Warm vs cold: re-solving the same LPs with and without the exported
    // basis. The warm path should be dominated by model build + one
    // factorization (≤1 simplex iteration).
    let single_lp = build_network_lp(&params, &single, &[(&cands[3], SizeClass::Large)]);
    let (_, single_basis) = single_lp
        .solve_warm(SimplexOptions::default(), None)
        .expect("solvable");
    c.bench_function("warm_vs_cold/single_site_cold", |b| {
        b.iter(|| black_box(single_lp.solve().expect("solvable")))
    });
    c.bench_function("warm_vs_cold/single_site_warm", |b| {
        b.iter(|| {
            black_box(
                single_lp
                    .solve_warm(SimplexOptions::default(), single_basis.as_ref())
                    .expect("solvable"),
            )
        })
    });

    let network_lp = build_network_lp(
        &params,
        &network,
        &[
            (&cands[3], SizeClass::Large),
            (&cands[4], SizeClass::Large),
            (&cands[7], SizeClass::Large),
        ],
    );
    let (_, network_basis) = network_lp
        .solve_warm(SimplexOptions::default(), None)
        .expect("solvable");
    c.bench_function("warm_vs_cold/three_site_cold", |b| {
        b.iter(|| black_box(network_lp.solve().expect("solvable")))
    });
    c.bench_function("warm_vs_cold/three_site_warm", |b| {
        b.iter(|| {
            black_box(
                network_lp
                    .solve_warm(SimplexOptions::default(), network_basis.as_ref())
                    .expect("solvable"),
            )
        })
    });

    // The entering-column rules head to head on the single-site LP: devex
    // (default), classic Dantzig, and candidate-section partial pricing —
    // all on the shared incremental-reduced-cost machinery.
    for (label, pricing) in [
        ("pricing/devex", PricingMode::Devex),
        ("pricing/dantzig", PricingMode::Dantzig),
        ("pricing/partial", PricingMode::Partial),
    ] {
        c.bench_function(label, |b| {
            b.iter(|| {
                black_box(
                    single_lp
                        .solve_warm(
                            SimplexOptions {
                                pricing,
                                ..SimplexOptions::default()
                            },
                            None,
                        )
                        .expect("solvable"),
                )
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500));
    targets = lp_benches
}
criterion_main!(benches);
