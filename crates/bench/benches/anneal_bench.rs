//! Benchmarks the heuristic siting search (paper §III-D: execution time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greencloud_bench::{world, REPRO_SEED};
use greencloud_climate::profiles::ProfileConfig;
use greencloud_core::anneal::{anneal, AnnealOptions};
use greencloud_core::candidate::CandidateSite;
use greencloud_core::filter::filter_candidates;
use greencloud_core::framework::{PlacementInput, StorageMode, TechMix};
use greencloud_cost::params::CostParams;
use std::hint::black_box;

fn anneal_benches(c: &mut Criterion) {
    let params = CostParams::default();
    let input = PlacementInput {
        total_capacity_mw: 50.0,
        min_green_fraction: 0.5,
        tech: TechMix::Both,
        storage: StorageMode::NetMetering,
        ..PlacementInput::default()
    };
    let opts = AnnealOptions {
        iterations: 8,
        chains: 1,
        patience: 8,
        seed: REPRO_SEED,
        ..AnnealOptions::default()
    };

    let mut group = c.benchmark_group("heuristic_siting");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(20));
    for &n_candidates in &[8usize, 16] {
        let w = world(n_candidates.max(30));
        let all = CandidateSite::build_all(&w, &ProfileConfig::coarse());
        let kept = filter_candidates(&params, &input, &all, n_candidates);
        let filtered: Vec<CandidateSite> = kept.iter().map(|&i| all[i].clone()).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(n_candidates),
            &filtered,
            |b, cands| {
                b.iter(|| black_box(anneal(&params, &input, cands, &opts).expect("feasible")))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = anneal_benches
}
criterion_main!(benches);
