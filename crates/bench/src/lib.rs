//! Shared helpers for the reproduction harness and the Criterion benches.

#![warn(missing_docs)]

use greencloud_climate::catalog::WorldCatalog;
use greencloud_climate::profiles::ProfileConfig;
use greencloud_core::anneal::AnnealOptions;
use greencloud_core::candidate::CandidateSite;
use greencloud_core::framework::{PlacementInput, StorageMode, TechMix};
use greencloud_core::tool::{PlacementTool, ToolOptions};
use greencloud_cost::params::CostParams;

/// The workspace-wide deterministic seed for reproduction runs.
pub const REPRO_SEED: u64 = 20140701;

/// Builds the standard reproduction world.
pub fn world(locations: usize) -> WorldCatalog {
    WorldCatalog::synthetic(locations.max(8), REPRO_SEED)
}

/// Standard tool options for reproduction runs (coarse but deterministic).
pub fn tool_options(fast: bool) -> ToolOptions {
    ToolOptions {
        profile: if fast {
            ProfileConfig::coarse()
        } else {
            ProfileConfig::default()
        },
        filter_keep: if fast { 7 } else { 14 },
        anneal: AnnealOptions {
            iterations: if fast { 18 } else { 60 },
            chains: if fast { 2 } else { 4 },
            patience: if fast { 14 } else { 45 },
            seed: REPRO_SEED,
            ..AnnealOptions::default()
        },
        build_threads: 8,
    }
}

/// Builds a ready placement tool over `locations` synthetic sites.
pub fn tool(locations: usize, fast: bool) -> PlacementTool {
    PlacementTool::new(&world(locations), CostParams::default(), tool_options(fast))
}

/// The sweep inputs used by Figs. 8–12: green fractions × technology.
pub fn sweep_inputs(storage: StorageMode) -> Vec<(f64, TechMix, PlacementInput)> {
    let mut out = Vec::new();
    for &g in &[0.0, 0.25, 0.50, 0.75, 1.0] {
        for &tech in &[TechMix::WindOnly, TechMix::SolarOnly, TechMix::Both] {
            let input = PlacementInput {
                storage,
                ..PlacementInput::default()
            }
            .with_green(g, tech);
            out.push((g, tech, input));
        }
    }
    out
}

/// Builds the candidates of the anchors-only world on the coarse clock
/// (used by benches).
pub fn anchor_candidates() -> Vec<CandidateSite> {
    let w = WorldCatalog::anchors_only(REPRO_SEED);
    CandidateSite::build_all(&w, &ProfileConfig::coarse())
}

/// One Table III site's hourly energy profile plus its plant/IT sizes:
/// `(profile, solar_mw, wind_mw, capacity_mw)`.
pub type SiteProfile = (greencloud_energy::profile::EnergyProfile, f64, f64, f64);

/// Hourly energy profiles of the Table III network in `catalog`, for the
/// rolling-scheduler benches and `repro annual`'s warm-vs-cold timing.
pub fn table3_profiles(catalog: &WorldCatalog) -> Option<Vec<SiteProfile>> {
    let cfg = greencloud_nebula::emulation::EmulationConfig::default();
    cfg.sites
        .iter()
        .map(|site| {
            let loc = catalog.find(&site.location_name)?;
            let tmy = catalog.tmy(loc.id);
            let p = greencloud_energy::profile::EnergyProfile::from_tmy_hourly(
                &tmy,
                &Default::default(),
                &Default::default(),
                &greencloud_energy::pue::PueModel::new(),
            );
            Some((p, site.solar_mw, site.wind_mw, site.capacity_mw))
        })
        .collect()
}

/// The scheduler inputs for one rolling round: a `window`-hour forecast
/// slice starting at absolute hour `t`, with the given current loads.
pub fn rolling_states(
    profiles: &[SiteProfile],
    t: usize,
    window: usize,
    loads: &[f64],
) -> Vec<greencloud_nebula::scheduler::SiteState> {
    profiles
        .iter()
        .enumerate()
        .map(
            |(i, (p, solar, wind, capacity))| greencloud_nebula::scheduler::SiteState {
                green_forecast_mw: (0..window)
                    .map(|k| {
                        let idx = (t + k) % p.len();
                        p.alpha[idx] * solar + p.beta[idx] * wind
                    })
                    .collect(),
                pue_forecast: (0..window).map(|k| p.pue[(t + k) % p.len()]).collect(),
                current_load_mw: loads[i],
                capacity_mw: *capacity,
            },
        )
        .collect()
}

/// Pretty technology label.
pub fn tech_label(t: TechMix) -> &'static str {
    match t {
        TechMix::BrownOnly => "brown",
        TechMix::WindOnly => "wind",
        TechMix::SolarOnly => "solar",
        TechMix::Both => "wind+solar",
    }
}
