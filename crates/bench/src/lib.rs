//! Shared helpers for the reproduction harness and the Criterion benches.

#![warn(missing_docs)]

pub mod bench_json;

use bench_json::BenchRecord;
use greencloud_climate::catalog::WorldCatalog;
use greencloud_climate::profiles::ProfileConfig;
use greencloud_core::anneal::AnnealOptions;
use greencloud_core::candidate::CandidateSite;
use greencloud_core::framework::{PlacementInput, StorageMode, TechMix};
use greencloud_core::tool::{PlacementTool, ToolOptions};
use greencloud_cost::params::CostParams;

/// The workspace-wide deterministic seed for reproduction runs.
pub const REPRO_SEED: u64 = 20140701;

/// Builds the standard reproduction world.
pub fn world(locations: usize) -> WorldCatalog {
    WorldCatalog::synthetic(locations.max(8), REPRO_SEED)
}

/// Standard tool options for reproduction runs (coarse but deterministic).
pub fn tool_options(fast: bool) -> ToolOptions {
    ToolOptions {
        profile: if fast {
            ProfileConfig::coarse()
        } else {
            ProfileConfig::default()
        },
        filter_keep: if fast { 7 } else { 14 },
        anneal: AnnealOptions {
            iterations: if fast { 18 } else { 60 },
            chains: if fast { 2 } else { 4 },
            patience: if fast { 14 } else { 45 },
            seed: REPRO_SEED,
            ..AnnealOptions::default()
        },
        build_threads: 8,
    }
}

/// Builds a ready placement tool over `locations` synthetic sites.
pub fn tool(locations: usize, fast: bool) -> PlacementTool {
    PlacementTool::new(&world(locations), CostParams::default(), tool_options(fast))
}

/// The sweep inputs used by Figs. 8–12: green fractions × technology.
pub fn sweep_inputs(storage: StorageMode) -> Vec<(f64, TechMix, PlacementInput)> {
    let mut out = Vec::new();
    for &g in &[0.0, 0.25, 0.50, 0.75, 1.0] {
        for &tech in &[TechMix::WindOnly, TechMix::SolarOnly, TechMix::Both] {
            let input = PlacementInput {
                storage,
                ..PlacementInput::default()
            }
            .with_green(g, tech);
            out.push((g, tech, input));
        }
    }
    out
}

/// Builds the candidates of the anchors-only world on the coarse clock
/// (used by benches).
pub fn anchor_candidates() -> Vec<CandidateSite> {
    let w = WorldCatalog::anchors_only(REPRO_SEED);
    CandidateSite::build_all(&w, &ProfileConfig::coarse())
}

/// One Table III site's hourly energy profile plus its plant/IT sizes:
/// `(profile, solar_mw, wind_mw, capacity_mw)`.
pub type SiteProfile = (greencloud_energy::profile::EnergyProfile, f64, f64, f64);

/// Hourly energy profiles of the Table III network in `catalog`, for the
/// rolling-scheduler benches and `repro annual`'s warm-vs-cold timing.
pub fn table3_profiles(catalog: &WorldCatalog) -> Option<Vec<SiteProfile>> {
    let cfg = greencloud_nebula::emulation::EmulationConfig::default();
    cfg.sites
        .iter()
        .map(|site| {
            let loc = catalog.find(&site.location_name)?;
            let tmy = catalog.tmy(loc.id);
            let p = greencloud_energy::profile::EnergyProfile::from_tmy_hourly(
                &tmy,
                &Default::default(),
                &Default::default(),
                &greencloud_energy::pue::PueModel::new(),
            );
            Some((p, site.solar_mw, site.wind_mw, site.capacity_mw))
        })
        .collect()
}

/// The scheduler inputs for one rolling round: a `window`-hour forecast
/// slice starting at absolute hour `t`, with the given current loads.
pub fn rolling_states(
    profiles: &[SiteProfile],
    t: usize,
    window: usize,
    loads: &[f64],
) -> Vec<greencloud_nebula::scheduler::SiteState> {
    profiles
        .iter()
        .enumerate()
        .map(
            |(i, (p, solar, wind, capacity))| greencloud_nebula::scheduler::SiteState {
                green_forecast_mw: (0..window)
                    .map(|k| {
                        let idx = (t + k) % p.len();
                        p.alpha[idx] * solar + p.beta[idx] * wind
                    })
                    .collect(),
                pue_forecast: (0..window).map(|k| p.pue[(t + k) % p.len()]).collect(),
                current_load_mw: loads[i],
                capacity_mw: *capacity,
            },
        )
        .collect()
}

/// Runs the LP-substrate benchmark suite and returns its machine-readable
/// records: the single-site siting LP solved cold under each pricing mode,
/// and the rolling scheduler re-solve warm vs cold. `fast` shrinks the
/// round counts for the CI smoke; `repro timing` runs the full version and
/// writes the records to `BENCH_lp.json`.
pub fn lp_bench_records(fast: bool) -> Vec<BenchRecord> {
    use greencloud_core::formulation::build_network_lp;
    use greencloud_core::framework::SizeClass;
    use greencloud_lp::{PricingMode, SimplexOptions};
    use greencloud_nebula::scheduler::{RollingScheduler, Scheduler};
    use std::time::Instant;

    let mut records = Vec::new();

    // Single-site siting LP, cold, one record per pricing mode.
    let cands = anchor_candidates();
    let params = greencloud_cost::params::CostParams::default();
    let single = PlacementInput {
        total_capacity_mw: 25.0,
        min_green_fraction: 0.5,
        min_availability: 0.0,
        tech: TechMix::WindOnly,
        storage: StorageMode::NetMetering,
        ..PlacementInput::default()
    };
    let lp = build_network_lp(&params, &single, &[(&cands[3], SizeClass::Large)]);
    for (label, pricing) in [
        ("single_site_cold/devex", PricingMode::Devex),
        ("single_site_cold/dantzig", PricingMode::Dantzig),
        ("single_site_cold/partial", PricingMode::Partial),
    ] {
        let reps = if fast { 1 } else { 3 };
        let mut best_ms = f64::INFINITY;
        let mut iterations = 0;
        for _ in 0..reps {
            let t0 = Instant::now();
            let (d, _) = lp
                .solve_warm(
                    SimplexOptions {
                        pricing,
                        ..SimplexOptions::default()
                    },
                    None,
                )
                .expect("single-site LP solvable");
            best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            iterations = d.iterations;
        }
        records.push(BenchRecord {
            name: label.to_string(),
            wall_ms: best_ms,
            iterations,
            warm_rate: 0.0,
        });
    }

    // Rolling hourly re-solves, warm vs cold (the repro-visible form of the
    // `hourly_resolve_24rounds_3dc` Criterion bench).
    let w = WorldCatalog::anchors_only(REPRO_SEED);
    if let Some(profiles) = table3_profiles(&w) {
        let cfg = greencloud_nebula::emulation::EmulationConfig::default();
        let window = cfg.scheduler.window_hours;
        let rounds = if fast { 12 } else { 96 };
        let start = 4080;

        let mut rolling = RollingScheduler::new(cfg.scheduler.clone());
        let mut loads = vec![cfg.total_load_mw, 0.0, 0.0];
        let t0 = Instant::now();
        for t in start..start + rounds {
            let states = rolling_states(&profiles, t, window, &loads);
            loads = rolling.plan(&states).expect("rolling plan").target_mw;
        }
        let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
        let stats = rolling.stats();
        records.push(BenchRecord {
            name: format!("hourly_resolve_{rounds}rounds/warm"),
            wall_ms: warm_ms,
            iterations: stats.iterations,
            warm_rate: stats.warm_rate(),
        });

        let cold = Scheduler::new(cfg.scheduler.clone());
        let mut loads = vec![cfg.total_load_mw, 0.0, 0.0];
        let t0 = Instant::now();
        for t in start..start + rounds {
            let states = rolling_states(&profiles, t, window, &loads);
            loads = cold.plan(&states).expect("cold plan").target_mw;
        }
        let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
        // The one-shot scheduler exposes no iteration totals; per the
        // BenchRecord contract the field is 0 when not applicable.
        records.push(BenchRecord {
            name: format!("hourly_resolve_{rounds}rounds/cold"),
            wall_ms: cold_ms,
            iterations: 0,
            warm_rate: 0.0,
        });
    }
    records
}

/// Pretty technology label.
pub fn tech_label(t: TechMix) -> &'static str {
    match t {
        TechMix::BrownOnly => "brown",
        TechMix::WindOnly => "wind",
        TechMix::SolarOnly => "solar",
        TechMix::Both => "wind+solar",
    }
}
