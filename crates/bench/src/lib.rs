//! Shared helpers for the reproduction harness and the Criterion benches.
//!
//! The experiment fixtures (seeds, worlds, Table III profiles, rolling
//! states) live in [`greencloud_api::harness`] so the engine's timing
//! experiment and the benches agree on them; this crate re-exports the lot
//! and keeps only the presentation-side helpers the paper-figure
//! experiments in `repro` use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_json;

pub use greencloud_api::harness::{
    anchor_candidates, repro_search, rolling_states, table3_profiles, world, SiteProfile,
    REPRO_SEED,
};

use greencloud_api::spec::SearchSpec;
use greencloud_core::framework::{PlacementInput, StorageMode, TechMix};
use greencloud_core::tool::{default_threads, PlacementTool, ToolOptions};
use greencloud_cost::params::CostParams;

/// Standard tool options for reproduction runs (coarse but deterministic),
/// derived from the shared [`repro_search`] tuning.
pub fn tool_options(fast: bool) -> ToolOptions {
    repro_search(fast).tool_options(default_threads())
}

/// Builds a ready placement tool over `locations` synthetic sites.
///
/// Figure experiments that need per-location solves use this; whole-siting
/// experiments go through [`greencloud_api::Engine`] instead.
pub fn tool(locations: usize, fast: bool) -> PlacementTool {
    PlacementTool::new(&world(locations), CostParams::default(), tool_options(fast))
}

/// The siting specs used by Figs. 8–12: green fractions × technology.
pub fn sweep_inputs(storage: StorageMode) -> Vec<(f64, TechMix, PlacementInput)> {
    let mut out = Vec::new();
    for &g in &[0.0, 0.25, 0.50, 0.75, 1.0] {
        for &tech in &[TechMix::WindOnly, TechMix::SolarOnly, TechMix::Both] {
            let input = PlacementInput {
                storage,
                ..PlacementInput::default()
            }
            .with_green(g, tech);
            out.push((g, tech, input));
        }
    }
    out
}

/// The search spec for a reproduction siting experiment (re-export helper
/// so `repro` can build [`greencloud_api::SitingSpec`]s in one line).
pub fn siting_search(fast: bool) -> SearchSpec {
    repro_search(fast)
}

/// Pretty technology label.
pub fn tech_label(t: TechMix) -> &'static str {
    match t {
        TechMix::BrownOnly => "brown",
        TechMix::WindOnly => "wind",
        TechMix::SolarOnly => "solar",
        TechMix::Both => "wind+solar",
    }
}
