//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [--locations N] [--fast]
//! repro all [--locations N] [--fast]
//! ```
//!
//! Experiments: `tab1 fig3 fig4 fig5 fig6 tab2 fig7 fig8 fig9 fig10 fig11
//! fig12 fig13 tab3 fig15 annual timing quick`. Output is plain text shaped
//! like the paper's tables/series; `EXPERIMENTS.md` records a reference
//! run. `annual` goes beyond the paper — a year-long storage-aware
//! operational simulation plus a parallel scenario sweep — and, like
//! `quick` (the CI smoke, exits nonzero on failure), must be requested by
//! name: neither runs under `all`, which regenerates exactly the paper's
//! artifacts.

use greencloud_bench::bench_json::{parse_bench_json, render_bench_json};
use greencloud_bench::{
    lp_bench_records, rolling_states, sweep_inputs, table3_profiles, tech_label, tool, world,
    REPRO_SEED,
};
use greencloud_climate::catalog::WorldCatalog;
use greencloud_core::framework::{PlacementInput, StorageMode, TechMix};
use greencloud_cost::params::CostParams;
use greencloud_energy::capacity_factor::CapacityFactors;
use greencloud_energy::pue::PueModel;
use greencloud_nebula::emulation::{self, EmulationConfig};
use greencloud_nebula::predictor::PredictionMode;
use greencloud_nebula::scheduler::{RollingScheduler, Scheduler, SchedulerConfig, SiteState};
use greencloud_nebula::sweep::{run_sweep, Scenario};
use greencloud_nebula::wan::WanModel;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = String::from("all");
    let mut locations = 0usize; // 0 = per-experiment default
    let mut fast = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--locations" => {
                i += 1;
                locations = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(0);
            }
            "--fast" => fast = true,
            "--quick" => experiment = "quick".to_string(),
            other if !other.starts_with("--") => experiment = other.to_string(),
            other => eprintln!("ignoring unknown flag {other}"),
        }
        i += 1;
    }

    let run = |name: &str| experiment == "all" || experiment == name;
    let mut ran = false;
    if run("tab1") {
        tab1();
        ran = true;
    }
    if run("fig3") {
        fig3(pick(locations, 1373));
        ran = true;
    }
    if run("fig4") {
        fig4();
        ran = true;
    }
    if run("fig5") {
        fig5(pick(locations, 400));
        ran = true;
    }
    if run("fig6") {
        fig6(pick(locations, if fast { 200 } else { 1373 }));
        ran = true;
    }
    if run("tab2") {
        tab2();
        ran = true;
    }
    if run("fig7") {
        fig7(pick(locations, 150), fast);
        ran = true;
    }
    if run("fig8") || run("fig11") {
        sweep(
            "fig8/fig11 (net metering)",
            StorageMode::NetMetering,
            pick(locations, 150),
            fast,
        );
        ran = true;
    }
    if run("fig9") {
        sweep(
            "fig9 (batteries)",
            StorageMode::Batteries,
            pick(locations, 150),
            fast,
        );
        ran = true;
    }
    if run("fig10") || run("fig12") {
        sweep(
            "fig10/fig12 (no storage)",
            StorageMode::None,
            pick(locations, 150),
            fast,
        );
        ran = true;
    }
    if run("fig13") {
        fig13(pick(locations, 150), fast);
        ran = true;
    }
    if run("tab3") {
        tab3(pick(locations, 150), fast);
        ran = true;
    }
    if run("fig15") {
        fig15(fast);
        ran = true;
    }
    if experiment == "annual" {
        annual(fast);
        ran = true;
    }
    if run("timing") {
        timing();
        ran = true;
    }
    if experiment == "quick" {
        if !quick() {
            std::process::exit(1);
        }
        ran = true;
    }
    if !ran {
        eprintln!("unknown experiment '{experiment}'");
        std::process::exit(2);
    }
}

fn pick(cli: usize, default: usize) -> usize {
    if cli == 0 {
        default
    } else {
        cli
    }
}

/// One-line account of how the siting search spent its LP budget: eval
/// cache hit rate, warm-start rate, and site-block reuse.
fn search_report(sol: &greencloud_core::solution::PlacementSolution) {
    if let Some(st) = &sol.search_stats {
        println!(
            "search: {} LP solves, {} cache hits ({:.0}%), warm starts {}/{} ({:.0}%), site blocks reused {}/{}",
            st.evaluations,
            st.cache_hits,
            st.cache_rate() * 100.0,
            st.warm_hits,
            st.warm_attempts,
            st.warm_rate() * 100.0,
            st.block_hits,
            st.block_hits + st.block_misses,
        );
        println!(
            "solver: {} simplex iterations, {} refactorizations, {} ftrans, {} btrans, {:.0} ms pricing",
            st.simplex_iterations,
            st.refactorizations,
            st.ftrans,
            st.btrans,
            st.pricing_ms(),
        );
    }
}

/// Writes the benchmark records to `BENCH_lp.json` in the working
/// directory and validates the artifact by re-parsing what actually landed
/// on disk; returns `false` on any failure.
fn write_bench_lp_json(records: &[greencloud_bench::bench_json::BenchRecord]) -> bool {
    let text = render_bench_json(records);
    if let Err(e) = std::fs::write("BENCH_lp.json", &text) {
        println!("BENCH_lp.json write FAILED: {e}");
        return false;
    }
    match std::fs::read_to_string("BENCH_lp.json").map_err(|e| e.to_string()) {
        Ok(back) => match parse_bench_json(&back) {
            Ok(parsed) if parsed.len() == records.len() => {
                println!(
                    "BENCH_lp.json: {} records written and validated",
                    parsed.len()
                );
                true
            }
            Ok(parsed) => {
                println!(
                    "BENCH_lp.json VALIDATION FAILED: {} records in, {} out",
                    records.len(),
                    parsed.len()
                );
                false
            }
            Err(e) => {
                println!("BENCH_lp.json PARSE FAILED: {e}");
                false
            }
        },
        Err(e) => {
            println!("BENCH_lp.json readback FAILED: {e}");
            false
        }
    }
}

fn header(title: &str) {
    println!("\n==== {title} ====");
}

/// Table I: the instantiated framework defaults.
fn tab1() {
    header("Table I — framework parameter defaults");
    let p = CostParams::default();
    println!("interest rate                {:>10.4}", p.interest_rate);
    println!("areaDC        [m2/kW]        {:>10.3}", p.area_dc_m2_per_kw);
    println!(
        "areaSolar     [m2/kW]        {:>10.2}",
        p.area_solar_m2_per_kw
    );
    println!(
        "areaWind      [m2/kW]        {:>10.2}",
        p.area_wind_m2_per_kw
    );
    println!(
        "priceBuildDC  [$/W]          {:>6}(small) / {}(large)",
        p.price_build_dc_small_per_w, p.price_build_dc_large_per_w
    );
    println!(
        "priceBuildSolar [$/W]        {:>10.2}",
        p.price_build_solar_per_w
    );
    println!(
        "priceBuildWind  [$/W]        {:>10.2}",
        p.price_build_wind_per_w
    );
    println!("priceServer   [$]            {:>10.0}", p.price_server);
    println!("serverPower   [W]            {:>10.0}", p.server_power_w);
    println!("priceSwitch   [$]            {:>10.0}", p.price_switch);
    println!("switchPower   [W]            {:>10.0}", p.switch_power_w);
    println!(
        "serversSwitch                {:>10.0}",
        p.servers_per_switch
    );
    println!(
        "priceBatt     [$/kWh]        {:>10.0}",
        p.price_batt_per_kwh
    );
    println!("battEff                      {:>10.2}", p.batt_efficiency);
    println!(
        "priceBWServer [$/serv-month] {:>10.2}",
        p.price_bw_per_server_month
    );
    println!(
        "costLineNet   [$/km]         {:>10.0}",
        p.cost_line_net_per_km
    );
    println!(
        "costLinePow   [$/km]         {:>10.0}",
        p.cost_line_pow_per_km
    );
    println!("creditNetMeter               {:>10.2}", p.credit_net_meter);
}

/// Fig. 3: cumulative capacity factors across the world.
fn fig3(n: usize) {
    header(&format!("Fig. 3 — capacity-factor CDF over {n} locations"));
    let w = world(n);
    let mut solar = Vec::with_capacity(n);
    let mut wind = Vec::with_capacity(n);
    for loc in w.iter() {
        let cf = CapacityFactors::with_default_models(&w.tmy(loc.id));
        solar.push(cf.solar);
        wind.push(cf.wind);
    }
    solar.sort_by(|a, b| a.partial_cmp(b).unwrap());
    wind.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "{:>12} {:>12} {:>12}",
        "percentile", "solar CF %", "wind CF %"
    );
    for pct in [5, 25, 50, 75, 90, 95, 99, 100] {
        let idx = ((pct as f64 / 100.0 * n as f64) as usize).clamp(1, n) - 1;
        println!(
            "{:>11}% {:>12.1} {:>12.1}",
            pct,
            solar[idx] * 100.0,
            wind[idx] * 100.0
        );
    }
    println!("(paper: most locations solar 10–25%; wind long tail to ~56%)");
}

/// Fig. 4: PUE vs outside temperature.
fn fig4() {
    header("Fig. 4 — PUE vs outside temperature");
    let m = PueModel::new();
    println!("{:>8} {:>8}", "temp C", "PUE");
    for t in (10..=45).step_by(5) {
        println!("{:>8} {:>8.3}", t, m.pue(t as f64));
    }
}

/// Fig. 5: PUE vs capacity factor.
fn fig5(n: usize) {
    header(&format!(
        "Fig. 5 — mean PUE vs capacity factor ({n} locations)"
    ));
    let w = world(n);
    let mut rows: Vec<(f64, f64, f64)> = Vec::new();
    for loc in w.iter() {
        let cf = CapacityFactors::with_default_models(&w.tmy(loc.id));
        rows.push((cf.solar, cf.wind, cf.mean_pue));
    }
    let bins = [(0.0, 0.10), (0.10, 0.20), (0.20, 0.30), (0.30, 0.60)];
    println!(
        "{:>14} {:>14} {:>14}",
        "CF bin", "PUE | solar", "PUE | wind"
    );
    for (lo, hi) in bins {
        let mean = |sel: &dyn Fn(&(f64, f64, f64)) -> f64| -> String {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| sel(r) >= lo && sel(r) < hi)
                .map(|r| r.2)
                .collect();
            if v.is_empty() {
                "-".into()
            } else {
                format!("{:.3}", v.iter().sum::<f64>() / v.len() as f64)
            }
        };
        println!(
            "{:>6.0}-{:<3.0}% {:>14} {:>14}",
            lo * 100.0,
            hi * 100.0,
            mean(&|r: &(f64, f64, f64)| r.0),
            mean(&|r: &(f64, f64, f64)| r.1)
        );
    }
    println!("(paper: the windiest sites run coolest; sunny sites run warmer)");
}

/// Fig. 6: single 25 MW datacenter cost CDF.
fn fig6(n: usize) {
    header(&format!(
        "Fig. 6 — 25 MW single-DC monthly cost CDF ({n} locations, net metering)"
    ));
    let t = tool(n, true);
    let configs: [(&str, PlacementInput); 3] = [
        (
            "brown",
            PlacementInput::default().with_green(0.0, TechMix::BrownOnly),
        ),
        (
            "solar 50%",
            PlacementInput::default().with_green(0.5, TechMix::SolarOnly),
        ),
        (
            "wind 50%",
            PlacementInput::default().with_green(0.5, TechMix::WindOnly),
        ),
    ];
    let mut table: Vec<Vec<f64>> = Vec::new();
    for (_, input) in &configs {
        let mut costs = Vec::new();
        for loc in 0..t.candidates().len() {
            let id = t.candidates()[loc].id;
            if let Ok(sol) = t.solve_single(id, 25.0, input) {
                costs.push(sol.monthly_cost / 1e6);
            }
        }
        costs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        table.push(costs);
    }
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "percentile", "brown $M", "solar50 $M", "wind50 $M"
    );
    for pct in [10, 25, 50, 75, 80, 90] {
        print!("{pct:>11}%");
        for costs in &table {
            let idx =
                ((pct as f64 / 100.0 * costs.len() as f64) as usize).clamp(1, costs.len()) - 1;
            print!(" {:>12.1}", costs[idx]);
        }
        println!();
    }
    println!(
        "feasible locations: brown {} solar {} wind {}",
        table[0].len(),
        table[1].len(),
        table[2].len()
    );
    println!("(paper at 80%: brown 8.7–12.8, wind 9.1–16, solar 10.9–23.3 $M/month)");
}

/// Table II: the anchor locations.
fn tab2() {
    header("Table II — anchor locations");
    let w = WorldCatalog::anchors_only(REPRO_SEED);
    println!(
        "{:<30} {:>9} {:>9} {:>8} {:>10} {:>9} {:>8} {:>8}",
        "location", "solarCF%", "windCF%", "maxPUE", "elec$/MWh", "land$/m2", "dPow km", "dNet km"
    );
    for loc in w.iter() {
        let cf = CapacityFactors::with_default_models(&w.tmy(loc.id));
        println!(
            "{:<30} {:>9.1} {:>9.1} {:>8.2} {:>10.0} {:>9.1} {:>8.0} {:>8.0}",
            loc.name,
            cf.solar * 100.0,
            cf.wind * 100.0,
            cf.max_pue,
            loc.econ.elec_usd_per_kwh * 1000.0,
            loc.econ.land_usd_per_m2,
            loc.econ.dist_power_km,
            loc.econ.dist_network_km
        );
    }
}

/// Fig. 7: the 50 MW / 50% green case study cost breakdown.
fn fig7(n: usize, fast: bool) {
    header("Fig. 7 — case study: 50 MW, 50% green, net metering");
    let t = tool(n, fast);
    let input = PlacementInput::default();
    match t.solve(&input) {
        Ok(sol) => {
            print!("{}", sol.summary());
            search_report(&sol);
            println!(
                "{:<28} {:>9} {:>9} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9}",
                "site", "buildDC", "IT", "land", "plants", "batt", "lines", "bw", "energy"
            );
            for dc in &sol.datacenters {
                let b = &dc.breakdown;
                println!(
                    "{:<28} {:>9.2} {:>9.2} {:>7.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                    dc.name,
                    b.building_dc / 1e6,
                    b.it_equipment / 1e6,
                    b.land / 1e6,
                    (b.building_solar + b.building_wind) / 1e6,
                    b.batteries / 1e6,
                    b.connections / 1e6,
                    b.bandwidth / 1e6,
                    b.energy / 1e6
                );
            }
            // The paper's headline: +13% over the best brown network.
            let brown = t.solve(&input.with_green(0.0, TechMix::BrownOnly));
            if let Ok(brown) = brown {
                println!(
                    "green ${:.2}M vs brown ${:.2}M → {:+.1}% (paper: +13%)",
                    sol.monthly_cost / 1e6,
                    brown.monthly_cost / 1e6,
                    (sol.monthly_cost / brown.monthly_cost - 1.0) * 100.0
                );
            }
        }
        Err(e) => println!("case study failed: {e}"),
    }
}

/// Figs. 8–12: cost and provisioned capacity vs green fraction.
fn sweep(title: &str, storage: StorageMode, n: usize, fast: bool) {
    header(&format!("{title} — 50 MW network sweeps"));
    let t = tool(n, fast);
    println!(
        "{:>7} {:>12} {:>14} {:>14} {:>10}",
        "green%", "tech", "cost $M/mo", "capacity MW", "sites"
    );
    for (g, tech, input) in sweep_inputs(storage) {
        match t.solve(&input) {
            Ok(sol) => println!(
                "{:>6.0}% {:>12} {:>14.2} {:>14.1} {:>10}",
                g * 100.0,
                tech_label(tech),
                sol.monthly_cost / 1e6,
                sol.total_capacity_mw,
                sol.datacenters.len()
            ),
            Err(e) => println!(
                "{:>6.0}% {:>12} {:>14} {:>14} {:>10}",
                g * 100.0,
                tech_label(tech),
                format!("{e}"),
                "-",
                "-"
            ),
        }
    }
}

/// Fig. 13: migration overhead sweep at 100% green without storage.
fn fig13(n: usize, fast: bool) {
    header("Fig. 13 — migration fraction sweep (100% green, no storage)");
    let t = tool(n, fast);
    println!(
        "{:>12} {:>12} {:>14} {:>8}",
        "migration%", "tech", "cost $M/mo", "sites"
    );
    for &theta in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        for &tech in &[TechMix::WindOnly, TechMix::SolarOnly, TechMix::Both] {
            let input = PlacementInput {
                storage: StorageMode::None,
                migration_fraction: theta,
                ..PlacementInput::default()
            }
            .with_green(1.0, tech);
            match t.solve(&input) {
                Ok(sol) => println!(
                    "{:>11.0}% {:>12} {:>14.2} {:>8}",
                    theta * 100.0,
                    tech_label(tech),
                    sol.monthly_cost / 1e6,
                    sol.datacenters.len()
                ),
                Err(e) => println!(
                    "{:>11.0}% {:>12} {:>14} {:>8}",
                    theta * 100.0,
                    tech_label(tech),
                    format!("{e}"),
                    "-"
                ),
            }
        }
    }
}

/// Table III: the 100% green / no-storage network.
fn tab3(n: usize, fast: bool) {
    header("Table III — 100% green without storage");
    let t = tool(n, fast);
    let input = PlacementInput {
        storage: StorageMode::None,
        ..PlacementInput::default()
    }
    .with_green(1.0, TechMix::Both);
    match t.solve(&input) {
        Ok(sol) => {
            print!("{}", sol.summary());
            search_report(&sol);
            println!("(paper: 3 sites × 50 MW IT, ~1.1 GW of solar total)");
        }
        Err(e) => println!("failed: {e}"),
    }
}

/// Fig. 15: the follow-the-renewables day.
fn fig15(fast: bool) {
    header("Fig. 15 — follow-the-renewables day (Table III network)");
    let w = WorldCatalog::anchors_only(REPRO_SEED);
    let cfg = EmulationConfig {
        vm_count: if fast { 100 } else { 200 },
        ..EmulationConfig::default()
    };
    match emulation::run(&w, &cfg) {
        Ok(r) => {
            println!(
                "{:>5} {:<26} {:>9} {:>9} {:>9} {:>9} {:>9}",
                "hour", "site", "green MW", "load MW", "pueOv MW", "mig MW", "brown MW"
            );
            let names: Vec<String> = cfg.sites.iter().map(|s| s.location_name.clone()).collect();
            for row in &r.rows {
                println!(
                    "{:>5} {:<26} {:>9.1} {:>9.1} {:>9.2} {:>9.2} {:>9.2}",
                    row.hour,
                    names[row.dc],
                    row.green_available_mw,
                    row.load_mw,
                    row.pue_overhead_mw,
                    row.migration_mw,
                    row.brown_mw
                );
            }
            println!(
                "day summary: green fraction {:.1}%, {} migrations, {:.1} GB shipped, mean migration {:.2} h, {} blocks re-replicated",
                r.green_fraction * 100.0,
                r.migrations,
                r.migrated_gb,
                r.mean_migration_hours,
                r.rereplicated_blocks
            );
        }
        Err(e) => println!("emulation failed: {e}"),
    }
}

/// Beyond the paper: a 365-day storage-aware operational simulation, a
/// parallel scenario sweep, and the warm-vs-cold re-solve ratio.
fn annual(fast: bool) {
    header("Annual — year-long follow-the-renewables with storage");
    let w = WorldCatalog::anchors_only(REPRO_SEED);
    let year = EmulationConfig {
        vm_count: if fast { 60 } else { 200 },
        hours: 8760,
        start_hour: 0,
        net_meter_credit: Some(1.0),
        ..EmulationConfig::default()
    }
    .with_batteries(50_000.0);

    let t0 = Instant::now();
    match emulation::run(&w, &year) {
        Ok(r) => {
            let st = &r.scheduler_stats;
            println!(
                "year summary: green fraction {:.1}%, brown {:.0} MWh of {:.0} MWh demand, \
                 {} migrations ({:.1} GB shipped, mean {:.2} h, peak {} in flight)",
                r.green_fraction * 100.0,
                r.total_brown_mwh,
                r.total_demand_mwh,
                r.migrations,
                r.migrated_gb,
                r.mean_migration_hours,
                r.peak_inflight_migrations,
            );
            println!(
                "storage: battery {:.0} MWh in / {:.0} MWh out, net meter {:.0} MWh pushed / {:.0} MWh drawn, grid settlement ${:.2}M",
                r.battery_in_mwh,
                r.battery_out_mwh,
                r.net_pushed_mwh,
                r.net_drawn_mwh,
                r.energy_settlement_usd / 1e6
            );
            println!(
                "scheduler: {} rounds, {} warm-started ({:.0}%), {} simplex iterations, {} rebuilds, wall {:.1}s",
                st.rounds,
                st.warm_started,
                st.warm_rate() * 100.0,
                st.iterations,
                st.rebuilds,
                t0.elapsed().as_secs_f64(),
            );
            println!(
                "solver: {} refactorizations, {} ftrans, {} btrans, {:.0} ms pricing",
                st.refactorizations,
                st.ftrans,
                st.btrans,
                st.pricing_ms(),
            );
        }
        Err(e) => println!("annual emulation failed: {e}"),
    }

    // Scenario sweep: seasons × storage × forecast quality × WAN.
    let seasonal = |name: &str, start_day: usize| {
        Scenario::new(
            name,
            EmulationConfig {
                vm_count: 60,
                hours: if fast { 7 * 24 } else { 28 * 24 },
                start_hour: start_day * 24,
                ..EmulationConfig::default()
            },
        )
    };
    let base = seasonal("summer baseline", 170).config;
    let scenarios = vec![
        seasonal("winter, no storage", 352),
        seasonal("summer baseline", 170),
        Scenario::new(
            "summer + 50 MWh batteries",
            base.clone().with_batteries(50_000.0),
        ),
        Scenario::new(
            "summer + net metering",
            EmulationConfig {
                net_meter_credit: Some(1.0),
                ..base.clone()
            },
        ),
        Scenario::new(
            "summer, noisy forecast σ=0.3",
            EmulationConfig {
                prediction: PredictionMode::Noisy {
                    sigma: 0.3,
                    seed: REPRO_SEED,
                },
                ..base.clone()
            },
        ),
        Scenario::new(
            "summer, 100 Mbps WAN",
            EmulationConfig {
                wan: WanModel::leased(100.0),
                ..base
            },
        ),
    ];
    match run_sweep(&w, &scenarios, 6) {
        Ok(results) => {
            println!(
                "{:<30} {:>7} {:>10} {:>6} {:>9} {:>9} {:>6}",
                "scenario", "green%", "brown MWh", "migs", "batt MWh", "net MWh", "warm%"
            );
            for r in &results {
                println!(
                    "{:<30} {:>6.1}% {:>10.1} {:>6} {:>9.1} {:>9.1} {:>5.0}%",
                    r.name,
                    r.green_fraction * 100.0,
                    r.brown_mwh,
                    r.migrations,
                    r.battery_out_mwh,
                    r.net_drawn_mwh,
                    r.warm_rate * 100.0
                );
            }
        }
        Err(e) => println!("scenario sweep failed: {e}"),
    }

    // Warm-vs-cold hourly re-solve ratio (the Criterion bench tracks the
    // same quantity; this is the repro-visible number).
    let rounds = if fast { 48 } else { 96 };
    match warm_vs_cold(&w, rounds) {
        Some((warm_ms, cold_ms, rate)) => println!(
            "hourly re-solve: warm {:.1} ms vs cold {:.1} ms → {:.1}x speedup ({:.0}% warm-started)",
            warm_ms,
            cold_ms,
            cold_ms / warm_ms,
            rate * 100.0
        ),
        None => println!("warm-vs-cold measurement failed"),
    }
}

/// Times `rounds` consecutive hourly re-solves of the Table III network,
/// warm (persistent rolling model) vs cold (rebuild + two-phase solve).
/// Returns `(warm_ms_total, cold_ms_total, warm_rate)`.
fn warm_vs_cold(w: &WorldCatalog, rounds: usize) -> Option<(f64, f64, f64)> {
    let cfg = EmulationConfig::default();
    let profiles = table3_profiles(w)?;
    let window = cfg.scheduler.window_hours;
    let start = 4080;

    let mut rolling = RollingScheduler::new(cfg.scheduler.clone());
    let mut loads = vec![cfg.total_load_mw, 0.0, 0.0];
    let t0 = Instant::now();
    for t in start..start + rounds {
        let states = rolling_states(&profiles, t, window, &loads);
        loads = rolling.plan(&states).ok()?.target_mw;
    }
    let warm_ms = t0.elapsed().as_secs_f64() * 1000.0;

    let cold = Scheduler::new(cfg.scheduler.clone());
    let mut loads = vec![cfg.total_load_mw, 0.0, 0.0];
    let t0 = Instant::now();
    for t in start..start + rounds {
        let states = rolling_states(&profiles, t, window, &loads);
        loads = cold.plan(&states).ok()?.target_mw;
    }
    let cold_ms = t0.elapsed().as_secs_f64() * 1000.0;
    Some((warm_ms, cold_ms, rolling.stats().warm_rate()))
}

/// CI smoke: a short storage-aware emulation plus a tiny siting solve.
/// Prints what it ran and returns `false` on any failure.
fn quick() -> bool {
    header("quick — CI smoke (operational + siting)");
    let mut ok = true;
    let w = WorldCatalog::anchors_only(REPRO_SEED);
    let cfg = EmulationConfig {
        vm_count: 24,
        hours: 24,
        net_meter_credit: Some(1.0),
        scheduler: SchedulerConfig {
            window_hours: 12,
            ..SchedulerConfig::default()
        },
        ..EmulationConfig::default()
    }
    .with_batteries(10_000.0);
    match emulation::run(&w, &cfg) {
        Ok(r) => {
            let load_ok = r.rows.len() == 24 * 3 && r.green_fraction > 0.5;
            println!(
                "emulation: green {:.1}%, {} migrations, warm rate {:.0}% → {}",
                r.green_fraction * 100.0,
                r.migrations,
                r.scheduler_stats.warm_rate() * 100.0,
                if load_ok { "ok" } else { "SUSPICIOUS" }
            );
            ok &= load_ok;
        }
        Err(e) => {
            println!("emulation FAILED: {e}");
            ok = false;
        }
    }
    let t = tool(40, true);
    match t.solve(&PlacementInput::default()) {
        Ok(sol) => println!(
            "siting: {} sites, ${:.2}M/month → ok",
            sol.datacenters.len(),
            sol.monthly_cost / 1e6
        ),
        Err(e) => {
            println!("siting FAILED: {e}");
            ok = false;
        }
    }
    // The machine-readable bench artifact must round-trip: emit a reduced
    // run of the LP suite and re-parse what lands on disk.
    ok &= write_bench_lp_json(&lp_bench_records(true));
    ok
}

/// §V-C: schedule computation times, plus the LP-substrate benchmark suite
/// (written to `BENCH_lp.json` for cross-PR tracking).
fn timing() {
    header("§V-C — schedule computation time");
    let w = WorldCatalog::anchors_only(REPRO_SEED);
    let cfg = EmulationConfig::default();
    // Build the three-site forecast state once per load level.
    for &(label, load) in &[("50 MW", 50.0), ("200 MW", 200.0)] {
        let mut profiles = Vec::new();
        for site in &cfg.sites {
            let loc = w.find(&site.location_name).expect("anchor");
            let tmy = w.tmy(loc.id);
            profiles.push((
                greencloud_energy::profile::EnergyProfile::from_tmy_hourly(
                    &tmy,
                    &Default::default(),
                    &Default::default(),
                    &PueModel::new(),
                ),
                site,
            ));
        }
        let states: Vec<SiteState> = profiles
            .iter()
            .enumerate()
            .map(|(i, (p, site))| SiteState {
                green_forecast_mw: (0..48)
                    .map(|h| p.alpha[4080 + h] * site.solar_mw + p.beta[4080 + h] * site.wind_mw)
                    .collect(),
                pue_forecast: (0..48).map(|h| p.pue[4080 + h]).collect(),
                current_load_mw: if i == 0 { load } else { 0.0 },
                capacity_mw: load,
            })
            .collect();
        let sched = Scheduler::new(SchedulerConfig::default());
        // Warm-up + timed runs.
        let _ = sched.plan(&states).expect("plan");
        let t0 = Instant::now();
        let reps = 10;
        for _ in 0..reps {
            let _ = sched.plan(&states).expect("plan");
        }
        let ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;
        println!(
            "{label:>8}: {ms:>8.1} ms per 48-h schedule (paper: 240–780 ms on 2 GHz hardware)"
        );
    }

    let records = lp_bench_records(false);
    for r in &records {
        println!(
            "{:<34} {:>9.1} ms  {:>7} iters  warm {:>4.0}%",
            r.name,
            r.wall_ms,
            r.iterations,
            r.warm_rate * 100.0
        );
    }
    write_bench_lp_json(&records);
}
