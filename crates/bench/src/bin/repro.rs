//! `repro` — regenerates every table and figure of the paper's evaluation,
//! as a thin CLI over [`greencloud_api::Engine`].
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [--locations N] [--fast] [--threads N]
//! repro all [--locations N] [--fast]
//! repro run <spec.json> [--json] [--timeout-ms N] [--world anchors|synthetic] [--locations N]
//! repro serve [--addr A] [--max-inflight N] [--queue-depth N] [--default-deadline-ms N]
//!             [--journal-path F | --no-persist] [--max-redeliveries N]
//! repro router --backends a:p,b:p[,...] [--addr A] [--vnodes N] [--probe-ms N] [--drain-ms N]
//! repro lint
//! ```
//!
//! Experiments: `tab1 fig3 fig4 fig5 fig6 tab2 fig7 fig8 fig9 fig10 fig11
//! fig12 fig13 tab3 fig15 annual timing quick`. Output is plain text shaped
//! like the paper's tables/series; `EXPERIMENTS.md` records a reference
//! run. `annual` goes beyond the paper — a year-long storage-aware
//! operational simulation plus a parallel scenario sweep — and, like
//! `quick` (the CI smoke, exits nonzero on failure), must be requested by
//! name: neither runs under `all`, which regenerates exactly the paper's
//! artifacts.
//!
//! `repro run spec.json` deserializes a [`greencloud_api::ExperimentSpec`]
//! (schema `greencloud-spec/1`) and runs it — exactly the same code path
//! as the named experiments, which are all expressed as specs themselves.
//! `--timeout-ms N` bounds the run with the engine's deadline machinery
//! (nonzero exit with the typed `deadline exceeded` message), and with
//! `--json` failures print the same `greencloud-error/1` body the serve
//! endpoints return.
//!
//! `repro serve` runs the overload-safe experiment service
//! ([`greencloud_api::serve`]) until SIGTERM/SIGINT, then drains
//! gracefully and exits 0 with the run's counters. Jobs submitted via
//! `POST /v1/jobs` are journaled to `repro-jobs.wal` (override with
//! `--journal-path`, disable with `--no-persist`) so acknowledged work
//! survives a crash: on restart the journal is replayed and unfinished
//! jobs re-run, at most `--max-redeliveries` times each.
//!
//! `repro router` fronts a fleet of `repro serve` backends with the
//! consistent-hash, streaming reverse proxy ([`greencloud_api::router`]):
//! identical specs route to the same backend (its report cache stays
//! hot), failed backends are failed over automatically, and chunked
//! progress streams relay without buffering. Same signal discipline as
//! `serve`: SIGTERM/SIGINT drains in-flight relays and exits 0.

use greencloud_api::report::ReportBody;
use greencloud_api::{
    AnnualSpec, Engine, ExperimentSpec, Report, SitingSpec, SweepAxes, SweepMode, SweepSpec,
    TimingSpec,
};
use greencloud_bench::bench_json::{parse_bench_json, render_bench_json, BenchRecord};
use greencloud_bench::{siting_search, sweep_inputs, tech_label, world, REPRO_SEED};
use greencloud_climate::catalog::WorldCatalog;
use greencloud_core::framework::{PlacementInput, StorageMode, TechMix};
use greencloud_cost::params::CostParams;
use greencloud_energy::capacity_factor::CapacityFactors;
use greencloud_energy::pue::PueModel;
use greencloud_nebula::emulation::EmulationConfig;
use greencloud_nebula::scheduler::SchedulerConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = String::from("all");
    let mut spec_path: Option<String> = None;
    let mut locations = 0usize; // 0 = per-experiment default
    let mut fast = false;
    let mut threads = 0usize; // 0 = auto
    let mut as_json = false;
    let mut world_kind = String::from("anchors");
    let mut timeout_ms = 0u64; // 0 = no deadline
    let mut serve_cfg = greencloud_api::ServeConfig::default();
    let mut router_cfg = greencloud_api::RouterConfig::default();
    let mut journal_path: Option<String> = None;
    let mut no_persist = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--locations" => {
                i += 1;
                locations = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(0);
            }
            "--threads" => {
                i += 1;
                threads = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(0);
            }
            "--world" => {
                i += 1;
                world_kind = args.get(i).cloned().unwrap_or_default();
            }
            "--timeout-ms" => {
                i += 1;
                timeout_ms = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(0);
            }
            "--addr" => {
                i += 1;
                if let Some(a) = args.get(i) {
                    serve_cfg.addr = a.clone();
                    router_cfg.addr = a.clone();
                }
            }
            "--backends" => {
                i += 1;
                router_cfg.backends = args
                    .get(i)
                    .map(|s| {
                        s.split(',')
                            .map(str::trim)
                            .filter(|b| !b.is_empty())
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default();
            }
            "--vnodes" => {
                i += 1;
                router_cfg.virtual_nodes = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(router_cfg.virtual_nodes);
            }
            "--probe-ms" => {
                i += 1;
                router_cfg.probe_interval_ms = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(router_cfg.probe_interval_ms);
            }
            "--max-inflight" => {
                i += 1;
                serve_cfg.max_inflight = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(serve_cfg.max_inflight);
            }
            "--queue-depth" => {
                i += 1;
                serve_cfg.queue_depth = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(serve_cfg.queue_depth);
            }
            "--default-deadline-ms" => {
                i += 1;
                serve_cfg.default_deadline_ms = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(serve_cfg.default_deadline_ms);
            }
            "--drain-ms" => {
                i += 1;
                if let Some(ms) = args.get(i).and_then(|s| s.parse().ok()) {
                    serve_cfg.drain_ms = ms;
                    router_cfg.drain_ms = ms;
                }
            }
            "--cache-capacity" => {
                i += 1;
                serve_cfg.cache_capacity = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(serve_cfg.cache_capacity);
            }
            "--journal-path" => {
                i += 1;
                journal_path = args.get(i).cloned();
            }
            "--no-persist" => no_persist = true,
            "--max-redeliveries" => {
                i += 1;
                serve_cfg.max_redeliveries = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(serve_cfg.max_redeliveries);
            }
            "--fast" => fast = true,
            "--json" => as_json = true,
            "--quick" => experiment = "quick".to_string(),
            other if !other.starts_with("--") => {
                if experiment == "run" && spec_path.is_none() {
                    spec_path = Some(other.to_string());
                } else {
                    experiment = other.to_string();
                }
            }
            other => eprintln!("ignoring unknown flag {other}"),
        }
        i += 1;
    }

    if experiment == "lint" {
        std::process::exit(run_lint());
    }

    if experiment == "serve" {
        // Durable by default: the journal's whole point is surviving an
        // unplanned restart, so opting *out* is the explicit flag.
        serve_cfg.journal_path = if no_persist {
            None
        } else {
            journal_path.or_else(|| Some("repro-jobs.wal".to_string()))
        };
        std::process::exit(run_serve(serve_cfg, &world_kind, locations, threads));
    }

    if experiment == "router" {
        std::process::exit(run_router(router_cfg));
    }

    if experiment == "run" {
        let Some(path) = spec_path else {
            eprintln!(
                "usage: repro run <spec.json> [--json] [--timeout-ms N] \
                 [--world anchors|synthetic]"
            );
            std::process::exit(2);
        };
        if !run_spec_file(&path, &world_kind, locations, threads, as_json, timeout_ms) {
            std::process::exit(1);
        }
        return;
    }

    let ctx = Ctx { fast, threads };
    let run = |name: &str| experiment == "all" || experiment == name;
    let mut ran = false;
    if run("tab1") {
        tab1();
        ran = true;
    }
    if run("fig3") {
        fig3(pick(locations, 1373));
        ran = true;
    }
    if run("fig4") {
        fig4();
        ran = true;
    }
    if run("fig5") {
        fig5(pick(locations, 400));
        ran = true;
    }
    if run("fig6") {
        fig6(&ctx, pick(locations, if fast { 200 } else { 1373 }));
        ran = true;
    }
    if run("tab2") {
        tab2();
        ran = true;
    }
    if run("fig7") {
        fig7(&ctx, pick(locations, 150));
        ran = true;
    }
    if run("fig8") || run("fig11") {
        sweep_fig(
            &ctx,
            "fig8/fig11 (net metering)",
            StorageMode::NetMetering,
            pick(locations, 150),
        );
        ran = true;
    }
    if run("fig9") {
        sweep_fig(
            &ctx,
            "fig9 (batteries)",
            StorageMode::Batteries,
            pick(locations, 150),
        );
        ran = true;
    }
    if run("fig10") || run("fig12") {
        sweep_fig(
            &ctx,
            "fig10/fig12 (no storage)",
            StorageMode::None,
            pick(locations, 150),
        );
        ran = true;
    }
    if run("fig13") {
        fig13(&ctx, pick(locations, 150));
        ran = true;
    }
    if run("tab3") {
        tab3(&ctx, pick(locations, 150));
        ran = true;
    }
    if run("fig15") {
        fig15(&ctx);
        ran = true;
    }
    if experiment == "annual" {
        annual(&ctx);
        ran = true;
    }
    if run("timing") {
        timing(&ctx);
        ran = true;
    }
    if experiment == "quick" {
        if !quick(&ctx) {
            std::process::exit(1);
        }
        ran = true;
    }
    if !ran {
        eprintln!("unknown experiment '{experiment}'");
        std::process::exit(2);
    }
}

/// CLI-wide context: fast mode and the engine thread knob.
struct Ctx {
    fast: bool,
    threads: usize,
}

impl Ctx {
    /// An engine over `n` synthetic locations.
    fn synthetic_engine(&self, n: usize) -> Engine {
        Engine::new(world(n)).with_threads(self.threads)
    }

    /// An engine over the paper's anchor locations.
    fn anchors_engine(&self) -> Engine {
        Engine::new(WorldCatalog::anchors_only(REPRO_SEED)).with_threads(self.threads)
    }

    /// A heuristic siting spec with the standard reproduction search.
    fn siting(&self, input: PlacementInput) -> ExperimentSpec {
        ExperimentSpec::Siting(SitingSpec {
            input,
            search: siting_search(self.fast),
        })
    }
}

fn pick(cli: usize, default: usize) -> usize {
    if cli == 0 {
        default
    } else {
        cli
    }
}

fn header(title: &str) {
    println!("\n==== {title} ====");
}

/// Loads, runs, and prints one serialized spec. Returns `false` on any
/// failure.
/// `repro lint` — the gclint static-analysis pass over the workspace
/// (determinism, panic-freedom, float-safety; see `cargo run -p gclint --
/// --help` for the rule catalog). Returns the process exit code.
fn run_lint() -> i32 {
    let cwd = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    let Some(root) = gclint::find_workspace_root(&cwd) else {
        eprintln!("repro lint: no workspace root above {}", cwd.display());
        return 2;
    };
    match gclint::lint_workspace(&root) {
        Ok(report) => {
            print!("{}", report.render());
            i32::from(!report.is_clean())
        }
        Err(e) => {
            eprintln!("repro lint: {e}");
            2
        }
    }
}

fn run_spec_file(
    path: &str,
    world_kind: &str,
    locations: usize,
    threads: usize,
    as_json: bool,
    timeout_ms: u64,
) -> bool {
    // Failures funnel through one typed ApiError so `--json` can emit the
    // same `greencloud-error/1` body the serve endpoints return.
    let result = (|| -> Result<(ExperimentSpec, Report), greencloud_api::ApiError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| greencloud_api::ApiError::Io(format!("cannot read {path}: {e}")))?;
        let spec = ExperimentSpec::from_json_str(&text)?;
        let catalog = match world_kind {
            "anchors" => WorldCatalog::anchors_only(REPRO_SEED),
            "synthetic" => world(pick(locations, 150)),
            other => {
                return Err(greencloud_api::ApiError::Io(format!(
                    "unknown world {other:?} (use anchors or synthetic)"
                )))
            }
        };
        let engine = Engine::new(catalog).with_threads(threads);
        let report = if timeout_ms > 0 {
            engine.run_with_deadline(&spec, std::time::Duration::from_millis(timeout_ms))?
        } else {
            engine.run(&spec)?
        };
        Ok((spec, report))
    })();
    match result {
        Ok((spec, report)) => {
            if as_json {
                print!("{}", report.to_json_string());
            } else {
                header(&format!("{} ({path})", spec.kind()));
                print!("{}", report.render_text());
            }
            true
        }
        Err(e) => {
            if as_json {
                print!("{}", e.to_error_json());
            }
            eprintln!("experiment failed: {e}");
            false
        }
    }
}

/// POSIX signal bridge for `repro serve`: a raw `signal(2)` declaration
/// (the workspace vendors no libc crate) installing a handler that flips
/// one atomic, polled by a shutdown thread. Applies to this binary only —
/// the library keeps `#![forbid(unsafe_code)]`.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set from the handler on SIGTERM/SIGINT.
    static TRIGGERED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single atomic store.
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    // SAFETY: `signal` is the POSIX libc function with this exact C
    // signature; declaring it does not call it.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Installs the handler for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        let h = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: libc `signal` with a valid signal number and a handler
        // that only performs an async-signal-safe atomic store.
        unsafe {
            signal(2, h);
            signal(15, h);
        }
    }

    /// True once a termination signal arrived.
    pub fn triggered() -> bool {
        TRIGGERED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    /// No signal bridge off unix; `repro serve` runs until killed.
    pub fn install() {}
    pub fn triggered() -> bool {
        false
    }
}

/// `repro serve` — binds the overload-safe experiment service and blocks
/// until SIGTERM/SIGINT, then drains gracefully. Returns the process exit
/// code (0 on a clean drain).
fn run_serve(
    cfg: greencloud_api::ServeConfig,
    world_kind: &str,
    locations: usize,
    threads: usize,
) -> i32 {
    let catalog = match world_kind {
        "anchors" => WorldCatalog::anchors_only(REPRO_SEED),
        "synthetic" => world(pick(locations, 150)),
        other => {
            eprintln!("unknown world {other:?} (use anchors or synthetic)");
            return 2;
        }
    };
    let engine = Engine::new(catalog).with_threads(threads);
    let server = match greencloud_api::Server::bind(engine, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("repro serve: bind failed: {e}");
            return 1;
        }
    };
    println!("repro serve: listening on http://{}", server.local_addr());
    sig::install();
    let handle = server.handle();
    let poller = std::thread::spawn(move || loop {
        if sig::triggered() {
            handle.trigger_shutdown();
            return;
        }
        if handle.is_draining() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
    let summary = server.join();
    let _ = poller.join();
    println!("repro serve: drained cleanly");
    print!("{}", summary.render_text());
    0
}

/// `repro router` — binds the sharding front-end over `--backends` and
/// blocks until SIGTERM/SIGINT, then drains in-flight relays. Returns the
/// process exit code (0 on a clean drain).
fn run_router(cfg: greencloud_api::RouterConfig) -> i32 {
    if cfg.backends.is_empty() {
        eprintln!("usage: repro router --backends host:port[,host:port...] [--addr A]");
        return 2;
    }
    let router = match greencloud_api::Router::bind(cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("repro router: bind failed: {e}");
            return 1;
        }
    };
    println!("repro router: listening on http://{}", router.local_addr());
    sig::install();
    let handle = router.handle();
    let poller = std::thread::spawn(move || loop {
        if sig::triggered() {
            handle.trigger_shutdown();
            return;
        }
        if handle.is_draining() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
    let summary = router.join();
    let _ = poller.join();
    println!("repro router: drained cleanly");
    print!("{}", summary.render_text());
    0
}

/// Writes the benchmark records to `BENCH_lp.json` in the working
/// directory and validates the artifact by re-parsing what actually landed
/// on disk; returns `false` on any failure.
fn write_bench_lp_json(records: &[BenchRecord]) -> bool {
    let text = render_bench_json(records);
    if let Err(e) = std::fs::write("BENCH_lp.json", &text) {
        println!("BENCH_lp.json write FAILED: {e}");
        return false;
    }
    match std::fs::read_to_string("BENCH_lp.json").map_err(|e| e.to_string()) {
        Ok(back) => match parse_bench_json(&back) {
            Ok(parsed) if parsed.len() == records.len() => {
                println!(
                    "BENCH_lp.json: {} records written and validated",
                    parsed.len()
                );
                true
            }
            Ok(parsed) => {
                println!(
                    "BENCH_lp.json VALIDATION FAILED: {} records in, {} out",
                    records.len(),
                    parsed.len()
                );
                false
            }
            Err(e) => {
                println!("BENCH_lp.json PARSE FAILED: {e}");
                false
            }
        },
        Err(e) => {
            println!("BENCH_lp.json readback FAILED: {e}");
            false
        }
    }
}

/// The timing records of a report, converted for `BENCH_lp.json`.
fn bench_records(report: &Report) -> Vec<BenchRecord> {
    match &report.body {
        ReportBody::Timing(t) => t.records.iter().map(BenchRecord::from).collect(),
        _ => Vec::new(),
    }
}

/// Table I: the instantiated framework defaults.
fn tab1() {
    header("Table I — framework parameter defaults");
    let p = CostParams::default();
    println!("interest rate                {:>10.4}", p.interest_rate);
    println!("areaDC        [m2/kW]        {:>10.3}", p.area_dc_m2_per_kw);
    println!(
        "areaSolar     [m2/kW]        {:>10.2}",
        p.area_solar_m2_per_kw
    );
    println!(
        "areaWind      [m2/kW]        {:>10.2}",
        p.area_wind_m2_per_kw
    );
    println!(
        "priceBuildDC  [$/W]          {:>6}(small) / {}(large)",
        p.price_build_dc_small_per_w, p.price_build_dc_large_per_w
    );
    println!(
        "priceBuildSolar [$/W]        {:>10.2}",
        p.price_build_solar_per_w
    );
    println!(
        "priceBuildWind  [$/W]        {:>10.2}",
        p.price_build_wind_per_w
    );
    println!("priceServer   [$]            {:>10.0}", p.price_server);
    println!("serverPower   [W]            {:>10.0}", p.server_power_w);
    println!("priceSwitch   [$]            {:>10.0}", p.price_switch);
    println!("switchPower   [W]            {:>10.0}", p.switch_power_w);
    println!(
        "serversSwitch                {:>10.0}",
        p.servers_per_switch
    );
    println!(
        "priceBatt     [$/kWh]        {:>10.0}",
        p.price_batt_per_kwh
    );
    println!("battEff                      {:>10.2}", p.batt_efficiency);
    println!(
        "priceBWServer [$/serv-month] {:>10.2}",
        p.price_bw_per_server_month
    );
    println!(
        "costLineNet   [$/km]         {:>10.0}",
        p.cost_line_net_per_km
    );
    println!(
        "costLinePow   [$/km]         {:>10.0}",
        p.cost_line_pow_per_km
    );
    println!("creditNetMeter               {:>10.2}", p.credit_net_meter);
}

/// Fig. 3: cumulative capacity factors across the world.
fn fig3(n: usize) {
    header(&format!("Fig. 3 — capacity-factor CDF over {n} locations"));
    let w = world(n);
    let mut solar = Vec::with_capacity(n);
    let mut wind = Vec::with_capacity(n);
    for loc in w.iter() {
        let cf = CapacityFactors::with_default_models(&w.tmy(loc.id));
        solar.push(cf.solar);
        wind.push(cf.wind);
    }
    solar.sort_by(|a, b| a.partial_cmp(b).unwrap());
    wind.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "{:>12} {:>12} {:>12}",
        "percentile", "solar CF %", "wind CF %"
    );
    for pct in [5, 25, 50, 75, 90, 95, 99, 100] {
        let idx = ((pct as f64 / 100.0 * n as f64) as usize).clamp(1, n) - 1;
        println!(
            "{:>11}% {:>12.1} {:>12.1}",
            pct,
            solar[idx] * 100.0,
            wind[idx] * 100.0
        );
    }
    println!("(paper: most locations solar 10–25%; wind long tail to ~56%)");
}

/// Fig. 4: PUE vs outside temperature.
fn fig4() {
    header("Fig. 4 — PUE vs outside temperature");
    let m = PueModel::new();
    println!("{:>8} {:>8}", "temp C", "PUE");
    for t in (10..=45).step_by(5) {
        println!("{:>8} {:>8.3}", t, m.pue(t as f64));
    }
}

/// Fig. 5: PUE vs capacity factor.
fn fig5(n: usize) {
    header(&format!(
        "Fig. 5 — mean PUE vs capacity factor ({n} locations)"
    ));
    let w = world(n);
    let mut rows: Vec<(f64, f64, f64)> = Vec::new();
    for loc in w.iter() {
        let cf = CapacityFactors::with_default_models(&w.tmy(loc.id));
        rows.push((cf.solar, cf.wind, cf.mean_pue));
    }
    let bins = [(0.0, 0.10), (0.10, 0.20), (0.20, 0.30), (0.30, 0.60)];
    println!(
        "{:>14} {:>14} {:>14}",
        "CF bin", "PUE | solar", "PUE | wind"
    );
    for (lo, hi) in bins {
        let mean = |sel: &dyn Fn(&(f64, f64, f64)) -> f64| -> String {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| sel(r) >= lo && sel(r) < hi)
                .map(|r| r.2)
                .collect();
            if v.is_empty() {
                "-".into()
            } else {
                format!("{:.3}", v.iter().sum::<f64>() / v.len() as f64)
            }
        };
        println!(
            "{:>6.0}-{:<3.0}% {:>14} {:>14}",
            lo * 100.0,
            hi * 100.0,
            mean(&|r: &(f64, f64, f64)| r.0),
            mean(&|r: &(f64, f64, f64)| r.1)
        );
    }
    println!("(paper: the windiest sites run coolest; sunny sites run warmer)");
}

/// Fig. 6: single 25 MW datacenter cost CDF (per-location solves through
/// the engine's cached candidate set).
fn fig6(ctx: &Ctx, n: usize) {
    header(&format!(
        "Fig. 6 — 25 MW single-DC monthly cost CDF ({n} locations, net metering)"
    ));
    let engine = ctx.synthetic_engine(n);
    let t = engine.placement_tool(&siting_search(true));
    let configs: [(&str, PlacementInput); 3] = [
        (
            "brown",
            PlacementInput::default().with_green(0.0, TechMix::BrownOnly),
        ),
        (
            "solar 50%",
            PlacementInput::default().with_green(0.5, TechMix::SolarOnly),
        ),
        (
            "wind 50%",
            PlacementInput::default().with_green(0.5, TechMix::WindOnly),
        ),
    ];
    let mut table: Vec<Vec<f64>> = Vec::new();
    for (_, input) in &configs {
        let mut costs = Vec::new();
        for loc in 0..t.candidates().len() {
            let id = t.candidates()[loc].id;
            if let Ok(sol) = t.solve_single(id, 25.0, input) {
                costs.push(sol.monthly_cost / 1e6);
            }
        }
        costs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        table.push(costs);
    }
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "percentile", "brown $M", "solar50 $M", "wind50 $M"
    );
    for pct in [10, 25, 50, 75, 80, 90] {
        print!("{pct:>11}%");
        for costs in &table {
            let idx =
                ((pct as f64 / 100.0 * costs.len() as f64) as usize).clamp(1, costs.len()) - 1;
            print!(" {:>12.1}", costs[idx]);
        }
        println!();
    }
    println!(
        "feasible locations: brown {} solar {} wind {}",
        table[0].len(),
        table[1].len(),
        table[2].len()
    );
    println!("(paper at 80%: brown 8.7–12.8, wind 9.1–16, solar 10.9–23.3 $M/month)");
}

/// Table II: the anchor locations.
fn tab2() {
    header("Table II — anchor locations");
    let w = WorldCatalog::anchors_only(REPRO_SEED);
    println!(
        "{:<30} {:>9} {:>9} {:>8} {:>10} {:>9} {:>8} {:>8}",
        "location", "solarCF%", "windCF%", "maxPUE", "elec$/MWh", "land$/m2", "dPow km", "dNet km"
    );
    for loc in w.iter() {
        let cf = CapacityFactors::with_default_models(&w.tmy(loc.id));
        println!(
            "{:<30} {:>9.1} {:>9.1} {:>8.2} {:>10.0} {:>9.1} {:>8.0} {:>8.0}",
            loc.name,
            cf.solar * 100.0,
            cf.wind * 100.0,
            cf.max_pue,
            loc.econ.elec_usd_per_kwh * 1000.0,
            loc.econ.land_usd_per_m2,
            loc.econ.dist_power_km,
            loc.econ.dist_network_km
        );
    }
}

/// Fig. 7: the 50 MW / 50% green case study cost breakdown. The green and
/// brown sitings run concurrently through the engine.
fn fig7(ctx: &Ctx, n: usize) {
    header("Fig. 7 — case study: 50 MW, 50% green, net metering");
    let engine = ctx.synthetic_engine(n);
    let input = PlacementInput::default();
    let specs = [
        ctx.siting(input.clone()),
        ctx.siting(input.with_green(0.0, TechMix::BrownOnly)),
    ];
    let mut results = engine.run_all(&specs).into_iter();
    let green = results.next().expect("green report");
    let brown = results.next().expect("brown report");
    match green {
        Ok(report) => {
            print!("{}", report.render_text());
            if let ReportBody::Siting(s) = &report.body {
                println!(
                    "{:<28} {:>9} {:>9} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9}",
                    "site", "buildDC", "IT", "land", "plants", "batt", "lines", "bw", "energy"
                );
                for dc in &s.sites {
                    let b = &dc.breakdown;
                    println!(
                        "{:<28} {:>9.2} {:>9.2} {:>7.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                        dc.name,
                        b.building_dc / 1e6,
                        b.it_equipment / 1e6,
                        b.land / 1e6,
                        b.plants / 1e6,
                        b.batteries / 1e6,
                        b.connections / 1e6,
                        b.bandwidth / 1e6,
                        b.energy / 1e6
                    );
                }
                // The paper's headline: +13% over the best brown network.
                if let Ok(brown) = brown {
                    if let ReportBody::Siting(bs) = &brown.body {
                        println!(
                            "green ${:.2}M vs brown ${:.2}M → {:+.1}% (paper: +13%)",
                            s.monthly_cost_usd / 1e6,
                            bs.monthly_cost_usd / 1e6,
                            (s.monthly_cost_usd / bs.monthly_cost_usd - 1.0) * 100.0
                        );
                    }
                }
            }
        }
        Err(e) => println!("case study failed: {e}"),
    }
}

/// Figs. 8–12: cost and provisioned capacity vs green fraction. All 15
/// sitings of a panel run concurrently on the engine's shared candidates.
fn sweep_fig(ctx: &Ctx, title: &str, storage: StorageMode, n: usize) {
    header(&format!("{title} — 50 MW network sweeps"));
    let engine = ctx.synthetic_engine(n);
    let inputs = sweep_inputs(storage);
    let specs: Vec<ExperimentSpec> = inputs
        .iter()
        .map(|(_, _, input)| ctx.siting(input.clone()))
        .collect();
    let results = engine.run_all(&specs);
    println!(
        "{:>7} {:>12} {:>14} {:>14} {:>10}",
        "green%", "tech", "cost $M/mo", "capacity MW", "sites"
    );
    for ((g, tech, _), result) in inputs.iter().zip(results) {
        match result {
            Ok(report) => {
                if let ReportBody::Siting(s) = &report.body {
                    println!(
                        "{:>6.0}% {:>12} {:>14.2} {:>14.1} {:>10}",
                        g * 100.0,
                        tech_label(*tech),
                        s.monthly_cost_usd / 1e6,
                        s.total_capacity_mw,
                        s.sites.len()
                    );
                }
            }
            Err(e) => println!(
                "{:>6.0}% {:>12} {:>14} {:>14} {:>10}",
                g * 100.0,
                tech_label(*tech),
                format!("{e}"),
                "-",
                "-"
            ),
        }
    }
}

/// Fig. 13: migration overhead sweep at 100% green without storage.
fn fig13(ctx: &Ctx, n: usize) {
    header("Fig. 13 — migration fraction sweep (100% green, no storage)");
    let engine = ctx.synthetic_engine(n);
    let mut cases = Vec::new();
    for &theta in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        for &tech in &[TechMix::WindOnly, TechMix::SolarOnly, TechMix::Both] {
            let input = PlacementInput {
                storage: StorageMode::None,
                migration_fraction: theta,
                ..PlacementInput::default()
            }
            .with_green(1.0, tech);
            cases.push((theta, tech, input));
        }
    }
    let specs: Vec<ExperimentSpec> = cases
        .iter()
        .map(|(_, _, input)| ctx.siting(input.clone()))
        .collect();
    let results = engine.run_all(&specs);
    println!(
        "{:>12} {:>12} {:>14} {:>8}",
        "migration%", "tech", "cost $M/mo", "sites"
    );
    for ((theta, tech, _), result) in cases.iter().zip(results) {
        match result {
            Ok(report) => {
                if let ReportBody::Siting(s) = &report.body {
                    println!(
                        "{:>11.0}% {:>12} {:>14.2} {:>8}",
                        theta * 100.0,
                        tech_label(*tech),
                        s.monthly_cost_usd / 1e6,
                        s.sites.len()
                    );
                }
            }
            Err(e) => println!(
                "{:>11.0}% {:>12} {:>14} {:>8}",
                theta * 100.0,
                tech_label(*tech),
                format!("{e}"),
                "-"
            ),
        }
    }
}

/// Table III: the 100% green / no-storage network.
fn tab3(ctx: &Ctx, n: usize) {
    header("Table III — 100% green without storage");
    let engine = ctx.synthetic_engine(n);
    let input = PlacementInput {
        storage: StorageMode::None,
        ..PlacementInput::default()
    }
    .with_green(1.0, TechMix::Both);
    match engine.run(&ctx.siting(input)) {
        Ok(report) => {
            print!("{}", report.render_text());
            println!("(paper: 3 sites × 50 MW IT, ~1.1 GW of solar total)");
        }
        Err(e) => println!("failed: {e}"),
    }
}

/// Fig. 15: the follow-the-renewables day, with the hourly trace.
fn fig15(ctx: &Ctx) {
    header("Fig. 15 — follow-the-renewables day (Table III network)");
    let engine = ctx.anchors_engine();
    let cfg = EmulationConfig {
        vm_count: if ctx.fast { 100 } else { 200 },
        ..EmulationConfig::default()
    };
    let names: Vec<String> = cfg.sites.iter().map(|s| s.location_name.clone()).collect();
    let spec = ExperimentSpec::Annual(AnnualSpec {
        config: cfg,
        include_trace: true,
    });
    match engine.run(&spec) {
        Ok(report) => {
            if let ReportBody::Annual(a) = &report.body {
                println!(
                    "{:>5} {:<26} {:>9} {:>9} {:>9} {:>9} {:>9}",
                    "hour", "site", "green MW", "load MW", "pueOv MW", "mig MW", "brown MW"
                );
                for row in &a.trace {
                    println!(
                        "{:>5} {:<26} {:>9.1} {:>9.1} {:>9.2} {:>9.2} {:>9.2}",
                        row.hour,
                        names[row.dc],
                        row.green_available_mw,
                        row.load_mw,
                        row.pue_overhead_mw,
                        row.migration_mw,
                        row.brown_mw
                    );
                }
                println!(
                    "day summary: green fraction {:.1}%, {} migrations, {:.1} GB shipped, mean migration {:.2} h, {} blocks re-replicated",
                    a.green_fraction * 100.0,
                    a.migrations,
                    a.migrated_gb,
                    a.mean_migration_hours,
                    a.rereplicated_blocks
                );
            }
        }
        Err(e) => println!("emulation failed: {e}"),
    }
}

/// Beyond the paper: a 365-day storage-aware operational simulation, a
/// parallel scenario sweep, and the warm-vs-cold re-solve ratio — three
/// specs against one engine.
fn annual(ctx: &Ctx) {
    header("Annual — year-long follow-the-renewables with storage");
    let engine = ctx.anchors_engine();

    let year = EmulationConfig {
        vm_count: if ctx.fast { 60 } else { 200 },
        hours: 8760,
        start_hour: 0,
        net_meter_credit: Some(1.0),
        ..EmulationConfig::default()
    }
    .with_batteries(50_000.0);
    match engine.run(&ExperimentSpec::Annual(AnnualSpec {
        config: year,
        include_trace: false,
    })) {
        Ok(report) => print!("{}", report.render_text()),
        Err(e) => println!("annual emulation failed: {e}"),
    }

    // Scenario sweep: season × storage × net metering × forecast quality ×
    // WAN, one change at a time around a summer baseline.
    let base = EmulationConfig {
        vm_count: 60,
        hours: if ctx.fast { 7 * 24 } else { 28 * 24 },
        start_hour: 170 * 24,
        ..EmulationConfig::default()
    };
    let sweep = ExperimentSpec::Sweep(SweepSpec {
        base,
        axes: SweepAxes {
            start_hour: vec![352 * 24],
            battery_kwh: vec![50_000.0],
            net_meter_credit: vec![Some(1.0)],
            forecast_sigma: vec![0.3],
            wan_mbps: vec![100.0],
        },
        mode: SweepMode::OneAtATime,
        seed: REPRO_SEED,
    });
    match engine.run(&sweep) {
        Ok(report) => print!("{}", report.render_text()),
        Err(e) => println!("scenario sweep failed: {e}"),
    }

    // Warm-vs-cold hourly re-solve ratio (the Criterion bench tracks the
    // same quantity; this is the repro-visible number).
    let timing = ExperimentSpec::Timing(TimingSpec {
        fast: ctx.fast,
        schedule_timing: false,
        lp_records: false,
        warm_cold_rounds: if ctx.fast { 48 } else { 96 },
    });
    match engine.run(&timing) {
        Ok(report) => print!("{}", report.render_text()),
        Err(e) => println!("warm-vs-cold measurement failed: {e}"),
    }
}

/// CI smoke: a short storage-aware emulation, a tiny siting solve, and the
/// `BENCH_lp.json` round-trip — all through the engine. Prints what it ran
/// and returns `false` on any failure.
fn quick(ctx: &Ctx) -> bool {
    header("quick — CI smoke (operational + siting)");
    let mut ok = true;
    let anchors = ctx.anchors_engine();
    let cfg = EmulationConfig {
        vm_count: 24,
        hours: 24,
        net_meter_credit: Some(1.0),
        scheduler: SchedulerConfig {
            window_hours: 12,
            ..SchedulerConfig::default()
        },
        ..EmulationConfig::default()
    }
    .with_batteries(10_000.0);
    // The emulation and the reduced LP bench suite run concurrently.
    let specs = [
        ExperimentSpec::Annual(AnnualSpec {
            config: cfg,
            include_trace: false,
        }),
        ExperimentSpec::Timing(TimingSpec {
            fast: true,
            schedule_timing: false,
            lp_records: true,
            warm_cold_rounds: 0,
        }),
    ];
    let mut results = anchors.run_all(&specs).into_iter();
    match results.next().expect("annual result") {
        Ok(report) => {
            if let ReportBody::Annual(a) = &report.body {
                let load_ok = a.trace_rows == 24 * 3 && a.green_fraction > 0.5;
                println!(
                    "emulation: green {:.1}%, {} migrations, warm rate {:.0}% → {}",
                    a.green_fraction * 100.0,
                    a.migrations,
                    a.solver.warm_rate * 100.0,
                    if load_ok { "ok" } else { "SUSPICIOUS" }
                );
                ok &= load_ok;
            }
        }
        Err(e) => {
            println!("emulation FAILED: {e}");
            ok = false;
        }
    }
    // The machine-readable bench artifact must round-trip: emit a reduced
    // run of the LP suite and re-parse what lands on disk.
    match results.next().expect("timing result") {
        Ok(report) => ok &= write_bench_lp_json(&bench_records(&report)),
        Err(e) => {
            println!("LP bench suite FAILED: {e}");
            ok = false;
        }
    }
    let sites = ctx.synthetic_engine(40);
    match sites.run(&ctx.siting(PlacementInput::default())) {
        Ok(report) => {
            if let ReportBody::Siting(s) = &report.body {
                println!(
                    "siting: {} sites, ${:.2}M/month → ok",
                    s.sites.len(),
                    s.monthly_cost_usd / 1e6
                );
            }
        }
        Err(e) => {
            println!("siting FAILED: {e}");
            ok = false;
        }
    }
    ok
}

/// §V-C: schedule computation times, plus the LP-substrate benchmark suite
/// (written to `BENCH_lp.json` for cross-PR tracking).
fn timing(ctx: &Ctx) {
    header("§V-C — schedule computation time");
    let engine = ctx.anchors_engine();
    let spec = ExperimentSpec::Timing(TimingSpec {
        fast: ctx.fast,
        schedule_timing: true,
        lp_records: true,
        warm_cold_rounds: 0,
    });
    match engine.run(&spec) {
        Ok(report) => {
            print!("{}", report.render_text());
            write_bench_lp_json(&bench_records(&report));
        }
        Err(e) => println!("timing failed: {e}"),
    }
}
