//! `loadgen` — load generator and chaos client for `repro serve`.
//!
//! Drives sustained concurrent `greencloud-spec/1` traffic at the service
//! and, with `--chaos`, mixes in adversarial clients: malformed JSON,
//! oversized bodies, mid-request disconnects, post-request disconnects
//! (cancelling in-flight solves), and tiny-deadline storms. Reports
//! throughput, p50/p99 latency, shed rate, and cache hit rate, and exits
//! nonzero when any response falls outside the allowed status set or an
//! `--expect-shed` / `--min-ok` assertion fails — the measurable proof
//! that overload produces 429s and cancellations, never panics or
//! unbounded queueing.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7411 --spec examples/quick.spec.json \
//!         --requests 2000 --concurrency 24 --chaos [--unique] \
//!         [--no-cache] [--deadline-ms N] [--expect-shed] [--min-ok N]
//! ```
//!
//! `--unique` perturbs `experiment.config.start_hour` per request so every
//! spec is genuinely distinct (defeats the report cache and forces real
//! solver load); without it, identical specs exercise the cache path.

use greencloud_api::json::Json;
use greencloud_api::wallclock::Stopwatch;

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// What one request attempt produced.
#[derive(Debug, Clone)]
struct Sample {
    /// Which client behavior issued it (see `KIND_*`).
    kind: &'static str,
    /// HTTP status, or 0 when no response was expected/read (disconnect
    /// chaos), or 599 on a transport error.
    status: u16,
    /// Wall latency in milliseconds.
    ms: f64,
    /// True when the response carried `X-Cache: hit`.
    cache_hit: bool,
}

const KIND_NORMAL: &str = "normal";
const KIND_MALFORMED: &str = "malformed";
const KIND_OVERSIZED: &str = "oversized";
const KIND_MIDCUT: &str = "mid-disconnect";
const KIND_POSTCUT: &str = "post-disconnect";
const KIND_STORM: &str = "deadline-storm";

struct Config {
    addr: String,
    spec_paths: Vec<String>,
    requests: usize,
    concurrency: usize,
    chaos: bool,
    unique: bool,
    no_cache: bool,
    deadline_ms: u64,
    expect_shed: bool,
    min_ok: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: "127.0.0.1:7411".to_string(),
            spec_paths: Vec::new(),
            requests: 200,
            concurrency: 8,
            chaos: false,
            unique: false,
            no_cache: false,
            deadline_ms: 0,
            expect_shed: false,
            min_ok: 0,
        }
    }
}

fn parse_args() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Config::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                cfg.addr = args.get(i).cloned().unwrap_or(cfg.addr);
            }
            "--spec" => {
                i += 1;
                if let Some(p) = args.get(i) {
                    cfg.spec_paths.push(p.clone());
                }
            }
            "--requests" => {
                i += 1;
                cfg.requests = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(cfg.requests);
            }
            "--concurrency" => {
                i += 1;
                cfg.concurrency = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(cfg.concurrency);
            }
            "--deadline-ms" => {
                i += 1;
                cfg.deadline_ms = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(0);
            }
            "--min-ok" => {
                i += 1;
                cfg.min_ok = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(0);
            }
            "--chaos" => cfg.chaos = true,
            "--unique" => cfg.unique = true,
            "--no-cache" => cfg.no_cache = true,
            "--expect-shed" => cfg.expect_shed = true,
            other => eprintln!("loadgen: ignoring unknown flag {other}"),
        }
        i += 1;
    }
    if cfg.spec_paths.is_empty() {
        cfg.spec_paths.push("examples/quick.spec.json".to_string());
    }
    cfg.requests = cfg.requests.max(1);
    cfg.concurrency = cfg.concurrency.max(1);
    cfg
}

/// Sets `experiment.config.start_hour` in a parsed spec document so each
/// request describes a genuinely different experiment.
fn perturb_start_hour(doc: &mut Json, hour: u64) -> bool {
    let Json::Object(fields) = doc else {
        return false;
    };
    let Some(experiment) = fields
        .iter_mut()
        .find(|(k, _)| k == "experiment")
        .map(|(_, v)| v)
    else {
        return false;
    };
    let Json::Object(exp_fields) = experiment else {
        return false;
    };
    let Some(config) = exp_fields
        .iter_mut()
        .find(|(k, _)| k == "config")
        .map(|(_, v)| v)
    else {
        return false;
    };
    let Json::Object(cfg_fields) = config else {
        return false;
    };
    match cfg_fields.iter_mut().find(|(k, _)| k == "start_hour") {
        Some((_, v)) => *v = Json::Number(hour as f64),
        None => cfg_fields.push(("start_hour".to_string(), Json::Number(hour as f64))),
    }
    true
}

/// A parsed HTTP response: status, headers (lowercased names), body.
struct Response {
    status: u16,
    cache_hit: bool,
}

/// Sends one request over a fresh connection and reads the response.
/// `cut_after` truncates the write mid-body and hangs up (mid-request
/// disconnect chaos); `drop_after_send` hangs up right after writing
/// without reading the response (cancels the in-flight solve).
fn send_request(
    addr: &str,
    body: &[u8],
    headers: &[(&str, String)],
    cut_after: Option<usize>,
    drop_after_send: bool,
) -> Result<Option<Response>, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(150)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut head = format!(
        "POST /v1/experiments HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .map_err(|e| format!("write head: {e}"))?;
    if let Some(cut) = cut_after {
        let cut = cut.min(body.len());
        let _ = stream.write_all(&body[..cut]);
        let _ = stream.flush();
        // Hang up mid-body: the server's read budget must reclaim this.
        return Ok(None);
    }
    stream
        .write_all(body)
        .map_err(|e| format!("write body: {e}"))?;
    stream.flush().map_err(|e| format!("flush: {e}"))?;
    if drop_after_send {
        // Hang up without reading: the server should detect the vanished
        // client and cancel the solve.
        return Ok(None);
    }
    let mut raw = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) => {
                if raw.is_empty() {
                    return Err(format!("read: {e}"));
                }
                break;
            }
        }
    }
    let text = String::from_utf8_lossy(&raw);
    let mut lines = text.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let mut status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    // Skip interim 100 Continue responses.
    if status == 100 {
        let after = text.split("\r\n\r\n").nth(1).unwrap_or("");
        status = after
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| format!("no final status after 100 in {after:?}"))?;
    }
    let cache_hit = text
        .lines()
        .any(|l| l.to_ascii_lowercase().starts_with("x-cache:") && l.contains("hit"));
    Ok(Some(Response { status, cache_hit }))
}

/// One worker request: picks a behavior for request `i` and executes it.
fn run_one(cfg: &Config, specs: &[String], i: usize) -> Sample {
    let chaos_slot = if cfg.chaos { i % 10 } else { 10 };
    let spec_text = &specs[i % specs.len()];
    let sw = Stopwatch::start();
    let (kind, outcome) = match chaos_slot {
        // 10% malformed JSON → 400.
        7 => (
            KIND_MALFORMED,
            send_request(
                &cfg.addr,
                b"{\"schema\": \"greencloud-spec/1\", ",
                &[],
                None,
                false,
            ),
        ),
        // 10% oversized body → 413 (2 MiB of padding).
        8 => {
            let huge = vec![b' '; 2 * 1024 * 1024];
            (
                KIND_OVERSIZED,
                send_request(&cfg.addr, &huge, &[], None, false),
            )
        }
        // 5% mid-request disconnect → no response, server must recover.
        9 if (i / 10).is_multiple_of(2) => (
            KIND_MIDCUT,
            send_request(
                &cfg.addr,
                spec_text.as_bytes(),
                &[],
                Some(spec_text.len() / 2),
                false,
            ),
        ),
        // 5% post-request disconnect → in-flight solve is cancelled.
        9 => (
            KIND_POSTCUT,
            send_request(&cfg.addr, spec_text.as_bytes(), &[], None, true),
        ),
        // 10% deadline storm: a 1 ms deadline → 408 (or a 200 when the
        // report was already cached / solved inside the window).
        6 => (
            KIND_STORM,
            send_request(
                &cfg.addr,
                spec_text.as_bytes(),
                &[("X-Deadline-Ms", "1".to_string())],
                None,
                false,
            ),
        ),
        // The rest: honest traffic.
        _ => {
            let mut headers: Vec<(&str, String)> = Vec::new();
            if cfg.no_cache {
                headers.push(("Cache-Control", "no-cache".to_string()));
            }
            if cfg.deadline_ms > 0 {
                headers.push(("X-Deadline-Ms", cfg.deadline_ms.to_string()));
            }
            (
                KIND_NORMAL,
                send_request(&cfg.addr, spec_text.as_bytes(), &headers, None, false),
            )
        }
    };
    let ms = sw.elapsed_ms();
    match outcome {
        Ok(Some(r)) => Sample {
            kind,
            status: r.status,
            ms,
            cache_hit: r.cache_hit,
        },
        Ok(None) => Sample {
            kind,
            status: 0,
            ms,
            cache_hit: false,
        },
        Err(_) => Sample {
            kind,
            status: 599,
            ms,
            cache_hit: false,
        },
    }
}

/// Statuses each client kind may legitimately receive. Anything else is a
/// violation (a panic, a hang surfacing as 599, an unmapped error).
fn allowed(kind: &str, status: u16) -> bool {
    match kind {
        // 429/503 are load shedding; 408 a deadline met under load.
        KIND_NORMAL => matches!(status, 200 | 408 | 429 | 503),
        KIND_MALFORMED => matches!(status, 400 | 429 | 503),
        KIND_OVERSIZED => matches!(status, 413 | 429 | 503),
        // No response expected; transport errors are fine too (the server
        // may reset the socket mid-write).
        KIND_MIDCUT | KIND_POSTCUT => matches!(status, 0 | 599),
        KIND_STORM => matches!(status, 200 | 408 | 429 | 503),
        _ => false,
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0 * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len()) - 1;
    sorted_ms.get(idx).copied().unwrap_or(0.0)
}

fn main() {
    let cfg = parse_args();
    // Load and pre-render every spec body once; with --unique, each
    // request index gets its own start_hour so no two specs match.
    let mut base_docs: Vec<Json> = Vec::new();
    for path in &cfg.spec_paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("loadgen: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        match Json::parse(&text) {
            Ok(doc) => base_docs.push(doc),
            Err(e) => {
                eprintln!("loadgen: {path} is not JSON: {e}");
                std::process::exit(2);
            }
        }
    }
    let specs: Vec<String> = if cfg.unique {
        (0..cfg.requests)
            .map(|i| {
                let mut doc = base_docs[i % base_docs.len()].clone();
                if !perturb_start_hour(&mut doc, (i as u64) * 24 % 8000) {
                    eprintln!("loadgen: warning: spec has no experiment.config to perturb");
                }
                doc.render()
            })
            .collect()
    } else {
        base_docs.iter().map(Json::render).collect()
    };

    let cfg = Arc::new(cfg);
    let specs = Arc::new(specs);
    let next = Arc::new(AtomicUsize::new(0));
    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
    let wall = Stopwatch::start();
    let mut workers = Vec::new();
    for _ in 0..cfg.concurrency {
        let cfg = Arc::clone(&cfg);
        let specs = Arc::clone(&specs);
        let next = Arc::clone(&next);
        let samples = Arc::clone(&samples);
        workers.push(thread::spawn(move || loop {
            let i = next.fetch_add(1, Ordering::SeqCst);
            if i >= cfg.requests {
                return;
            }
            let s = run_one(&cfg, &specs, i);
            if let Ok(mut guard) = samples.lock() {
                guard.push(s);
            }
        }));
    }
    for w in workers {
        let _ = w.join();
    }
    let wall_s = wall.elapsed_ms() / 1e3;

    let samples = samples.lock().map(|g| g.clone()).unwrap_or_default();
    let total = samples.len();
    let ok: Vec<&Sample> = samples.iter().filter(|s| s.status == 200).collect();
    let shed = samples.iter().filter(|s| s.status == 429).count();
    let deadline = samples.iter().filter(|s| s.status == 408).count();
    let hits = ok.iter().filter(|s| s.cache_hit).count();
    let mut ok_ms: Vec<f64> = ok.iter().map(|s| s.ms).collect();
    ok_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let violations: Vec<&Sample> = samples
        .iter()
        .filter(|s| !allowed(s.kind, s.status))
        .collect();

    println!("==== loadgen report ====");
    println!("requests        {total}");
    println!("wall time       {wall_s:.2} s");
    println!(
        "throughput      {:.1} req/s",
        total as f64 / wall_s.max(1e-9)
    );
    println!(
        "ok (200)        {} ({hits} cache hits, {:.1}% hit rate)",
        ok.len(),
        if ok.is_empty() {
            0.0
        } else {
            100.0 * hits as f64 / ok.len() as f64
        }
    );
    println!(
        "shed (429)      {shed} ({:.1}% shed rate)",
        100.0 * shed as f64 / total.max(1) as f64
    );
    println!("deadline (408)  {deadline}");
    println!(
        "p50 latency     {:.1} ms (over 200s)",
        percentile(&ok_ms, 50.0)
    );
    println!(
        "p99 latency     {:.1} ms (over 200s)",
        percentile(&ok_ms, 99.0)
    );
    for kind in [
        KIND_NORMAL,
        KIND_STORM,
        KIND_MALFORMED,
        KIND_OVERSIZED,
        KIND_MIDCUT,
        KIND_POSTCUT,
    ] {
        let n = samples.iter().filter(|s| s.kind == kind).count();
        if n > 0 {
            println!("  {kind:<16} {n}");
        }
    }

    let mut failed = false;
    if !violations.is_empty() {
        failed = true;
        println!(
            "VIOLATIONS: {} responses outside the allowed set",
            violations.len()
        );
        for v in violations.iter().take(10) {
            println!("  {} got {}", v.kind, v.status);
        }
    }
    if cfg.expect_shed && shed == 0 {
        failed = true;
        println!("ASSERTION FAILED: --expect-shed but no request was shed (429)");
    }
    if ok.len() < cfg.min_ok {
        failed = true;
        println!(
            "ASSERTION FAILED: --min-ok {} but only {} requests got 200",
            cfg.min_ok,
            ok.len()
        );
    }
    if failed {
        std::process::exit(1);
    }
    println!("loadgen: all {total} requests resolved within the allowed status set");
}
