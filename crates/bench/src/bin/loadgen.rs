//! `loadgen` — load generator and chaos client for `repro serve`.
//!
//! Drives sustained concurrent `greencloud-spec/1` traffic at the service
//! and, with `--chaos`, mixes in adversarial clients: malformed JSON,
//! oversized bodies, mid-request disconnects, post-request disconnects
//! (cancelling in-flight solves), and tiny-deadline storms. Reports
//! throughput, p50/p99 latency, shed rate, and cache hit rate, and exits
//! nonzero when any response falls outside the allowed status set or an
//! `--expect-shed` / `--min-ok` assertion fails — the measurable proof
//! that overload produces 429s and cancellations, never panics or
//! unbounded queueing.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7411 --spec examples/quick.spec.json \
//!         --requests 2000 --concurrency 24 --chaos [--unique] \
//!         [--no-cache] [--deadline-ms N] [--expect-shed] [--min-ok N] \
//!         [--rate N] [--histogram] [--min-hit-rate P] \
//!         [--backends a:p,b:p,...] \
//!         [--jobs --jobs-dir DIR [--allow-transport]] \
//!         [--verify-jobs DIR]
//! ```
//!
//! `--backends a,b,c` names the `repro serve` fleet behind a router at
//! `--addr`. After the burst, loadgen fetches each backend's `/v1/stats`
//! for a per-backend cache view and asserts *hit-rate parity*: on a
//! duplicate-spec burst, a single backend would miss each distinct spec
//! once, so a correctly sharding router (same spec → same backend) must
//! land within 5 points of that ideal — a round-robin front-end would
//! miss once per backend instead and fail the assertion. Concurrent
//! duplicate misses race the first cache fill, so the ideal allows
//! `concurrency` extra misses. `--min-hit-rate P` independently asserts
//! the observed client-side hit rate is at least `P` percent.
//!
//! `--unique` perturbs `experiment.config.start_hour` per request so every
//! spec is genuinely distinct (defeats the report cache and forces real
//! solver load); without it, identical specs exercise the cache path.
//!
//! `--rate N` switches from the closed-loop worker pool to an *open-loop*
//! arrival process: one dispatcher thread launches requests at fixed
//! `1/N`-second intervals regardless of completions (each request gets its
//! own thread), which is what exposes queueing collapse — a closed loop
//! self-throttles exactly when the server is drowning. Open-loop runs
//! print a log₂ latency histogram (also available via `--histogram`).
//!
//! `--jobs` submits the normal-traffic slots to the durable job API
//! (`POST /v1/jobs`, expecting 202) and, with `--jobs-dir`, records each
//! acknowledged job's spec as `DIR/<job_id>.spec.json`. A later
//! `loadgen --verify-jobs DIR` run — typically after killing and
//! restarting the server — polls every recorded job to a terminal state
//! and, for completed ones, asserts the stored report is byte-identical
//! (after clock-field normalization) to a fresh synchronous solve of the
//! same spec. `--allow-transport` additionally tolerates transport errors
//! (statuses 0/599), for bursts deliberately cut down by `kill -9`.

use greencloud_api::json::Json;
use greencloud_api::wallclock::Stopwatch;

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// What one request attempt produced.
#[derive(Debug, Clone)]
struct Sample {
    /// Which client behavior issued it (see `KIND_*`).
    kind: &'static str,
    /// HTTP status, or 0 when no response was expected/read (disconnect
    /// chaos), or 599 on a transport error.
    status: u16,
    /// Wall latency in milliseconds.
    ms: f64,
    /// True when the response carried `X-Cache: hit`.
    cache_hit: bool,
}

const KIND_NORMAL: &str = "normal";
const KIND_JOB: &str = "job-submit";
const KIND_MALFORMED: &str = "malformed";
const KIND_OVERSIZED: &str = "oversized";
const KIND_MIDCUT: &str = "mid-disconnect";
const KIND_POSTCUT: &str = "post-disconnect";
const KIND_STORM: &str = "deadline-storm";

struct Config {
    addr: String,
    spec_paths: Vec<String>,
    requests: usize,
    concurrency: usize,
    chaos: bool,
    unique: bool,
    no_cache: bool,
    deadline_ms: u64,
    expect_shed: bool,
    min_ok: usize,
    /// Open-loop arrival rate in req/s (0 = closed-loop worker pool).
    rate: f64,
    /// Print the latency histogram even for closed-loop runs.
    histogram: bool,
    /// Submit normal traffic to `POST /v1/jobs` instead of the
    /// synchronous experiments endpoint.
    jobs: bool,
    /// Where `--jobs` records acknowledged specs for later verification.
    jobs_dir: Option<String>,
    /// Verify a directory of recorded jobs instead of generating load.
    verify_jobs: Option<String>,
    /// Tolerate transport errors (0/599) — for kill -9 bursts.
    allow_transport: bool,
    /// Per-job budget for `--verify-jobs` polling, seconds.
    verify_timeout_s: u64,
    /// Backend addresses behind a router at `--addr`: enables the
    /// per-backend stats report and the hit-rate parity assertion.
    backends: Vec<String>,
    /// Minimum acceptable cache hit rate in percent (negative = off).
    min_hit_rate: f64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            addr: "127.0.0.1:7411".to_string(),
            spec_paths: Vec::new(),
            requests: 200,
            concurrency: 8,
            chaos: false,
            unique: false,
            no_cache: false,
            deadline_ms: 0,
            expect_shed: false,
            min_ok: 0,
            rate: 0.0,
            histogram: false,
            jobs: false,
            jobs_dir: None,
            verify_jobs: None,
            allow_transport: false,
            verify_timeout_s: 180,
            backends: Vec::new(),
            min_hit_rate: -1.0,
        }
    }
}

fn parse_args() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Config::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                cfg.addr = args.get(i).cloned().unwrap_or(cfg.addr);
            }
            "--spec" => {
                i += 1;
                if let Some(p) = args.get(i) {
                    cfg.spec_paths.push(p.clone());
                }
            }
            "--requests" => {
                i += 1;
                cfg.requests = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(cfg.requests);
            }
            "--concurrency" => {
                i += 1;
                cfg.concurrency = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(cfg.concurrency);
            }
            "--deadline-ms" => {
                i += 1;
                cfg.deadline_ms = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(0);
            }
            "--min-ok" => {
                i += 1;
                cfg.min_ok = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(0);
            }
            "--rate" => {
                i += 1;
                cfg.rate = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(0.0);
            }
            "--jobs-dir" => {
                i += 1;
                cfg.jobs_dir = args.get(i).cloned();
            }
            "--verify-jobs" => {
                i += 1;
                cfg.verify_jobs = args.get(i).cloned();
            }
            "--verify-timeout-s" => {
                i += 1;
                cfg.verify_timeout_s = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(cfg.verify_timeout_s);
            }
            "--backends" => {
                i += 1;
                cfg.backends = args
                    .get(i)
                    .map(|s| {
                        s.split(',')
                            .map(str::trim)
                            .filter(|b| !b.is_empty())
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default();
            }
            "--min-hit-rate" => {
                i += 1;
                cfg.min_hit_rate = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(-1.0);
            }
            "--chaos" => cfg.chaos = true,
            "--unique" => cfg.unique = true,
            "--no-cache" => cfg.no_cache = true,
            "--expect-shed" => cfg.expect_shed = true,
            "--histogram" => cfg.histogram = true,
            "--jobs" => cfg.jobs = true,
            "--allow-transport" => cfg.allow_transport = true,
            other => eprintln!("loadgen: ignoring unknown flag {other}"),
        }
        i += 1;
    }
    if cfg.spec_paths.is_empty() {
        cfg.spec_paths.push("examples/quick.spec.json".to_string());
    }
    cfg.requests = cfg.requests.max(1);
    cfg.concurrency = cfg.concurrency.max(1);
    cfg
}

/// Sets `experiment.config.start_hour` in a parsed spec document so each
/// request describes a genuinely different experiment.
fn perturb_start_hour(doc: &mut Json, hour: u64) -> bool {
    let Json::Object(fields) = doc else {
        return false;
    };
    let Some(experiment) = fields
        .iter_mut()
        .find(|(k, _)| k == "experiment")
        .map(|(_, v)| v)
    else {
        return false;
    };
    let Json::Object(exp_fields) = experiment else {
        return false;
    };
    let Some(config) = exp_fields
        .iter_mut()
        .find(|(k, _)| k == "config")
        .map(|(_, v)| v)
    else {
        return false;
    };
    let Json::Object(cfg_fields) = config else {
        return false;
    };
    match cfg_fields.iter_mut().find(|(k, _)| k == "start_hour") {
        Some((_, v)) => *v = Json::Number(hour as f64),
        None => cfg_fields.push(("start_hour".to_string(), Json::Number(hour as f64))),
    }
    true
}

/// A parsed HTTP response: status, cache marker, body text.
struct Response {
    status: u16,
    cache_hit: bool,
    body: String,
}

/// Sends one request over a fresh connection and reads the response.
/// `cut_after` truncates the write mid-body and hangs up (mid-request
/// disconnect chaos); `drop_after_send` hangs up right after writing
/// without reading the response (cancels the in-flight solve).
fn send_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    headers: &[(&str, String)],
    cut_after: Option<usize>,
    drop_after_send: bool,
) -> Result<Option<Response>, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(150)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .map_err(|e| format!("write head: {e}"))?;
    if let Some(cut) = cut_after {
        let cut = cut.min(body.len());
        let _ = stream.write_all(&body[..cut]);
        let _ = stream.flush();
        // Hang up mid-body: the server's read budget must reclaim this.
        return Ok(None);
    }
    stream
        .write_all(body)
        .map_err(|e| format!("write body: {e}"))?;
    stream.flush().map_err(|e| format!("flush: {e}"))?;
    if drop_after_send {
        // Hang up without reading: the server should detect the vanished
        // client and cancel the solve.
        return Ok(None);
    }
    let mut raw = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) => {
                if raw.is_empty() {
                    return Err(format!("read: {e}"));
                }
                break;
            }
        }
    }
    let text = String::from_utf8_lossy(&raw).to_string();
    // Skip interim 100 Continue responses before parsing the real one.
    let resp = match text.strip_prefix("HTTP/1.1 100") {
        Some(_) => text
            .split_once("\r\n\r\n")
            .map(|(_, rest)| rest.to_string())
            .unwrap_or_default(),
        None => text,
    };
    let status_line = resp.split("\r\n").next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let (head_text, body_text) = resp
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or((resp, String::new()));
    let cache_hit = head_text
        .lines()
        .any(|l| l.to_ascii_lowercase().starts_with("x-cache:") && l.contains("hit"));
    Ok(Some(Response {
        status,
        cache_hit,
        body: body_text,
    }))
}

/// One worker request: picks a behavior for request `i` and executes it.
fn run_one(cfg: &Config, specs: &[String], i: usize) -> Sample {
    let chaos_slot = if cfg.chaos { i % 10 } else { 10 };
    let spec_text = &specs[i % specs.len()];
    let sw = Stopwatch::start();
    let (kind, outcome) = match chaos_slot {
        // 10% malformed JSON → 400.
        7 => (
            KIND_MALFORMED,
            send_request(
                &cfg.addr,
                "POST",
                "/v1/experiments",
                b"{\"schema\": \"greencloud-spec/1\", ",
                &[],
                None,
                false,
            ),
        ),
        // 10% oversized body → 413 (2 MiB of padding).
        8 => {
            let huge = vec![b' '; 2 * 1024 * 1024];
            (
                KIND_OVERSIZED,
                send_request(
                    &cfg.addr,
                    "POST",
                    "/v1/experiments",
                    &huge,
                    &[],
                    None,
                    false,
                ),
            )
        }
        // 5% mid-request disconnect → no response, server must recover.
        9 if (i / 10).is_multiple_of(2) => (
            KIND_MIDCUT,
            send_request(
                &cfg.addr,
                "POST",
                "/v1/experiments",
                spec_text.as_bytes(),
                &[],
                Some(spec_text.len() / 2),
                false,
            ),
        ),
        // 5% post-request disconnect → in-flight solve is cancelled.
        9 => (
            KIND_POSTCUT,
            send_request(
                &cfg.addr,
                "POST",
                "/v1/experiments",
                spec_text.as_bytes(),
                &[],
                None,
                true,
            ),
        ),
        // 10% deadline storm: a 1 ms deadline → 408 (or a 200 when the
        // report was already cached / solved inside the window).
        6 => (
            KIND_STORM,
            send_request(
                &cfg.addr,
                "POST",
                "/v1/experiments",
                spec_text.as_bytes(),
                &[("X-Deadline-Ms", "1".to_string())],
                None,
                false,
            ),
        ),
        // The rest: honest traffic — synchronous solves, or durable job
        // submissions under --jobs.
        _ => {
            let mut headers: Vec<(&str, String)> = Vec::new();
            if cfg.no_cache {
                headers.push(("Cache-Control", "no-cache".to_string()));
            }
            if cfg.deadline_ms > 0 {
                headers.push(("X-Deadline-Ms", cfg.deadline_ms.to_string()));
            }
            if cfg.jobs {
                let out = send_request(
                    &cfg.addr,
                    "POST",
                    "/v1/jobs",
                    spec_text.as_bytes(),
                    &headers,
                    None,
                    false,
                );
                if let (Some(dir), Ok(Some(r))) = (&cfg.jobs_dir, &out) {
                    if r.status == 202 {
                        record_job(dir, &r.body, spec_text);
                    }
                }
                (KIND_JOB, out)
            } else {
                (
                    KIND_NORMAL,
                    send_request(
                        &cfg.addr,
                        "POST",
                        "/v1/experiments",
                        spec_text.as_bytes(),
                        &headers,
                        None,
                        false,
                    ),
                )
            }
        }
    };
    let ms = sw.elapsed_ms();
    match outcome {
        Ok(Some(r)) => Sample {
            kind,
            status: r.status,
            ms,
            cache_hit: r.cache_hit,
        },
        Ok(None) => Sample {
            kind,
            status: 0,
            ms,
            cache_hit: false,
        },
        Err(_) => Sample {
            kind,
            status: 599,
            ms,
            cache_hit: false,
        },
    }
}

/// One backend's `(received, cache_hits)` counters from `/v1/stats`, or
/// `None` when the backend is unreachable (e.g. killed mid-burst).
fn backend_cache_counters(addr: &str) -> Option<(u64, u64)> {
    let resp = send_request(addr, "GET", "/v1/stats", b"", &[], None, false).ok()??;
    if resp.status != 200 {
        return None;
    }
    let doc = Json::parse(&resp.body).ok()?;
    let received = doc.get("received").and_then(Json::as_u64)?;
    let hits = doc.get("cache_hits").and_then(Json::as_u64)?;
    Some((received, hits))
}

/// Writes an acknowledged job's spec to `DIR/<job_id>.spec.json` so a
/// later `--verify-jobs` run can check it survived.
fn record_job(dir: &str, ack_body: &str, spec_text: &str) {
    let Some(id) = Json::parse(ack_body)
        .ok()
        .and_then(|doc| doc.get("job_id").and_then(Json::as_str).map(str::to_string))
    else {
        eprintln!("loadgen: 202 ack without a job_id: {ack_body}");
        return;
    };
    let path = format!("{dir}/{id}.spec.json");
    if let Err(e) = std::fs::write(&path, spec_text) {
        eprintln!("loadgen: cannot record {path}: {e}");
    }
}

/// Statuses each client kind may legitimately receive. Anything else is a
/// violation (a panic, a hang surfacing as 599, an unmapped error).
/// `allow_transport` extends every set with 0/599 — a `kill -9` mid-burst
/// legitimately cuts connections down.
fn allowed(kind: &str, status: u16, allow_transport: bool) -> bool {
    if allow_transport && matches!(status, 0 | 599) {
        return true;
    }
    match kind {
        // 429/503 are load shedding; 408 a deadline met under load.
        KIND_NORMAL => matches!(status, 200 | 408 | 429 | 503),
        // Job submissions are acknowledged (202) or shed, never solved
        // inline.
        KIND_JOB => matches!(status, 202 | 429 | 503),
        KIND_MALFORMED => matches!(status, 400 | 429 | 503),
        KIND_OVERSIZED => matches!(status, 413 | 429 | 503),
        // No response expected; transport errors are fine too (the server
        // may reset the socket mid-write).
        KIND_MIDCUT | KIND_POSTCUT => matches!(status, 0 | 599),
        KIND_STORM => matches!(status, 200 | 408 | 429 | 503),
        _ => false,
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0 * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len()) - 1;
    sorted_ms.get(idx).copied().unwrap_or(0.0)
}

/// Prints a log₂-bucketed latency histogram: `[1,2) [2,4) … [32768,∞)` ms,
/// each bucket with a proportional bar — the sustained-run view a single
/// p50/p99 pair hides (bimodality under load shedding, queueing tails).
fn print_histogram(ms: &[f64]) {
    if ms.is_empty() {
        return;
    }
    let mut buckets = [0usize; 17];
    for &v in ms {
        let mut b = 0usize;
        let mut bound = 1.0f64;
        while v >= bound && b < 16 {
            bound *= 2.0;
            b += 1;
        }
        buckets[b] += 1;
    }
    let tallest = buckets.iter().copied().max().unwrap_or(1).max(1);
    println!("latency histogram ({} responses):", ms.len());
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    for (b, &count) in buckets.iter().enumerate() {
        if count > 0 {
            let bar = "#".repeat((count * 40).div_ceil(tallest));
            let label = if b == 16 {
                format!(">= {lo:.0} ms")
            } else {
                format!("{lo:.0}-{hi:.0} ms")
            };
            println!("  {label:<16} {count:>7}  {bar}");
        }
        lo = hi;
        hi *= 2.0;
    }
}

/// Recursively zeroes the clock fields (`wall_ms`, `pricing_ms`) so two
/// reports of the same deterministic experiment compare byte-identical.
fn normalize_clocks(doc: &mut Json) {
    match doc {
        Json::Object(fields) => {
            for (k, v) in fields.iter_mut() {
                if k == "wall_ms" || k == "pricing_ms" {
                    *v = Json::Number(0.0);
                } else {
                    normalize_clocks(v);
                }
            }
        }
        Json::Array(items) => {
            for v in items.iter_mut() {
                normalize_clocks(v);
            }
        }
        _ => {}
    }
}

/// `--verify-jobs DIR`: every job recorded by an earlier `--jobs` run must
/// reach a terminal state, and completed reports must match a fresh
/// synchronous solve byte-for-byte after clock normalization. Returns the
/// process exit code.
fn verify_jobs(cfg: &Config, dir: &str) -> i32 {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("loadgen: cannot read --verify-jobs dir {dir}: {e}");
            return 2;
        }
    };
    let mut jobs: Vec<(String, String)> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().to_string();
        let Some(id) = name.strip_suffix(".spec.json") else {
            continue;
        };
        match std::fs::read_to_string(entry.path()) {
            Ok(spec) => jobs.push((id.to_string(), spec)),
            Err(e) => {
                eprintln!("loadgen: cannot read {name}: {e}");
                return 2;
            }
        }
    }
    jobs.sort();
    if jobs.is_empty() {
        eprintln!("loadgen: no recorded jobs in {dir}");
        return 2;
    }
    println!(
        "verifying {} recorded jobs against {}",
        jobs.len(),
        cfg.addr
    );
    let mut completed = 0usize;
    let mut other_terminal = 0usize;
    let mut failures = 0usize;
    for (id, spec) in &jobs {
        match verify_one_job(cfg, id, spec) {
            VerifyOutcome::Completed => completed += 1,
            VerifyOutcome::Terminal(status) => {
                other_terminal += 1;
                println!("  job {id}: terminal ({status})");
            }
            VerifyOutcome::Failed(why) => {
                failures += 1;
                println!("  job {id}: FAILED — {why}");
            }
        }
    }
    println!(
        "verified: {completed} completed (reports byte-identical), \
         {other_terminal} otherwise terminal, {failures} failures"
    );
    if failures > 0 {
        1
    } else {
        println!(
            "loadgen: all {} acknowledged jobs reached a terminal state",
            jobs.len()
        );
        0
    }
}

enum VerifyOutcome {
    /// Completed with a report matching the synchronous reference.
    Completed,
    /// Terminal but not completed (failed/cancelled) — allowed; named.
    Terminal(String),
    /// Non-terminal at timeout, unreachable, or a report mismatch.
    Failed(String),
}

fn verify_one_job(cfg: &Config, id: &str, spec: &str) -> VerifyOutcome {
    let budget = Stopwatch::start();
    let report = loop {
        if budget.elapsed_ms() / 1e3 > cfg.verify_timeout_s as f64 {
            return VerifyOutcome::Failed(format!("not terminal within {}s", cfg.verify_timeout_s));
        }
        let resp = send_request(
            &cfg.addr,
            "GET",
            &format!("/v1/jobs/{id}"),
            b"",
            &[],
            None,
            false,
        );
        match resp {
            Ok(Some(r)) if r.status == 200 => {
                let Ok(doc) = Json::parse(&r.body) else {
                    return VerifyOutcome::Failed("unparseable job body".to_string());
                };
                let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
                if schema != "greencloud-job/1" {
                    // Not a state document: the finished report itself.
                    break r.body;
                }
                match doc.get("status").and_then(Json::as_str).unwrap_or("") {
                    "failed" | "cancelled" => {
                        let code = doc
                            .get("error_code")
                            .and_then(Json::as_str)
                            .or_else(|| doc.get("cancel_reason").and_then(Json::as_str))
                            .unwrap_or("-");
                        return VerifyOutcome::Terminal(format!(
                            "{}: {code}",
                            doc.get("status").and_then(Json::as_str).unwrap_or("?")
                        ));
                    }
                    // accepted/started: still working; poll again.
                    _ => {}
                }
            }
            Ok(Some(r)) => {
                return VerifyOutcome::Failed(format!("GET /v1/jobs/{id} returned {}", r.status))
            }
            // Server may still be restarting; keep polling.
            Ok(None) | Err(_) => {}
        }
        thread::sleep(Duration::from_millis(250));
    };
    // Reference solve of the same spec, cache bypassed: deterministic
    // engines must reproduce the recovered report byte-for-byte once
    // clocks are zeroed.
    let reference = loop {
        if budget.elapsed_ms() / 1e3 > 2.0 * cfg.verify_timeout_s as f64 {
            return VerifyOutcome::Failed("reference solve did not complete in budget".to_string());
        }
        match send_request(
            &cfg.addr,
            "POST",
            "/v1/experiments",
            spec.as_bytes(),
            &[("Cache-Control", "no-cache".to_string())],
            None,
            false,
        ) {
            Ok(Some(r)) if r.status == 200 => break r.body,
            // Shed under recovery load: back off and retry.
            Ok(Some(r)) if matches!(r.status, 429 | 503) => {
                thread::sleep(Duration::from_millis(500));
            }
            Ok(Some(r)) => {
                return VerifyOutcome::Failed(format!("reference solve returned {}", r.status))
            }
            Ok(None) | Err(_) => thread::sleep(Duration::from_millis(500)),
        }
    };
    let render = |text: &str| -> Option<String> {
        let mut doc = Json::parse(text).ok()?;
        normalize_clocks(&mut doc);
        Some(doc.render())
    };
    match (render(&report), render(&reference)) {
        (Some(a), Some(b)) if a == b => VerifyOutcome::Completed,
        (Some(_), Some(_)) => {
            VerifyOutcome::Failed("recovered report differs from reference solve".to_string())
        }
        _ => VerifyOutcome::Failed("report is not parseable JSON".to_string()),
    }
}

fn main() {
    let cfg = parse_args();
    if let Some(dir) = cfg.verify_jobs.clone() {
        std::process::exit(verify_jobs(&cfg, &dir));
    }
    // Load and pre-render every spec body once; with --unique, each
    // request index gets its own start_hour so no two specs match.
    let mut base_docs: Vec<Json> = Vec::new();
    for path in &cfg.spec_paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("loadgen: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        match Json::parse(&text) {
            Ok(doc) => base_docs.push(doc),
            Err(e) => {
                eprintln!("loadgen: {path} is not JSON: {e}");
                std::process::exit(2);
            }
        }
    }
    let specs: Vec<String> = if cfg.unique {
        (0..cfg.requests)
            .map(|i| {
                let mut doc = base_docs[i % base_docs.len()].clone();
                if !perturb_start_hour(&mut doc, (i as u64) * 24 % 8000) {
                    eprintln!("loadgen: warning: spec has no experiment.config to perturb");
                }
                doc.render()
            })
            .collect()
    } else {
        base_docs.iter().map(Json::render).collect()
    };
    if let Some(dir) = &cfg.jobs_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("loadgen: cannot create --jobs-dir {dir}: {e}");
            std::process::exit(2);
        }
    }

    let cfg = Arc::new(cfg);
    let specs = Arc::new(specs);
    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
    let wall = Stopwatch::start();
    let mut workers = Vec::new();
    if cfg.rate > 0.0 {
        // Open loop: dispatch at fixed intervals no matter how slow the
        // server is — each request gets a short-lived thread, so arrivals
        // never wait on completions.
        for i in 0..cfg.requests {
            let due_ms = i as f64 * 1000.0 / cfg.rate;
            let wait = due_ms - wall.elapsed_ms();
            if wait > 0.25 {
                thread::sleep(Duration::from_micros((wait * 1000.0) as u64));
            }
            let cfg = Arc::clone(&cfg);
            let specs = Arc::clone(&specs);
            let samples = Arc::clone(&samples);
            workers.push(thread::spawn(move || {
                let s = run_one(&cfg, &specs, i);
                if let Ok(mut guard) = samples.lock() {
                    guard.push(s);
                }
            }));
        }
    } else {
        // Closed loop: a fixed worker pool, each worker issuing the next
        // request as soon as its previous one resolves.
        let next = Arc::new(AtomicUsize::new(0));
        for _ in 0..cfg.concurrency {
            let cfg = Arc::clone(&cfg);
            let specs = Arc::clone(&specs);
            let next = Arc::clone(&next);
            let samples = Arc::clone(&samples);
            workers.push(thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= cfg.requests {
                    return;
                }
                let s = run_one(&cfg, &specs, i);
                if let Ok(mut guard) = samples.lock() {
                    guard.push(s);
                }
            }));
        }
    }
    for w in workers {
        let _ = w.join();
    }
    let wall_s = wall.elapsed_ms() / 1e3;

    let samples = samples.lock().map(|g| g.clone()).unwrap_or_default();
    let total = samples.len();
    let ok: Vec<&Sample> = samples
        .iter()
        .filter(|s| s.status == 200 || s.status == 202)
        .collect();
    let shed = samples.iter().filter(|s| s.status == 429).count();
    let deadline = samples.iter().filter(|s| s.status == 408).count();
    let hits = ok.iter().filter(|s| s.cache_hit).count();
    let hit_rate = if ok.is_empty() {
        0.0
    } else {
        100.0 * hits as f64 / ok.len() as f64
    };
    let mut ok_ms: Vec<f64> = ok.iter().map(|s| s.ms).collect();
    ok_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let violations: Vec<&Sample> = samples
        .iter()
        .filter(|s| !allowed(s.kind, s.status, cfg.allow_transport))
        .collect();

    println!("==== loadgen report ====");
    println!("requests        {total}");
    println!("wall time       {wall_s:.2} s");
    if cfg.rate > 0.0 {
        println!("arrival rate    {:.1} req/s (open loop)", cfg.rate);
    }
    println!(
        "throughput      {:.1} req/s",
        total as f64 / wall_s.max(1e-9)
    );
    println!(
        "ok (200/202)    {} ({hits} cache hits, {hit_rate:.1}% hit rate)",
        ok.len(),
    );
    println!(
        "shed (429)      {shed} ({:.1}% shed rate)",
        100.0 * shed as f64 / total.max(1) as f64
    );
    println!("deadline (408)  {deadline}");
    println!(
        "p50 latency     {:.1} ms (over 200s/202s)",
        percentile(&ok_ms, 50.0)
    );
    println!(
        "p99 latency     {:.1} ms (over 200s/202s)",
        percentile(&ok_ms, 99.0)
    );
    for kind in [
        KIND_NORMAL,
        KIND_JOB,
        KIND_STORM,
        KIND_MALFORMED,
        KIND_OVERSIZED,
        KIND_MIDCUT,
        KIND_POSTCUT,
    ] {
        let n = samples.iter().filter(|s| s.kind == kind).count();
        if n > 0 {
            println!("  {kind:<16} {n}");
        }
    }
    if cfg.rate > 0.0 || cfg.histogram {
        print_histogram(&ok_ms);
    }

    let mut failed = false;
    if !violations.is_empty() {
        failed = true;
        println!(
            "VIOLATIONS: {} responses outside the allowed set",
            violations.len()
        );
        for v in violations.iter().take(10) {
            println!("  {} got {}", v.kind, v.status);
        }
    }
    if cfg.expect_shed && shed == 0 {
        failed = true;
        println!("ASSERTION FAILED: --expect-shed but no request was shed (429)");
    }
    if ok.len() < cfg.min_ok {
        failed = true;
        println!(
            "ASSERTION FAILED: --min-ok {} but only {} requests got 200/202",
            cfg.min_ok,
            ok.len()
        );
    }
    if !cfg.backends.is_empty() {
        println!(
            "==== backend cache parity ({} backends) ====",
            cfg.backends.len()
        );
        for b in &cfg.backends {
            match backend_cache_counters(b) {
                Some((received, backend_hits)) => {
                    println!("  {b:<24} received {received:>7}  cache hits {backend_hits:>7}")
                }
                None => println!("  {b:<24} unreachable"),
            }
        }
        // A single backend misses each distinct spec once (plus up to
        // `concurrency` duplicate misses racing the first fill); a
        // sharding router must match that, a scattering one cannot.
        let mut distinct: Vec<&String> = specs.iter().collect();
        distinct.sort();
        distinct.dedup();
        let ideal_misses = distinct.len() + cfg.concurrency;
        if ok.len() > ideal_misses {
            let ideal = 100.0 * (ok.len() - ideal_misses) as f64 / ok.len() as f64;
            println!(
                "parity: observed hit rate {hit_rate:.1}% vs single-backend ideal {ideal:.1}%"
            );
            if hit_rate < ideal - 5.0 {
                failed = true;
                println!(
                    "ASSERTION FAILED: hit rate {hit_rate:.1}% is more than 5 points \
                     below the single-backend ideal {ideal:.1}% — the router is \
                     scattering identical specs across backends"
                );
            }
        }
    }
    if cfg.min_hit_rate >= 0.0 && hit_rate < cfg.min_hit_rate {
        failed = true;
        println!(
            "ASSERTION FAILED: --min-hit-rate {:.1} but observed {hit_rate:.1}%",
            cfg.min_hit_rate
        );
    }
    if failed {
        std::process::exit(1);
    }
    println!("loadgen: all {total} requests resolved within the allowed status set");
}
