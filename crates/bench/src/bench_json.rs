//! Machine-readable benchmark records (`BENCH_lp.json`).
//!
//! `repro timing` (and the `quick` CI smoke, on a reduced workload) write
//! the LP-substrate benchmark numbers to `BENCH_lp.json` so the perf
//! trajectory is tracked across PRs instead of living only in stdout logs.
//! The vendored dependency set has no `serde_json`, so the writer emits the
//! fixed schema by hand and [`parse_bench_json`] is a minimal JSON reader
//! used by `repro quick` to prove the artifact round-trips.

use std::fmt::Write as _;

/// One benchmark row of `BENCH_lp.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Bench name, e.g. `"hourly_resolve_96rounds/warm"`.
    pub name: String,
    /// Wall time in milliseconds.
    pub wall_ms: f64,
    /// Simplex iterations spent (0 when not applicable).
    pub iterations: usize,
    /// Warm-start rate in `[0, 1]` (0 when not applicable).
    pub warm_rate: f64,
}

/// Schema identifier written to (and required from) `BENCH_lp.json`.
pub const BENCH_SCHEMA: &str = "greencloud-bench-lp/1";

/// Renders the records as the `BENCH_lp.json` document.
pub fn render_bench_json(records: &[BenchRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{BENCH_SCHEMA}\",");
    let _ = writeln!(out, "  \"benches\": [");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": {}, \"wall_ms\": {:.3}, \"iterations\": {}, \"warm_rate\": {:.4}}}{comma}",
            quote(&r.name),
            r.wall_ms,
            r.iterations,
            r.warm_rate
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn quote(s: &str) -> String {
    let mut q = String::with_capacity(s.len() + 2);
    q.push('"');
    for c in s.chars() {
        match c {
            '"' => q.push_str("\\\""),
            '\\' => q.push_str("\\\\"),
            '\n' => q.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(q, "\\u{:04x}", c as u32);
            }
            c => q.push(c),
        }
    }
    q.push('"');
    q
}

/// Parses a `BENCH_lp.json` document back into records, validating the
/// schema tag and per-record field types.
///
/// # Errors
///
/// A human-readable description of the first structural problem found.
pub fn parse_bench_json(text: &str) -> Result<Vec<BenchRecord>, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let doc = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.at));
    }
    let Json::Object(fields) = doc else {
        return Err("top level is not an object".into());
    };
    let schema = fields
        .iter()
        .find(|(k, _)| k == "schema")
        .ok_or("missing \"schema\"")?;
    match &schema.1 {
        Json::String(s) if s == BENCH_SCHEMA => {}
        other => return Err(format!("unexpected schema: {other:?}")),
    }
    let benches = fields
        .iter()
        .find(|(k, _)| k == "benches")
        .ok_or("missing \"benches\"")?;
    let Json::Array(rows) = &benches.1 else {
        return Err("\"benches\" is not an array".into());
    };
    let mut records = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let Json::Object(f) = row else {
            return Err(format!("bench #{i} is not an object"));
        };
        let get = |key: &str| f.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let name = match get("name") {
            Some(Json::String(s)) => s.clone(),
            _ => return Err(format!("bench #{i}: missing string \"name\"")),
        };
        let wall_ms = match get("wall_ms") {
            Some(Json::Number(x)) => *x,
            _ => return Err(format!("bench #{i}: missing number \"wall_ms\"")),
        };
        let iterations = match get("iterations") {
            Some(Json::Number(x)) if *x >= 0.0 && x.fract() == 0.0 => *x as usize,
            _ => return Err(format!("bench #{i}: missing integer \"iterations\"")),
        };
        let warm_rate = match get("warm_rate") {
            Some(Json::Number(x)) => *x,
            _ => return Err(format!("bench #{i}: missing number \"warm_rate\"")),
        };
        records.push(BenchRecord {
            name,
            wall_ms,
            iterations,
            warm_rate,
        });
    }
    Ok(records)
}

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

/// A minimal recursive-descent JSON reader — just enough to validate the
/// fixed `BENCH_lp.json` shape above.
struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}",
                char::from(b),
                self.at
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.at += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.at)),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let s = &self.bytes[self.at..];
                    let ch_len = match s[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xf0 => 4,
                        b if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    out.push_str(
                        std::str::from_utf8(&s[..ch_len.min(s.len())])
                            .map_err(|_| "bad utf-8 in string")?,
                    );
                    self.at += ch_len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.at += 1;
                }
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.at += 1;
                }
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.at)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let records = vec![
            BenchRecord {
                name: "warm_vs_cold/single_site_cold".into(),
                wall_ms: 17.25,
                iterations: 591,
                warm_rate: 0.0,
            },
            BenchRecord {
                name: "hourly \"quoted\"".into(),
                wall_ms: 0.5,
                iterations: 0,
                warm_rate: 0.9896,
            },
        ];
        let text = render_bench_json(&records);
        let back = parse_bench_json(&text).expect("parses");
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, records[0].name);
        assert_eq!(back[0].iterations, 591);
        assert!((back[0].wall_ms - 17.25).abs() < 1e-9);
        assert_eq!(back[1].name, records[1].name);
        assert!((back[1].warm_rate - 0.9896).abs() < 1e-9);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_bench_json("").is_err());
        assert!(parse_bench_json("[]").is_err());
        assert!(parse_bench_json("{\"schema\": \"other\", \"benches\": []}").is_err());
        assert!(parse_bench_json(
            "{\"schema\": \"greencloud-bench-lp/1\", \"benches\": [{\"name\": 3}]}"
        )
        .is_err());
        let ok = parse_bench_json("{\"schema\": \"greencloud-bench-lp/1\", \"benches\": []}");
        assert_eq!(ok.expect("valid"), vec![]);
    }
}
