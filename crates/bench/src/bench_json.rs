//! Machine-readable benchmark records (`BENCH_lp.json`).
//!
//! `repro timing` (and the `quick` CI smoke, on a reduced workload) write
//! the LP-substrate benchmark numbers to `BENCH_lp.json` so the perf
//! trajectory is tracked across PRs instead of living only in stdout logs.
//! The document model comes from [`greencloud_api::json`] (the vendored
//! dependency set has no `serde_json`); this module keeps the fixed
//! `greencloud-bench-lp/1` schema on top of it.

use greencloud_api::json::Json;
use greencloud_api::report::TimingRecord;
use std::fmt::Write as _;

/// One benchmark row of `BENCH_lp.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Bench name, e.g. `"hourly_resolve_96rounds/warm"`.
    pub name: String,
    /// Wall time in milliseconds.
    pub wall_ms: f64,
    /// Simplex iterations spent (0 when not applicable).
    pub iterations: usize,
    /// Warm-start rate in `[0, 1]` (0 when not applicable).
    pub warm_rate: f64,
}

impl From<&TimingRecord> for BenchRecord {
    fn from(r: &TimingRecord) -> Self {
        Self {
            name: r.name.clone(),
            wall_ms: r.wall_ms,
            iterations: r.iterations,
            warm_rate: r.warm_rate,
        }
    }
}

/// Schema identifier written to (and required from) `BENCH_lp.json`.
pub const BENCH_SCHEMA: &str = "greencloud-bench-lp/1";

/// Renders the records as the `BENCH_lp.json` document.
pub fn render_bench_json(records: &[BenchRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{BENCH_SCHEMA}\",");
    let _ = writeln!(out, "  \"benches\": [");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": {}, \"wall_ms\": {:.3}, \"iterations\": {}, \"warm_rate\": {:.4}}}{comma}",
            greencloud_api::json::quote(&r.name),
            r.wall_ms,
            r.iterations,
            r.warm_rate
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Parses a `BENCH_lp.json` document back into records, validating the
/// schema tag and per-record field types.
///
/// # Errors
///
/// A human-readable description of the first structural problem found.
pub fn parse_bench_json(text: &str) -> Result<Vec<BenchRecord>, String> {
    let doc = Json::parse(text)?;
    if !matches!(&doc, Json::Object(_)) {
        return Err("top level is not an object".into());
    }
    match doc.get("schema") {
        Some(Json::Str(s)) if s == BENCH_SCHEMA => {}
        other => return Err(format!("unexpected schema: {other:?}")),
    }
    let rows = doc
        .get("benches")
        .ok_or("missing \"benches\"")?
        .as_array()
        .ok_or("\"benches\" is not an array")?;
    let mut records = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let name = match row.get("name") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err(format!("bench #{i}: missing string \"name\"")),
        };
        let wall_ms = row
            .get("wall_ms")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("bench #{i}: missing number \"wall_ms\""))?;
        let iterations = row
            .get("iterations")
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("bench #{i}: missing integer \"iterations\""))?;
        let warm_rate = row
            .get("warm_rate")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("bench #{i}: missing number \"warm_rate\""))?;
        records.push(BenchRecord {
            name,
            wall_ms,
            iterations,
            warm_rate,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let records = vec![
            BenchRecord {
                name: "warm_vs_cold/single_site_cold".into(),
                wall_ms: 17.25,
                iterations: 591,
                warm_rate: 0.0,
            },
            BenchRecord {
                name: "hourly \"quoted\"".into(),
                wall_ms: 0.5,
                iterations: 0,
                warm_rate: 0.9896,
            },
        ];
        let text = render_bench_json(&records);
        let back = parse_bench_json(&text).expect("parses");
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].name, records[0].name);
        assert_eq!(back[0].iterations, 591);
        assert!((back[0].wall_ms - 17.25).abs() < 1e-9);
        assert_eq!(back[1].name, records[1].name);
        assert!((back[1].warm_rate - 0.9896).abs() < 1e-9);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_bench_json("").is_err());
        assert!(parse_bench_json("[]").is_err());
        assert!(parse_bench_json("{\"schema\": \"other\", \"benches\": []}").is_err());
        assert!(parse_bench_json(
            "{\"schema\": \"greencloud-bench-lp/1\", \"benches\": [{\"name\": 3}]}"
        )
        .is_err());
        let ok = parse_bench_json("{\"schema\": \"greencloud-bench-lp/1\", \"benches\": []}");
        assert_eq!(ok.expect("valid"), vec![]);
    }

    #[test]
    fn converts_timing_records() {
        let t = greencloud_api::report::TimingRecord {
            name: "single_site_cold/devex".into(),
            wall_ms: 3.5,
            iterations: 120,
            warm_rate: 0.25,
        };
        let b = BenchRecord::from(&t);
        assert_eq!(b.name, "single_site_cold/devex");
        assert_eq!(b.iterations, 120);
    }
}
