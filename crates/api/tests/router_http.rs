//! Integration tests for the `repro router` front-end: consistent-hash
//! sharding (cache-hit parity with a single backend), streaming relay,
//! edge validation, fleet stats aggregation, and graceful drain.

mod common;

use common::{annual_spec, http, start, start_router, Session};
use greencloud_api::json::Json;

/// A duplicate-spec burst through the router over three backends must
/// show the same cache hit rate as the identical burst against a single
/// backend: the ring sends every copy of a spec to the same backend, so
/// the fleet as a whole still misses each distinct spec exactly once.
/// This is the PR's acceptance criterion (parity within 5 points).
#[test]
fn duplicate_spec_burst_hit_rate_matches_single_backend() {
    let specs: Vec<Vec<u8>> = (0..3)
        .map(|i| annual_spec(48, 4, i * 24).to_json_string().into_bytes())
        .collect();
    let reps = 8usize;

    // Baseline: the burst against one standalone backend, sequentially
    // over a single keep-alive connection (no duplicate-miss races).
    let (baseline, baseline_addr) = start(|_| {});
    let mut session = Session::connect(baseline_addr);
    let mut baseline_hits = 0usize;
    for r in 0..reps {
        for spec in &specs {
            let resp = session.send("POST", "/v1/experiments", &[], Some(spec));
            assert_eq!(resp.status, 200, "baseline rep {r}: {}", resp.body);
            if resp.header("X-Cache") == Some("hit") {
                baseline_hits += 1;
            }
        }
    }
    drop(session);
    let total = reps * specs.len();
    let baseline_rate = baseline_hits as f64 / total as f64;
    baseline.trigger_shutdown();
    baseline.join();

    // The same burst through a router over three fresh backends.
    let fleet: Vec<_> = (0..3).map(|_| start(|_| {})).collect();
    let fleet_addrs: Vec<_> = fleet.iter().map(|(_, a)| *a).collect();
    let (router, router_addr) = start_router(&fleet_addrs, |_| {});
    let mut session = Session::connect(router_addr);
    let mut routed_hits = 0usize;
    for r in 0..reps {
        for spec in &specs {
            let resp = session.send("POST", "/v1/experiments", &[], Some(spec));
            assert_eq!(resp.status, 200, "routed rep {r}: {}", resp.body);
            if resp.header("X-Cache") == Some("hit") {
                routed_hits += 1;
            }
        }
    }
    drop(session);
    let routed_rate = routed_hits as f64 / total as f64;
    assert!(
        (routed_rate - baseline_rate).abs() <= 0.05,
        "hit-rate parity broken: single backend {baseline_rate:.3}, \
         through router {routed_rate:.3}"
    );

    // The fleet view agrees: summed backend cache_hits equal the hits the
    // clients saw, and every backend is present in the aggregation.
    let stats = http(router_addr, "GET", "/v1/stats", &[], None);
    assert_eq!(stats.status, 200);
    let doc = stats.json();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(greencloud_api::ROUTER_STATS_SCHEMA)
    );
    let backends = match doc.get("backends") {
        Some(Json::Array(items)) => items.clone(),
        other => panic!("backends is not an array: {other:?}"),
    };
    assert_eq!(backends.len(), 3);
    let fleet_hits = doc
        .get("fleet")
        .and_then(|f| f.get("cache_hits"))
        .and_then(Json::as_u64)
        .expect("fleet cache_hits");
    assert_eq!(fleet_hits as usize, routed_hits);
    let relayed = doc.get("relayed").and_then(Json::as_u64).expect("relayed");
    assert!(relayed >= total as u64, "relayed={relayed}");

    router.trigger_shutdown();
    router.join();
    for (server, _) in fleet {
        server.trigger_shutdown();
        server.join();
    }
}

/// `X-Progress: stream` through the router: the chunked response arrives
/// with at least one progress frame ahead of the final report line, and a
/// repeat of the same spec streams a `cached` frame with `X-Cache: hit`.
#[test]
fn streamed_solve_relays_progress_frames_before_body() {
    let (server, server_addr) = start(|_| {});
    let (router, router_addr) = start_router(&[server_addr], |_| {});
    let spec = annual_spec(48, 4, 7_000).to_json_string().into_bytes();

    let mut session = Session::connect(router_addr);
    let resp = session.send(
        "POST",
        "/v1/experiments",
        &[("X-Progress", "stream")],
        Some(&spec),
    );
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.chunked, "streamed response must be chunked");
    assert_eq!(resp.header("X-Cache"), Some("miss"));
    let frames = resp.progress_frames();
    assert!(
        !frames.is_empty(),
        "expected at least one progress frame before the body: {}",
        resp.body
    );
    let report = Json::parse(&resp.final_document()).expect("final document is JSON");
    let schema = report.get("schema").and_then(Json::as_str).unwrap_or("");
    assert!(
        schema.starts_with("greencloud-report/"),
        "final document is not a report: {schema:?}"
    );

    // Same spec again: a cache hit, still streamed for framing symmetry.
    let resp = session.send(
        "POST",
        "/v1/experiments",
        &[("X-Progress", "stream")],
        Some(&spec),
    );
    assert_eq!(resp.status, 200);
    assert!(resp.chunked);
    assert_eq!(resp.header("X-Cache"), Some("hit"));
    let frames = resp.progress_frames();
    assert_eq!(
        frames
            .first()
            .and_then(|f| f.get("kind"))
            .and_then(Json::as_str),
        Some("cached")
    );
    assert_eq!(resp.final_document(), report.render().trim_end());

    drop(session);
    router.trigger_shutdown();
    router.join();
    server.trigger_shutdown();
    server.join();
}

/// A spec the backends would reject is rejected at the router's edge with
/// the same typed error body — no backend sees the request.
#[test]
fn bad_spec_is_rejected_at_the_edge() {
    let (server, server_addr) = start(|_| {});
    let (router, router_addr) = start_router(&[server_addr], |_| {});

    let resp = http(
        router_addr,
        "POST",
        "/v1/experiments",
        &[],
        Some(b"{\"schema\": \"greencloud-spec/1\", "),
    );
    assert_eq!(resp.status, 400);
    assert_eq!(
        resp.json().get("schema").and_then(Json::as_str),
        Some("greencloud-error/1")
    );

    // The backend never received it.
    let stats = http(server_addr, "GET", "/v1/stats", &[], None);
    assert_eq!(stats.json().get("received").and_then(Json::as_u64), Some(0));

    // Unknown routes and wrong methods are answered locally too.
    let resp = http(router_addr, "GET", "/v1/nope", &[], None);
    assert_eq!(resp.status, 404);
    let resp = http(router_addr, "DELETE", "/v1/experiments", &[], None);
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("Allow"), Some("POST"));

    router.trigger_shutdown();
    router.join();
    server.trigger_shutdown();
    server.join();
}

/// Jobs submitted through the router are pollable through the router:
/// the job id's hex prefix recovers the spec's ring key, so the GET lands
/// on the backend that owns the job.
#[test]
fn job_submitted_through_router_is_pollable_through_router() {
    let fleet: Vec<_> = (0..3).map(|_| start(|_| {})).collect();
    let fleet_addrs: Vec<_> = fleet.iter().map(|(_, a)| *a).collect();
    let (router, router_addr) = start_router(&fleet_addrs, |_| {});

    let spec = annual_spec(48, 4, 4_321).to_json_string().into_bytes();
    let ack = http(router_addr, "POST", "/v1/jobs", &[], Some(&spec));
    assert_eq!(ack.status, 202, "{}", ack.body);
    let id = ack
        .json()
        .get("job_id")
        .and_then(Json::as_str)
        .map(str::to_string)
        .expect("job_id in ack");

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    let report = loop {
        assert!(
            std::time::Instant::now() < deadline,
            "job {id} did not reach a terminal state"
        );
        let resp = http(router_addr, "GET", &format!("/v1/jobs/{id}"), &[], None);
        assert_eq!(resp.status, 200, "{}", resp.body);
        let doc = resp.json();
        if doc.get("schema").and_then(Json::as_str) != Some("greencloud-job/1") {
            break doc;
        }
        match doc.get("status").and_then(Json::as_str) {
            Some("failed") | Some("cancelled") => panic!("job {id} ended {:?}", resp.body),
            _ => std::thread::sleep(std::time::Duration::from_millis(100)),
        }
    };
    let schema = report.get("schema").and_then(Json::as_str).unwrap_or("");
    assert!(schema.starts_with("greencloud-report/"), "{schema:?}");

    router.trigger_shutdown();
    router.join();
    for (server, _) in fleet {
        server.trigger_shutdown();
        server.join();
    }
}

/// Local router endpoints: healthz names the role, readyz counts live
/// backends, and a drain stops the world with an accurate summary.
#[test]
fn local_endpoints_and_drain_summary() {
    let (server, server_addr) = start(|_| {});
    let (router, router_addr) = start_router(&[server_addr], |_| {});

    let health = http(router_addr, "GET", "/v1/healthz", &[], None);
    assert_eq!(health.status, 200);
    assert_eq!(
        health.json().get("role").and_then(Json::as_str),
        Some("router")
    );
    let ready = http(router_addr, "GET", "/v1/readyz", &[], None);
    assert_eq!(ready.status, 200);
    assert_eq!(
        ready.json().get("backends_up").and_then(Json::as_u64),
        Some(1)
    );

    let spec = annual_spec(48, 4, 8_400).to_json_string().into_bytes();
    let resp = http(router_addr, "POST", "/v1/experiments", &[], Some(&spec));
    assert_eq!(resp.status, 200);

    router.trigger_shutdown();
    let summary = router.join();
    assert_eq!(summary.relayed, 1);
    assert_eq!(summary.all_dark, 0);
    assert_eq!(summary.aborted_relays, 0);

    server.trigger_shutdown();
    server.join();
}
