//! Satellite: torn-write recovery at the journal layer.
//!
//! The crash the write-ahead journal must survive is not a clean
//! shutdown — it is power loss mid-`write(2)`, which leaves a *prefix*
//! of the final record on disk. These tests truncate a real journal at
//! **every byte offset** of its final record and assert that replay
//! recovers exactly the records before it, then physically truncates the
//! tail so the next append never splices onto garbage. A separate fixture
//! flips a byte inside a record (bit rot, not a torn tail) and asserts
//! the checksum rejects it the same way; snapshot corruption, by
//! contrast, must be a hard error — a snapshot was written with
//! fsync+rename, so damage there is not explainable by a crash.

mod common;

use common::{remove_journal, temp_path};
use greencloud_api::{JobStatus, JobStore, StoreError};
use std::fs;

/// Builds a journal with three fully-written records (two accepts and a
/// start) and one final record (a completion), returning the path, the
/// two job ids, and the byte length of the journal *before* the final
/// record was appended.
fn build_fixture(tag: &str) -> (std::path::PathBuf, String, String, u64) {
    let path = temp_path(tag);
    remove_journal(&path);
    let mut store = JobStore::open(&path).expect("open fresh journal");
    let (id_a, new_a) = store.accept("{\"spec\":\"alpha\"}").expect("accept a");
    assert!(new_a);
    let (id_b, new_b) = store.accept("{\"spec\":\"beta\"}").expect("accept b");
    assert!(new_b);
    let attempts = store.start(&id_b).expect("start b");
    assert_eq!(attempts, Some(1));
    let before_final = fs::metadata(&path).expect("metadata").len();
    assert!(store.complete(&id_b, "{\"report\":1}").expect("complete b"));
    drop(store);
    let full = fs::metadata(&path).expect("metadata").len();
    assert!(full > before_final, "final record must occupy bytes");
    (path, id_a, id_b, before_final)
}

#[test]
fn torn_final_record_recovers_exact_prefix_at_every_byte_offset() {
    let (path, id_a, id_b, before_final) = build_fixture("torn");
    let full_bytes = fs::read(&path).expect("read journal");

    // Every cut length from "none of the final record" up to "all but its
    // last byte" must replay to the same state: job a accepted, job b
    // started (the completion is gone), and the file truncated back to
    // the pre-final length.
    for cut in before_final as usize..full_bytes.len() {
        let torn = temp_path("torn-cut");
        remove_journal(&torn);
        fs::write(&torn, &full_bytes[..cut]).expect("write torn copy");
        let store = JobStore::open(&torn).expect("torn journal must still open");
        let a = store
            .get(&id_a)
            .unwrap_or_else(|| panic!("job a lost at cut {cut}"));
        assert_eq!(a.status, JobStatus::Accepted, "cut {cut}");
        let b = store
            .get(&id_b)
            .unwrap_or_else(|| panic!("job b lost at cut {cut}"));
        assert_eq!(
            b.status,
            JobStatus::Started,
            "cut {cut}: the torn completion must not apply"
        );
        assert_eq!(b.attempts, 1, "cut {cut}");
        assert!(b.report.is_none(), "cut {cut}");
        drop(store);
        assert_eq!(
            fs::metadata(&torn).expect("metadata").len(),
            before_final,
            "cut {cut}: replay must truncate the torn tail"
        );
        remove_journal(&torn);
    }

    // The untouched journal replays the completion.
    let store = JobStore::open(&path).expect("reopen full journal");
    let b = store.get(&id_b).expect("job b");
    assert_eq!(b.status, JobStatus::Completed);
    assert_eq!(
        b.report.as_deref().map(String::as_str),
        Some("{\"report\":1}")
    );
    drop(store);
    remove_journal(&path);
}

#[test]
fn appends_after_torn_recovery_survive_the_next_replay() {
    let (path, _id_a, id_b, before_final) = build_fixture("torn-append");
    let full_bytes = fs::read(&path).expect("read journal");

    // Tear the completion in half, recover, then write a *new* terminal
    // record through the recovered store.
    let cut = before_final as usize + (full_bytes.len() - before_final as usize) / 2;
    fs::write(&path, &full_bytes[..cut]).expect("write torn journal");
    let mut store = JobStore::open(&path).expect("open torn journal");
    assert!(store
        .fail(&id_b, "crashed", "solver died mid-run")
        .expect("fail b"));
    drop(store);

    // The post-recovery append starts at the truncation point, so a
    // second replay sees a clean journal ending in the failure.
    let store = JobStore::open(&path).expect("reopen");
    let b = store.get(&id_b).expect("job b");
    assert_eq!(b.status, JobStatus::Failed);
    assert_eq!(b.error_code.as_deref(), Some("crashed"));
    drop(store);
    remove_journal(&path);
}

#[test]
fn checksum_rejects_a_flipped_byte_and_truncates_from_there() {
    let path = temp_path("bitrot");
    remove_journal(&path);
    let mut store = JobStore::open(&path).expect("open");
    let (id_a, _) = store.accept("{\"spec\":\"alpha\"}").expect("accept a");
    let first_len = fs::metadata(&path).expect("metadata").len() as usize;
    let (id_b, _) = store.accept("{\"spec\":\"beta\"}").expect("accept b");
    drop(store);

    // Flip one payload byte inside the *second* record (past its 8-byte
    // frame header, so the length still reads correctly and only the CRC
    // can catch it).
    let mut bytes = fs::read(&path).expect("read");
    let victim = first_len + 12;
    assert!(victim < bytes.len());
    bytes[victim] ^= 0x40;
    fs::write(&path, &bytes).expect("write corrupted");

    let store = JobStore::open(&path).expect("bit rot must not prevent opening");
    assert!(
        store.get(&id_a).is_some(),
        "records before the damage survive"
    );
    assert!(
        store.get(&id_b).is_none(),
        "the damaged record and everything after it are dropped"
    );
    drop(store);
    assert_eq!(
        fs::metadata(&path).expect("metadata").len() as usize,
        first_len,
        "the journal is truncated to the last valid record"
    );
    remove_journal(&path);
}

#[test]
fn snapshot_corruption_is_a_hard_error() {
    let path = temp_path("snapcorrupt");
    remove_journal(&path);
    let mut store = JobStore::open(&path).expect("open");
    for i in 0..8 {
        let (id, _) = store.accept(&format!("{{\"spec\":{i}}}")).expect("accept");
        store.start(&id).expect("start");
        store.complete(&id, "{\"report\":true}").expect("complete");
    }
    assert!(store.compact().expect("compact"), "compaction should run");
    drop(store);

    let mut snap = path.as_os_str().to_os_string();
    snap.push(".snap");
    let snap = std::path::PathBuf::from(snap);
    let mut bytes = fs::read(&snap).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&snap, &bytes).expect("write corrupted snapshot");

    match JobStore::open(&path) {
        Err(StoreError::Corrupt(msg)) => {
            assert!(
                msg.contains("snapshot"),
                "error should name the snapshot: {msg}"
            )
        }
        other => panic!("corrupt snapshot must refuse to open, got {other:?}"),
    }
    remove_journal(&path);
}

#[test]
fn compaction_survives_restart_with_identical_state() {
    let path = temp_path("compactrt");
    remove_journal(&path);
    let mut store = JobStore::open(&path).expect("open");
    let mut ids = Vec::new();
    for i in 0..6 {
        let (id, _) = store.accept(&format!("{{\"spec\":{i}}}")).expect("accept");
        store.start(&id).expect("start");
        if i % 2 == 0 {
            store
                .complete(&id, &format!("{{\"report\":{i}}}"))
                .expect("complete");
        }
        ids.push(id);
    }
    let before: Vec<_> = store
        .entries()
        .map(|(id, e)| (id.to_string(), e.status, e.attempts, e.report.clone()))
        .collect();
    assert!(store.compact().expect("compact"));
    drop(store);

    let store = JobStore::open(&path).expect("reopen after compaction");
    let after: Vec<_> = store
        .entries()
        .map(|(id, e)| (id.to_string(), e.status, e.attempts, e.report.clone()))
        .collect();
    assert_eq!(
        before, after,
        "compaction must be a pure representation change"
    );
    assert_eq!(
        store.stats().journal_bytes,
        0,
        "journal resets after compaction"
    );
    assert!(store.stats().snapshot_bytes > 0);
    let live: Vec<_> = store.recoverable();
    assert_eq!(live.len(), 3, "the three unfinished jobs stay recoverable");
    drop(store);
    remove_journal(&path);
}
