//! Every [`ExperimentSpec`] variant must survive a JSON round trip
//! unchanged, and malformed documents must fail with a path-bearing
//! [`SpecError`].

use greencloud_api::spec::{
    AnnualSpec, ExactSitingSpec, ExperimentSpec, SearchSpec, SitingSpec, SweepAxes, SweepMode,
    SweepSpec, TimingSpec, SPEC_SCHEMA,
};
use greencloud_climate::profiles::ProfileConfig;
use greencloud_core::framework::{PlacementInput, StorageMode, TechMix};
use greencloud_nebula::emulation::EmulationConfig;
use greencloud_nebula::predictor::PredictionMode;
use greencloud_nebula::scheduler::SchedulerConfig;
use greencloud_nebula::wan::WanModel;

fn round_trip(spec: &ExperimentSpec) -> ExperimentSpec {
    let text = spec.to_json_string();
    assert!(
        text.contains(SPEC_SCHEMA),
        "serialized spec must carry the schema tag"
    );
    ExperimentSpec::from_json_str(&text).expect("round trip parses")
}

#[test]
fn siting_round_trips() {
    let spec = ExperimentSpec::Siting(SitingSpec {
        input: PlacementInput {
            total_capacity_mw: 80.0,
            min_green_fraction: 0.75,
            tech: TechMix::WindOnly,
            storage: StorageMode::Batteries,
            migration_fraction: 0.25,
            ..PlacementInput::default()
        },
        search: SearchSpec {
            profile: ProfileConfig::coarse(),
            filter_keep: 9,
            iterations: 33,
            chains: 3,
            patience: 21,
            max_sites: 5,
            seed: 0xBEEF,
        },
    });
    assert_eq!(round_trip(&spec), spec);
}

#[test]
fn exact_siting_round_trips() {
    let spec = ExperimentSpec::ExactSiting(ExactSitingSpec {
        input: PlacementInput {
            storage: StorageMode::None,
            ..PlacementInput::default()
        },
        profile: ProfileConfig::coarse(),
        filter_keep: 6,
        max_candidates: 6,
        max_sites: 3,
    });
    assert_eq!(round_trip(&spec), spec);
}

#[test]
fn annual_round_trips_with_every_option_exercised() {
    let mut config = EmulationConfig {
        total_load_mw: 42.5,
        vm_count: 17,
        hours: 100,
        start_hour: 8700,
        scheduler: SchedulerConfig {
            window_hours: 12,
            migration_fraction: 0.5,
            migration_penalty: 2e-3,
            integral_vm_power_mw: Some(0.25),
        },
        wan: WanModel::leased(100.0),
        battery_efficiency: 0.8,
        net_meter_credit: Some(0.9),
        prediction: PredictionMode::Noisy {
            sigma: 0.3,
            seed: 99,
        },
        ..EmulationConfig::default()
    }
    .with_batteries(5_000.0);
    config.sites[0].location_name = "Mexico City (custom)".into();
    let spec = ExperimentSpec::Annual(AnnualSpec {
        config,
        include_trace: true,
    });
    assert_eq!(round_trip(&spec), spec);
}

#[test]
fn sweep_round_trips() {
    let spec = ExperimentSpec::Sweep(SweepSpec {
        base: EmulationConfig {
            vm_count: 8,
            hours: 48,
            ..EmulationConfig::default()
        },
        axes: SweepAxes {
            start_hour: vec![0, 4080],
            battery_kwh: vec![10_000.0, 50_000.0],
            net_meter_credit: vec![None, Some(1.0)],
            forecast_sigma: vec![0.0, 0.3],
            wan_mbps: vec![100.0],
        },
        mode: SweepMode::Grid,
        seed: 7,
    });
    assert_eq!(round_trip(&spec), spec);

    let one_at_a_time = ExperimentSpec::Sweep(SweepSpec {
        base: EmulationConfig::default(),
        axes: SweepAxes {
            battery_kwh: vec![50_000.0],
            ..SweepAxes::default()
        },
        mode: SweepMode::OneAtATime,
        seed: 7,
    });
    assert_eq!(round_trip(&one_at_a_time), one_at_a_time);
}

#[test]
fn timing_round_trips() {
    let spec = ExperimentSpec::Timing(TimingSpec {
        fast: true,
        schedule_timing: false,
        lp_records: true,
        warm_cold_rounds: 24,
    });
    assert_eq!(round_trip(&spec), spec);
}

#[test]
fn sweep_axes_expand_as_specified() {
    let spec = SweepSpec {
        base: EmulationConfig::default(),
        axes: SweepAxes {
            start_hour: vec![0, 24],
            battery_kwh: vec![1000.0],
            net_meter_credit: vec![],
            forecast_sigma: vec![],
            wan_mbps: vec![],
        },
        mode: SweepMode::Grid,
        seed: 1,
    };
    // Grid: 2 × 1 combinations.
    assert_eq!(spec.scenarios().len(), 2);

    let one = SweepSpec {
        mode: SweepMode::OneAtATime,
        ..spec
    };
    // Base + one scenario per axis value.
    let scenarios = one.scenarios();
    assert_eq!(scenarios.len(), 4);
    assert_eq!(scenarios[0].name, "base");
    assert_eq!(scenarios[0].config.start_hour, one.base.start_hour);
    assert_eq!(scenarios[2].config.start_hour, 24);
    assert!(scenarios[3]
        .config
        .sites
        .iter()
        .all(|s| s.battery_kwh == 1000.0));
}

#[test]
fn malformed_documents_name_the_offending_path() {
    // Wrong schema version.
    let err = ExperimentSpec::from_json_str(
        r#"{"schema": "greencloud-spec/0", "experiment": {"kind": "timing"}}"#,
    )
    .unwrap_err();
    assert_eq!(err.path, "schema");

    // Unknown kind.
    let err = ExperimentSpec::from_json_str(
        r#"{"schema": "greencloud-spec/1", "experiment": {"kind": "teleport"}}"#,
    )
    .unwrap_err();
    assert_eq!(err.path, "experiment.kind");

    // Missing field inside a typed config.
    let err = ExperimentSpec::from_json_str(
        r#"{"schema": "greencloud-spec/1", "experiment": {"kind": "timing", "fast": true}}"#,
    )
    .unwrap_err();
    assert!(err.path.starts_with("experiment."), "{err}");

    // Not JSON at all.
    assert!(ExperimentSpec::from_json_str("not json").is_err());
}

#[test]
fn mistyped_embedded_input_is_rejected_with_path() {
    let spec = ExperimentSpec::Siting(SitingSpec {
        input: PlacementInput::default(),
        search: SearchSpec::default(),
    });
    let text = spec.to_json_string();
    let bad = text.replace("\"both\"", "\"nuclear\"");
    let err = ExperimentSpec::from_json_str(&bad).unwrap_err();
    assert_eq!(err.path, "experiment.input.tech");
}
