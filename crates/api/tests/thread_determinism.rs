//! Cross-thread-count determinism: the shipped `examples/quick.spec.json`
//! must produce byte-identical [`Report::normalized`] output whether the
//! engine runs single-threaded or with a full worker pool.
//!
//! This is the runtime counterpart to the `gclint` static rules: the lint
//! proves nothing *reads* wall clocks or hash-ordered collections on the
//! deterministic path, and this test proves the observable reports agree
//! across thread counts.

use greencloud_api::{Engine, ExperimentSpec};
use greencloud_climate::catalog::WorldCatalog;
use std::path::Path;

/// Loads the quick spec shipped in `examples/`.
fn quick_spec() -> ExperimentSpec {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/quick.spec.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    ExperimentSpec::from_json_str(&text).expect("quick spec parses")
}

/// Mirrors `repro run --spec examples/quick.spec.json --world anchors`.
fn engine(threads: usize) -> Engine {
    Engine::new(WorldCatalog::anchors_only(17)).with_threads(threads)
}

#[test]
fn quick_spec_is_deterministic_across_thread_counts() {
    let spec = quick_spec();
    let single = engine(1).run(&spec).expect("threads=1 run");
    let pooled = engine(8).run(&spec).expect("threads=8 run");
    assert_eq!(
        single.normalized().to_json_string(),
        pooled.normalized().to_json_string(),
        "normalized reports diverge between threads=1 and threads=8"
    );
}

#[test]
fn run_all_batch_is_deterministic_across_thread_counts() {
    // Duplicate the spec so `run_all` actually engages the worker pool
    // (one spec per worker slot) and compare every report pairwise.
    let specs: Vec<ExperimentSpec> = (0..4).map(|_| quick_spec()).collect();
    let single: Vec<String> = engine(1)
        .run_all(&specs)
        .into_iter()
        .map(|r| {
            r.expect("threads=1 batch run")
                .normalized()
                .to_json_string()
        })
        .collect();
    let pooled: Vec<String> = engine(8)
        .run_all(&specs)
        .into_iter()
        .map(|r| {
            r.expect("threads=8 batch run")
                .normalized()
                .to_json_string()
        })
        .collect();
    assert_eq!(
        single, pooled,
        "run_all reports diverge across thread counts"
    );
    // Identical specs must also agree with each other within one batch.
    assert!(
        pooled.windows(2).all(|w| w[0] == w[1]),
        "identical specs diverged within a single batch"
    );
}
