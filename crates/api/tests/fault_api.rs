//! Fault injection through the API front door: a `FaultSpec` embedded in a
//! `greencloud-spec/1` document must replay byte-identically, its
//! `greencloud-resilience/1` body must ride along in the report, and the
//! engine's fan-out must contain panics and deadlines to the spec that
//! caused them.

use greencloud_api::spec::{AnnualSpec, ExperimentSpec, SweepAxes, SweepMode, SweepSpec};
use greencloud_api::{ApiError, Engine, ReportBody};
use greencloud_climate::catalog::WorldCatalog;
use greencloud_nebula::emulation::EmulationConfig;
use greencloud_nebula::faults::{FaultKind, FaultSpec, ScheduledFault};
use greencloud_nebula::scheduler::SchedulerConfig;
use std::time::Duration;

fn tiny_emulation(hours: usize) -> EmulationConfig {
    EmulationConfig {
        vm_count: 8,
        hours,
        scheduler: SchedulerConfig {
            window_hours: 6,
            ..SchedulerConfig::default()
        },
        ..EmulationConfig::default()
    }
}

fn chaos() -> FaultSpec {
    FaultSpec {
        seed: 42,
        site_availability: Some(0.97),
        site_mttr_hours: 4.0,
        grid_outage_rate_per_khour: 5.0,
        wan_outage_rate_per_khour: 3.0,
        shock_rate_per_khour: 4.0,
        scheduled: vec![ScheduledFault {
            kind: FaultKind::SiteOutage,
            site: Some(1),
            start_hour: 6,
            duration_hours: 5,
            magnitude: 0.0,
        }],
        ..FaultSpec::default()
    }
}

#[test]
fn faulty_annual_spec_replays_identically_with_resilience_body() {
    let engine = Engine::new(WorldCatalog::anchors_only(4));
    let spec = ExperimentSpec::Annual(AnnualSpec {
        config: EmulationConfig {
            faults: Some(chaos()),
            ..tiny_emulation(48)
        },
        include_trace: false,
    });

    let replayed_spec =
        ExperimentSpec::from_json_str(&spec.to_json_string()).expect("spec round-trips");
    assert_eq!(replayed_spec, spec, "faults survive the JSON codec");

    let programmatic = engine.run(&spec).expect("chaos run completes");
    let replayed = engine.run(&replayed_spec).expect("replayed chaos run");
    assert_eq!(
        programmatic.normalized(),
        replayed.normalized(),
        "identical fault seeds must yield byte-identical reports"
    );

    let ReportBody::Annual(a) = &programmatic.body else {
        panic!("annual spec yields an annual report");
    };
    let res = a.resilience.as_ref().expect("resilience body present");
    assert!(res.site_outages >= 1, "the scheduled outage fired: {res:?}");
    assert!(res.slo_attainment <= 1.0 && res.slo_attainment > 0.0);
    let json = programmatic.to_json_string();
    assert!(
        json.contains("greencloud-resilience/1"),
        "schema tag in JSON"
    );
    assert!(programmatic.render_text().contains("resilience:"));
}

#[test]
fn fault_free_annual_report_omits_the_resilience_body() {
    let engine = Engine::new(WorldCatalog::anchors_only(4));
    let report = engine
        .run(&ExperimentSpec::Annual(AnnualSpec {
            config: tiny_emulation(8),
            include_trace: false,
        }))
        .expect("run");
    let ReportBody::Annual(a) = &report.body else {
        panic!("annual report");
    };
    assert!(a.resilience.is_none());
    assert!(report.to_json_string().contains("\"resilience\": null"));
}

#[test]
fn faulty_sweep_rows_carry_slo_columns() {
    let engine = Engine::new(WorldCatalog::anchors_only(4)).with_threads(2);
    let spec = ExperimentSpec::Sweep(SweepSpec {
        base: EmulationConfig {
            faults: Some(FaultSpec {
                // Darken every site for a window so downtime accrues no
                // matter which site the VMs followed the sun to.
                scheduled: (0..3)
                    .map(|s| ScheduledFault {
                        kind: FaultKind::SiteOutage,
                        site: Some(s),
                        start_hour: 2,
                        duration_hours: 6,
                        magnitude: 0.0,
                    })
                    .collect(),
                ..FaultSpec::default()
            }),
            ..tiny_emulation(24)
        },
        axes: SweepAxes {
            battery_kwh: vec![5_000.0],
            ..SweepAxes::default()
        },
        mode: SweepMode::OneAtATime,
        seed: 7,
    });
    let report = engine.run(&spec).expect("sweep runs");
    let ReportBody::Sweep(s) = &report.body else {
        panic!("sweep report");
    };
    assert_eq!(s.rows.len(), 2);
    for row in &s.rows {
        assert!(row.slo_attainment < 1.0, "{row:?}");
        assert!(row.vm_downtime_hours > 0.0, "{row:?}");
    }
}

#[test]
fn a_panicking_spec_is_contained_while_siblings_still_run() {
    let engine = Engine::new(WorldCatalog::anchors_only(4)).with_threads(2);
    let mut poisoned = tiny_emulation(6);
    // A negative battery bank trips an assert deep inside the energy
    // crate — exactly the kind of panic the fan-out must not propagate.
    poisoned.sites[0].battery_kwh = -1.0;
    let specs = vec![
        ExperimentSpec::Annual(AnnualSpec {
            config: poisoned,
            include_trace: false,
        }),
        ExperimentSpec::Annual(AnnualSpec {
            config: tiny_emulation(6),
            include_trace: false,
        }),
    ];
    let results = engine.run_all(&specs);
    assert_eq!(results.len(), 2);
    let err = results[0].as_ref().expect_err("poisoned spec fails");
    assert!(
        matches!(err, ApiError::Engine(msg) if msg.contains("panicked")),
        "{err}"
    );
    assert!(results[1].is_ok(), "the healthy sibling still ran");
}

#[test]
fn a_spec_that_blows_its_deadline_reports_a_typed_error() {
    let engine = Engine::new(WorldCatalog::anchors_only(4));
    // A multi-decade emulation cannot finish in 50 ms; the watchdog must
    // cancel it cooperatively and surface the configured limit.
    let spec = ExperimentSpec::Annual(AnnualSpec {
        config: tiny_emulation(200_000),
        include_trace: false,
    });
    let err = engine
        .run_with_deadline(&spec, Duration::from_millis(50))
        .expect_err("deadline fires");
    assert_eq!(err, ApiError::Deadline { limit_ms: 50 });

    // A generous deadline leaves the result untouched.
    let quick = ExperimentSpec::Annual(AnnualSpec {
        config: tiny_emulation(4),
        include_trace: false,
    });
    let ok = engine.run_with_deadline(&quick, Duration::from_secs(600));
    assert!(ok.is_ok(), "{:?}", ok.err());
}
