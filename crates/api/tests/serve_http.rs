//! HTTP contract tests for `repro serve`: routing, error codes, admission
//! control, deadlines, caching, and drain — all against a real listener.

mod common;

use common::{annual_spec, http, http_raw, siting_spec, start};
use greencloud_api::json::Json;
use std::thread;

#[test]
fn health_and_stats_endpoints_respond() {
    let (server, addr) = start(|_| {});

    let h = http(addr, "GET", "/v1/healthz", &[], None);
    assert_eq!(h.status, 200);
    assert_eq!(h.json().get("status").and_then(|j| j.as_str()), Some("ok"));

    let r = http(addr, "GET", "/v1/readyz", &[], None);
    assert_eq!(r.status, 200);
    assert_eq!(
        r.json().get("status").and_then(|j| j.as_str()),
        Some("ready")
    );

    let s = http(addr, "GET", "/v1/stats", &[], None);
    assert_eq!(s.status, 200);
    assert!(s.json().get("received").is_some(), "stats exposes counters");

    server.trigger_shutdown();
    server.join();
}

#[test]
fn unknown_routes_and_methods_are_typed() {
    let (server, addr) = start(|_| {});

    let nf = http(addr, "GET", "/nope", &[], None);
    assert_eq!(nf.status, 404);
    assert_eq!(nf.code().as_deref(), Some("not_found"));

    let mna = http(addr, "POST", "/v1/healthz", &[], Some(b"{}"));
    assert_eq!(mna.status, 405);
    assert_eq!(mna.code().as_deref(), Some("method_not_allowed"));
    assert!(mna.header("Allow").is_some(), "405 carries Allow header");

    let get_exp = http(addr, "GET", "/v1/experiments", &[], None);
    assert_eq!(get_exp.status, 405);

    server.trigger_shutdown();
    server.join();
}

#[test]
fn malformed_spec_is_a_schema_versioned_400() {
    let (server, addr) = start(|_| {});

    let resp = http(
        addr,
        "POST",
        "/v1/experiments",
        &[],
        Some(b"{\"this is\": not json"),
    );
    assert_eq!(resp.status, 400);
    let doc = resp.json();
    assert_eq!(
        doc.get("schema").and_then(|j| j.as_str()),
        Some("greencloud-error/1")
    );
    assert_eq!(resp.code().as_deref(), Some("spec_invalid"));

    server.trigger_shutdown();
    server.join();
}

#[test]
fn oversized_body_and_missing_length_are_rejected() {
    let (server, addr) = start(|cfg| cfg.max_body_bytes = 256);

    let big = vec![b'x'; 512];
    let too_big = http(addr, "POST", "/v1/experiments", &[], Some(&big));
    assert_eq!(too_big.status, 413);
    assert_eq!(too_big.code().as_deref(), Some("body_too_large"));

    let no_len = http_raw(
        addr,
        b"POST /v1/experiments HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(no_len.status, 411);
    assert_eq!(no_len.code().as_deref(), Some("length_required"));

    server.trigger_shutdown();
    server.join();
}

#[test]
fn overload_sheds_with_retry_after() {
    let (server, addr) = start(|cfg| {
        cfg.max_inflight = 1;
        cfg.queue_depth = 1;
        cfg.cache_capacity = 0;
    });

    // Six concurrent multi-hundred-ms solves against one worker and one
    // queue slot: at most two can be admitted at the moment of the burst,
    // so at least one of the six must come back 429 + Retry-After rather
    // than be queued unboundedly.
    let clients: Vec<_> = (0..6)
        .map(|i| {
            let body = annual_spec(8760, 32, i * 100).to_json_string().into_bytes();
            thread::spawn(move || {
                let resp = http(
                    addr,
                    "POST",
                    "/v1/experiments",
                    &[("Cache-Control", "no-cache")],
                    Some(&body),
                );
                let retry = resp.header("Retry-After").map(str::to_string);
                (resp.status, resp.code(), retry)
            })
        })
        .collect();
    let outcomes: Vec<_> = clients
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();

    for (status, _, _) in &outcomes {
        assert!(
            *status == 200 || *status == 429,
            "burst statuses must be 200 or 429, got {status}"
        );
    }
    assert!(
        outcomes.iter().any(|(s, _, _)| *s == 200),
        "admitted requests complete: {outcomes:?}"
    );
    let shed: Vec<_> = outcomes.iter().filter(|(s, _, _)| *s == 429).collect();
    assert!(
        !shed.is_empty(),
        "burst must overflow the queue: {outcomes:?}"
    );
    for (_, code, retry) in &shed {
        assert_eq!(code.as_deref(), Some("overloaded"));
        let secs: u64 = retry
            .as_deref()
            .expect("429 carries Retry-After")
            .parse()
            .expect("Retry-After is integral seconds");
        assert!((1..=60).contains(&secs));
    }

    server.trigger_shutdown();
    let summary = server.join();
    assert!(summary.shed >= 1, "summary counts the shed requests");
}

#[test]
fn per_request_deadline_yields_typed_408() {
    let (server, addr) = start(|cfg| cfg.cache_capacity = 0);

    let body = annual_spec(8760, 16, 0).to_json_string().into_bytes();
    let resp = http(
        addr,
        "POST",
        "/v1/experiments",
        &[("X-Deadline-Ms", "1")],
        Some(&body),
    );
    assert_eq!(resp.status, 408, "1ms deadline must expire: {}", resp.body);
    assert_eq!(resp.code().as_deref(), Some("deadline_exceeded"));
    assert_eq!(
        resp.json().get("limit_ms").and_then(|j| j.as_u64()),
        Some(1),
        "error body names the limit: {}",
        resp.body
    );

    server.trigger_shutdown();
    let summary = server.join();
    assert!(summary.deadline_expired >= 1);
}

#[test]
fn repeated_spec_hits_the_report_cache() {
    let (server, addr) = start(|_| {});

    let body = siting_spec().to_json_string().into_bytes();
    let first = http(addr, "POST", "/v1/experiments", &[], Some(&body));
    assert_eq!(first.status, 200);
    assert_eq!(first.header("X-Cache"), Some("miss"));

    let second = http(addr, "POST", "/v1/experiments", &[], Some(&body));
    assert_eq!(second.status, 200);
    assert_eq!(second.header("X-Cache"), Some("hit"));
    assert_eq!(
        first.body, second.body,
        "cache returns byte-identical report"
    );

    // Whitespace-different but semantically identical spec still hits:
    // the key is the normalized spec, not the raw bytes.
    let spaced = {
        let mut s = String::from_utf8(body.clone()).expect("utf8");
        s.push_str("  \n");
        s.into_bytes()
    };
    let third = http(addr, "POST", "/v1/experiments", &[], Some(&spaced));
    assert_eq!(third.status, 200);
    assert_eq!(third.header("X-Cache"), Some("hit"));

    // no-cache bypasses the lookup.
    let fourth = http(
        addr,
        "POST",
        "/v1/experiments",
        &[("Cache-Control", "no-cache")],
        Some(&body),
    );
    assert_eq!(fourth.status, 200);
    assert_eq!(fourth.header("X-Cache"), Some("miss"));

    server.trigger_shutdown();
    let summary = server.join();
    assert!(summary.cache_hits >= 2);
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let (server, addr) = start(|_| {});
    let mut session = common::Session::connect(addr);

    // Mixed traffic over a single TcpStream: health checks, a solve, a
    // cache hit, and a typed 404 — each response framed by Content-Length,
    // none closing the connection.
    let health = session.send("GET", "/v1/healthz", &[], None);
    assert_eq!(health.status, 200);
    assert_eq!(health.header("Connection"), Some("keep-alive"));

    let body = siting_spec().to_json_string().into_bytes();
    let first = session.send("POST", "/v1/experiments", &[], Some(&body));
    assert_eq!(first.status, 200);
    assert_eq!(first.header("X-Cache"), Some("miss"));
    let second = session.send("POST", "/v1/experiments", &[], Some(&body));
    assert_eq!(second.status, 200);
    assert_eq!(second.header("X-Cache"), Some("hit"));
    assert_eq!(first.body, second.body);

    let missing = session.send("GET", "/v1/nope", &[], None);
    assert_eq!(missing.status, 404);
    let stats = session.send("GET", "/v1/stats", &[], None);
    assert_eq!(stats.status, 200);

    drop(session);
    server.trigger_shutdown();
    let summary = server.join();
    assert_eq!(summary.server_errors, 0);
}

#[test]
fn streamed_solve_sends_progress_frames_then_the_report() {
    let (server, addr) = start(|_| {});
    let mut session = common::Session::connect(addr);
    let body = annual_spec(48, 4, 6_000).to_json_string().into_bytes();

    let resp = session.send(
        "POST",
        "/v1/experiments",
        &[("X-Progress", "stream")],
        Some(&body),
    );
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.chunked, "streaming uses chunked transfer encoding");
    assert_eq!(resp.header("X-Cache"), Some("miss"));
    let frames = resp.progress_frames();
    assert!(
        !frames.is_empty(),
        "at least one progress frame precedes the body"
    );
    for frame in &frames {
        let done = frame.get("done").and_then(Json::as_u64).expect("done");
        let total = frame.get("total").and_then(Json::as_u64).expect("total");
        assert!(done <= total.max(1), "frame out of range: {done}/{total}");
    }
    let report = Json::parse(&resp.final_document()).expect("final document parses");
    assert!(report
        .get("schema")
        .and_then(Json::as_str)
        .unwrap_or("")
        .starts_with("greencloud-report/"));

    // The identical spec over the same connection: a streamed cache hit —
    // one `cached` frame, then the byte-identical report.
    let resp = session.send(
        "POST",
        "/v1/experiments",
        &[("X-Progress", "stream")],
        Some(&body),
    );
    assert_eq!(resp.status, 200);
    assert!(resp.chunked);
    assert_eq!(resp.header("X-Cache"), Some("hit"));
    assert_eq!(
        resp.progress_frames()
            .first()
            .and_then(|f| f.get("kind").and_then(Json::as_str).map(str::to_string)),
        Some("cached".to_string())
    );
    assert_eq!(resp.final_document(), report.render().trim_end());

    drop(session);
    server.trigger_shutdown();
    server.join();
}

#[test]
fn drain_refuses_new_work_and_exits_cleanly() {
    let (server, addr) = start(|_| {});
    let handle = server.handle();

    let warm = http(addr, "GET", "/v1/healthz", &[], None);
    assert_eq!(warm.status, 200);

    handle.trigger_shutdown();
    let summary = server.join();
    assert_eq!(summary.server_errors, 0);
}
