//! The acceptance contract of the experiment API: an [`ExperimentSpec`]
//! serialized to JSON and replayed must reproduce the same [`Report`]
//! (modulo wall-clock fields) as the equivalent programmatic call, and the
//! engine must surface typed errors.

use greencloud_api::spec::{
    AnnualSpec, ExactSitingSpec, ExperimentSpec, SearchSpec, SitingSpec, SweepAxes, SweepMode,
    SweepSpec, TimingSpec,
};
use greencloud_api::{ApiError, Engine, ReportBody};
use greencloud_climate::catalog::WorldCatalog;
use greencloud_climate::profiles::ProfileConfig;
use greencloud_core::framework::{PlacementInput, StorageMode, TechMix, ValidationError};
use greencloud_nebula::emulation::EmulationConfig;
use greencloud_nebula::scheduler::SchedulerConfig;

/// Runs `spec` twice on `engine` — programmatically and through its JSON
/// serialization — and asserts the normalized reports agree.
fn assert_json_replay_matches(engine: &Engine, spec: &ExperimentSpec) {
    let programmatic = engine.run(spec).expect("programmatic run");
    let replayed_spec =
        ExperimentSpec::from_json_str(&spec.to_json_string()).expect("spec round-trips");
    assert_eq!(&replayed_spec, spec);
    let replayed = engine.run(&replayed_spec).expect("replayed run");
    assert_eq!(
        programmatic.normalized(),
        replayed.normalized(),
        "JSON-replayed spec must reproduce the programmatic report"
    );
}

fn tiny_emulation(hours: usize) -> EmulationConfig {
    EmulationConfig {
        vm_count: 8,
        hours,
        scheduler: SchedulerConfig {
            window_hours: 6,
            ..SchedulerConfig::default()
        },
        ..EmulationConfig::default()
    }
}

#[test]
fn siting_spec_replays_identically() {
    let engine = Engine::new(WorldCatalog::synthetic(24, 17));
    // One chain keeps the shared eval-cache counters deterministic.
    let spec = ExperimentSpec::Siting(SitingSpec {
        input: PlacementInput {
            total_capacity_mw: 20.0,
            ..PlacementInput::default()
        },
        search: SearchSpec {
            profile: ProfileConfig::coarse(),
            filter_keep: 6,
            iterations: 12,
            chains: 1,
            patience: 10,
            seed: 5,
            ..SearchSpec::default()
        },
    });
    assert_json_replay_matches(&engine, &spec);
}

#[test]
fn exact_siting_spec_replays_identically() {
    let engine = Engine::new(WorldCatalog::synthetic(16, 11));
    let spec = ExperimentSpec::ExactSiting(ExactSitingSpec {
        input: PlacementInput {
            total_capacity_mw: 20.0,
            min_green_fraction: 0.0,
            tech: TechMix::BrownOnly,
            ..PlacementInput::default()
        },
        profile: ProfileConfig::coarse(),
        filter_keep: 4,
        max_candidates: 4,
        max_sites: 3,
    });
    assert_json_replay_matches(&engine, &spec);
}

#[test]
fn annual_spec_replays_identically() {
    let engine = Engine::new(WorldCatalog::anchors_only(4));
    let spec = ExperimentSpec::Annual(AnnualSpec {
        config: tiny_emulation(10),
        include_trace: true,
    });
    assert_json_replay_matches(&engine, &spec);
}

#[test]
fn sweep_spec_replays_identically() {
    let engine = Engine::new(WorldCatalog::anchors_only(4));
    let spec = ExperimentSpec::Sweep(SweepSpec {
        base: tiny_emulation(8),
        axes: SweepAxes {
            battery_kwh: vec![5_000.0],
            forecast_sigma: vec![0.2],
            ..SweepAxes::default()
        },
        mode: SweepMode::OneAtATime,
        seed: 7,
    });
    assert_json_replay_matches(&engine, &spec);

    // The sweep expands to base + 2 single-change scenarios.
    let report = engine.run(&spec).expect("sweep runs");
    let ReportBody::Sweep(s) = &report.body else {
        panic!("sweep spec yields a sweep report");
    };
    assert_eq!(s.rows.len(), 3);
    assert_eq!(s.rows[0].name, "base");
}

#[test]
fn timing_spec_replays_identically() {
    let engine = Engine::new(WorldCatalog::anchors_only(
        greencloud_api::harness::REPRO_SEED,
    ));
    let spec = ExperimentSpec::Timing(TimingSpec {
        fast: true,
        schedule_timing: false,
        lp_records: true,
        warm_cold_rounds: 0,
    });
    assert_json_replay_matches(&engine, &spec);
}

#[test]
fn invalid_input_surfaces_as_typed_validation_error() {
    let engine = Engine::new(WorldCatalog::synthetic(12, 3));
    let spec = ExperimentSpec::Siting(SitingSpec {
        input: PlacementInput {
            min_green_fraction: 1.5,
            ..PlacementInput::default()
        },
        search: SearchSpec {
            profile: ProfileConfig::coarse(),
            ..SearchSpec::default()
        },
    });
    let err = engine.run(&spec).unwrap_err();
    assert_eq!(
        err,
        ApiError::Validation(ValidationError::GreenFractionOutOfRange(1.5))
    );
}

#[test]
fn unknown_site_surfaces_as_typed_engine_error() {
    let engine = Engine::new(WorldCatalog::anchors_only(4));
    let mut config = tiny_emulation(4);
    config.sites[0].location_name = "Atlantis".into();
    let err = engine
        .run(&ExperimentSpec::Annual(AnnualSpec {
            config,
            include_trace: false,
        }))
        .unwrap_err();
    assert_eq!(err, ApiError::Engine("unknown site Atlantis".into()));
}

#[test]
fn engine_caches_candidates_across_experiments() {
    let engine = Engine::new(WorldCatalog::synthetic(16, 9));
    let profile = ProfileConfig::coarse();
    let a = engine.candidates(&profile);
    let b = engine.candidates(&profile);
    assert!(std::sync::Arc::ptr_eq(&a, &b), "same profile, same set");
    let other = engine.candidates(&ProfileConfig::default());
    assert!(!std::sync::Arc::ptr_eq(&a, &other));
}

#[test]
fn concurrent_run_all_matches_serial_runs() {
    let engine = Engine::new(WorldCatalog::anchors_only(4)).with_threads(4);
    let specs: Vec<ExperimentSpec> = (0..4)
        .map(|k| {
            ExperimentSpec::Annual(AnnualSpec {
                config: tiny_emulation(6 + k),
                include_trace: false,
            })
        })
        .collect();
    let parallel = engine.run_all(&specs);
    for (spec, got) in specs.iter().zip(parallel) {
        let got = got.expect("parallel run");
        let serial = engine.run(spec).expect("serial run");
        assert_eq!(got.normalized(), serial.normalized());
    }
}

#[test]
fn storage_mode_spec_fields_reach_the_solver() {
    // A serialized storage mode must actually change the solve: batteries
    // at 100% green vs none is the paper's qualitative storage finding.
    let engine = Engine::new(WorldCatalog::synthetic(24, 17));
    let search = SearchSpec {
        profile: ProfileConfig::coarse(),
        filter_keep: 6,
        iterations: 12,
        chains: 1,
        patience: 10,
        seed: 5,
        ..SearchSpec::default()
    };
    let spec = |storage: StorageMode| {
        let text = ExperimentSpec::Siting(SitingSpec {
            input: PlacementInput {
                total_capacity_mw: 20.0,
                storage,
                ..PlacementInput::default()
            }
            .with_green(1.0, TechMix::Both),
            search: search.clone(),
        })
        .to_json_string();
        ExperimentSpec::from_json_str(&text).expect("parses")
    };
    let metered = engine
        .run(&spec(StorageMode::NetMetering))
        .expect("metered");
    let bare = engine.run(&spec(StorageMode::None)).expect("bare");
    let (ReportBody::Siting(m), ReportBody::Siting(b)) = (&metered.body, &bare.body) else {
        panic!("siting reports");
    };
    assert!(
        b.monthly_cost_usd > m.monthly_cost_usd,
        "storage-less 100% green must cost more (none {} vs metered {})",
        b.monthly_cost_usd,
        m.monthly_cost_usd
    );
}
