//! Shared helpers for the serve integration tests: a minimal HTTP/1.1
//! client over `TcpStream` and spec fixtures.
//!
//! Each integration test binary compiles its own copy, so helpers used by
//! only one binary look dead in the others.
#![allow(dead_code)]

use greencloud_api::json::Json;
use greencloud_api::spec::{AnnualSpec, ExperimentSpec, SearchSpec, SitingSpec};
use greencloud_api::{Engine, Router, RouterConfig, ServeConfig, Server};
use greencloud_climate::catalog::WorldCatalog;
use greencloud_climate::profiles::ProfileConfig;
use greencloud_core::framework::PlacementInput;
use greencloud_nebula::emulation::EmulationConfig;
use greencloud_nebula::scheduler::SchedulerConfig;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

pub const SEED: u64 = 20140701;

/// A fresh, collision-free path for a journal file under the system temp
/// dir. Unique per call (pid + counter) so parallel tests never share.
pub fn temp_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("gc-{tag}-{}-{n}.wal", std::process::id()))
}

/// Removes a journal and its snapshot sibling, ignoring absence.
pub fn remove_journal(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    let mut snap = path.as_os_str().to_os_string();
    snap.push(".snap");
    let _ = std::fs::remove_file(std::path::PathBuf::from(snap));
}

/// Starts a server on a fresh port over the anchors world.
pub fn start(tweak: impl FnOnce(&mut ServeConfig)) -> (Server, SocketAddr) {
    let engine = Engine::new(WorldCatalog::anchors_only(SEED));
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    };
    tweak(&mut cfg);
    let server = Server::bind(engine, cfg).expect("bind");
    let addr = server.local_addr();
    (server, addr)
}

/// Starts a router on a fresh port over already-running backends. A fast
/// probe interval keeps failure-detection latency low in tests.
pub fn start_router(
    backends: &[SocketAddr],
    tweak: impl FnOnce(&mut RouterConfig),
) -> (Router, SocketAddr) {
    let mut cfg = RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        backends: backends.iter().map(|a| a.to_string()).collect(),
        probe_interval_ms: 100,
        ..RouterConfig::default()
    };
    tweak(&mut cfg);
    let router = Router::bind(cfg).expect("router bind");
    let addr = router.local_addr();
    (router, addr)
}

/// A parsed response.
pub struct Resp {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

/// A persistent keep-alive HTTP/1.1 client: many requests over one
/// `TcpStream`, each response read by its declared framing
/// (`Content-Length` or chunked) instead of connection close.
pub struct Session {
    stream: TcpStream,
    carry: Vec<u8>,
}

/// One response off a [`Session`], framing-aware.
pub struct FramedResp {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    /// Decoded body: for chunked responses, the concatenated chunk
    /// payloads.
    pub body: String,
    /// Per-chunk payloads of a chunked response. The streaming protocol
    /// writes one JSON document per chunk (progress frames, then the
    /// final report or error), so these are the protocol messages.
    pub chunks: Vec<String>,
    /// True when the response used chunked transfer encoding.
    pub chunked: bool,
}

impl FramedResp {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The `greencloud-progress/1` frames, parsed — one per chunk.
    pub fn progress_frames(&self) -> Vec<Json> {
        self.chunks
            .iter()
            .filter_map(|c| Json::parse(c).ok())
            .filter(|d| {
                d.get("schema").and_then(Json::as_str) == Some(greencloud_api::PROGRESS_SCHEMA)
            })
            .collect()
    }

    /// The final streamed document (the report or error body), trailing
    /// whitespace trimmed.
    pub fn final_document(&self) -> String {
        self.chunks
            .last()
            .map(|c| c.trim_end().to_string())
            .unwrap_or_default()
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

impl Session {
    pub fn connect(addr: SocketAddr) -> Session {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(150)))
            .expect("read timeout");
        let _ = stream.set_nodelay(true);
        Session {
            stream,
            carry: Vec::new(),
        }
    }

    /// Sends one request (keep-alive) and reads exactly one response.
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&[u8]>,
    ) -> FramedResp {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: test\r\n");
        if let Some(b) = body {
            head.push_str(&format!("Content-Length: {}\r\n", b.len()));
        }
        for (k, v) in headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes()).expect("write head");
        if let Some(b) = body {
            self.stream.write_all(b).expect("write body");
        }
        self.stream.flush().expect("flush");
        self.read_framed()
    }

    fn fill(&mut self) {
        let mut chunk = [0u8; 8192];
        match self.stream.read(&mut chunk) {
            Ok(0) => panic!("connection closed mid-response"),
            Ok(n) => self.carry.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("session read: {e}"),
        }
    }

    fn read_framed(&mut self) -> FramedResp {
        let head_end = loop {
            if let Some(p) = find_subslice(&self.carry, b"\r\n\r\n") {
                break p + 4;
            }
            self.fill();
        };
        let head_bytes: Vec<u8> = self.carry.drain(..head_end).collect();
        let head = String::from_utf8_lossy(&head_bytes).to_string();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            .collect();
        let get = |name: &str| {
            headers
                .iter()
                .find(|(k, _)| k.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.as_str())
        };
        let chunked =
            get("transfer-encoding").is_some_and(|v| v.to_ascii_lowercase().contains("chunked"));
        let mut chunks: Vec<String> = Vec::new();
        let body = if chunked {
            let mut payload = Vec::new();
            loop {
                let line_end = loop {
                    if let Some(p) = find_subslice(&self.carry, b"\r\n") {
                        break p;
                    }
                    self.fill();
                };
                let size_text = String::from_utf8_lossy(&self.carry[..line_end]).to_string();
                let size =
                    usize::from_str_radix(size_text.split(';').next().unwrap_or("").trim(), 16)
                        .unwrap_or_else(|_| panic!("bad chunk size line {size_text:?}"));
                self.carry.drain(..line_end + 2);
                while self.carry.len() < size + 2 {
                    self.fill();
                }
                if size > 0 {
                    chunks.push(String::from_utf8_lossy(&self.carry[..size]).to_string());
                }
                payload.extend_from_slice(&self.carry[..size]);
                self.carry.drain(..size + 2);
                if size == 0 {
                    break;
                }
            }
            String::from_utf8_lossy(&payload).to_string()
        } else {
            let len = get("content-length")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(0);
            while self.carry.len() < len {
                self.fill();
            }
            let body_bytes: Vec<u8> = self.carry.drain(..len).collect();
            String::from_utf8_lossy(&body_bytes).to_string()
        };
        FramedResp {
            status,
            headers,
            body,
            chunks,
            chunked,
        }
    }
}

impl Resp {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    pub fn json(&self) -> Json {
        Json::parse(&self.body).expect("response body parses as JSON")
    }

    pub fn code(&self) -> Option<String> {
        self.json()
            .get("code")
            .and_then(Json::as_str)
            .map(str::to_string)
    }
}

/// Sends one request and reads the full response (Connection: close).
pub fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&[u8]>,
) -> Resp {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(150)))
        .expect("read timeout");
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n");
    if let Some(b) = body {
        head.push_str(&format!("Content-Length: {}\r\n", b.len()));
    }
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes()).expect("write head");
    if let Some(b) = body {
        stream.write_all(b).expect("write body");
    }
    stream.flush().expect("flush");
    read_response(&mut stream)
}

/// Sends raw bytes and reads whatever comes back (for malformed HTTP).
pub fn http_raw(addr: SocketAddr, raw: &[u8]) -> Resp {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(150)))
        .expect("read timeout");
    stream.write_all(raw).expect("write raw");
    stream.flush().expect("flush");
    read_response(&mut stream)
}

fn read_response(stream: &mut TcpStream) -> Resp {
    let mut raw = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) => {
                assert!(!raw.is_empty(), "read error before any response: {e}");
                break;
            }
        }
    }
    let text = String::from_utf8_lossy(&raw).to_string();
    let (head, body) = text.split_once("\r\n\r\n").unwrap_or((text.as_str(), ""));
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect();
    Resp {
        status,
        headers,
        body: body.to_string(),
    }
}

/// Connects, sends the full request, then hangs up without reading — the
/// server should detect the vanished client and cancel the solve.
pub fn post_and_vanish(addr: SocketAddr, body: &[u8]) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "POST /v1/experiments HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nCache-Control: no-cache\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    stream.flush().expect("flush");
    drop(stream);
}

/// A small, fast annual spec; `start_hour` makes specs distinct.
pub fn annual_spec(hours: usize, vm_count: u32, start_hour: usize) -> ExperimentSpec {
    ExperimentSpec::Annual(AnnualSpec {
        config: EmulationConfig {
            vm_count,
            hours,
            start_hour,
            scheduler: SchedulerConfig {
                window_hours: 6,
                ..SchedulerConfig::default()
            },
            ..EmulationConfig::default()
        },
        include_trace: false,
    })
}

/// A small deterministic siting spec (exercises the candidate cache).
pub fn siting_spec() -> ExperimentSpec {
    ExperimentSpec::Siting(SitingSpec {
        input: PlacementInput {
            total_capacity_mw: 20.0,
            ..PlacementInput::default()
        },
        search: SearchSpec {
            profile: ProfileConfig::coarse(),
            filter_keep: 4,
            iterations: 8,
            chains: 1,
            patience: 6,
            seed: SEED,
            ..SearchSpec::default()
        },
    })
}

/// JSON-level equivalent of `Report::normalized` for annual and siting
/// reports: zeroes every `wall_ms` / `pricing_ms` field, re-renders.
pub fn normalize_report_json(body: &str) -> String {
    let mut doc = Json::parse(body).expect("report parses");
    zero_clock_fields(&mut doc);
    doc.render()
}

fn zero_clock_fields(doc: &mut Json) {
    match doc {
        Json::Object(fields) => {
            for (k, v) in fields.iter_mut() {
                if k == "wall_ms" || k == "pricing_ms" {
                    *v = Json::Number(0.0);
                } else {
                    zero_clock_fields(v);
                }
            }
        }
        Json::Array(items) => {
            for v in items.iter_mut() {
                zero_clock_fields(v);
            }
        }
        _ => {}
    }
}
