//! The `greencloud-report/1` JSON layout is a contract: dashboards and
//! cross-PR diffing parse it. These golden-file tests pin the exact bytes
//! produced for hand-built reports of every body type; any schema change
//! must bump [`REPORT_SCHEMA`] and regenerate the goldens deliberately
//! (`GC_WRITE_GOLDEN=1 cargo test -p greencloud-api --test report_golden`).

use greencloud_api::report::{
    AnnualReport, BreakdownReport, Report, ReportBody, SiteReport, SitingReport, SolverRollup,
    SweepReport, SweepRow, TimingRecord, TimingReport, TraceRowReport, WarmVsCold,
};
use greencloud_api::REPORT_SCHEMA;
use greencloud_nebula::faults::ResilienceReport;

fn check(report: &Report, golden_path: &str, golden: &str) {
    let actual = report.to_json_string();
    if std::env::var_os("GC_WRITE_GOLDEN").is_some() {
        let path = format!("{}/tests/golden/{golden_path}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    assert!(actual.contains(REPORT_SCHEMA));
    assert_eq!(
        actual, golden,
        "report JSON layout changed; if intentional, bump the schema and \
         regenerate with GC_WRITE_GOLDEN=1"
    );
}

fn rollup() -> SolverRollup {
    SolverRollup {
        solves: 120,
        iterations: 4521,
        refactorizations: 17,
        ftrans: 9000,
        btrans: 8800,
        warm_rate: 0.9375,
        pricing_ms: 12.5,
    }
}

#[test]
fn siting_report_layout_is_stable() {
    let report = Report {
        experiment: "siting".into(),
        wall_ms: 1234.5,
        body: ReportBody::Siting(SitingReport {
            monthly_cost_usd: 9_500_000.0,
            green_fraction: 0.5,
            total_capacity_mw: 50.0,
            evaluations: 120,
            sites: vec![SiteReport {
                name: "Harare, Zimbabwe".into(),
                size_class: "large".into(),
                capacity_mw: 25.0,
                solar_mw: 180.25,
                wind_mw: 0.0,
                batt_mwh: 12.5,
                monthly_cost_usd: 4_750_000.0,
                green_fraction: 0.625,
                breakdown: BreakdownReport {
                    building_dc: 1_000_000.0,
                    it_equipment: 2_000_000.0,
                    land: 50_000.0,
                    plants: 1_200_000.0,
                    batteries: 100_000.0,
                    connections: 75_000.0,
                    bandwidth: 25_000.0,
                    energy: 300_000.0,
                },
            }],
            solver: Some(rollup()),
        }),
    };
    check(
        &report,
        "siting_report.json",
        include_str!("golden/siting_report.json"),
    );
}

#[test]
fn annual_report_layout_is_stable() {
    let report = Report {
        experiment: "annual".into(),
        wall_ms: 987.0,
        body: ReportBody::Annual(AnnualReport {
            hours: 24,
            trace_rows: 72,
            green_fraction: 0.875,
            brown_mwh: 150.0,
            demand_mwh: 1200.0,
            migrations: 42,
            migrated_gb: 512.25,
            mean_migration_hours: 0.75,
            peak_inflight_migrations: 6,
            rereplicated_blocks: 321,
            battery_in_mwh: 80.0,
            battery_out_mwh: 60.0,
            net_pushed_mwh: 200.0,
            net_drawn_mwh: 120.0,
            energy_settlement_usd: 54_321.0,
            rebuilds: 1,
            solver: rollup(),
            resilience: Some(Box::new(ResilienceReport {
                fault_events: 6,
                site_outages: 2,
                grid_outages: 1,
                wan_outages: 0,
                forecast_shocks: 0,
                site_down_hours: 9.0,
                vm_downtime_hours: 36.5,
                shed_vm_hours: 4.0,
                evacuations: 120,
                evacuated_gb: 384.5,
                recoveries: 120,
                mean_recovery_hours: 1.25,
                slo_attainment: 0.9746,
                unserved_mwh: 12.5,
                incident_brown_mwh: 7.75,
                incident_cost_usd: 930.0,
            })),
            trace: vec![TraceRowReport {
                hour: 0,
                dc: 2,
                green_available_mw: 310.5,
                load_mw: 50.0,
                pue_overhead_mw: 5.25,
                migration_mw: 0.5,
                brown_mw: 0.0,
            }],
        }),
    };
    check(
        &report,
        "annual_report.json",
        include_str!("golden/annual_report.json"),
    );
}

#[test]
fn sweep_and_timing_layouts_are_stable() {
    let sweep = Report {
        experiment: "sweep".into(),
        wall_ms: 55.0,
        body: ReportBody::Sweep(SweepReport {
            rows: vec![SweepRow {
                name: "batt=50000kWh".into(),
                hours: 672,
                green_fraction: 0.9,
                brown_mwh: 99.5,
                demand_mwh: 995.0,
                migrations: 100,
                battery_out_mwh: 44.0,
                net_drawn_mwh: 0.0,
                warm_rate: 0.99,
                lp_iterations: 1234,
                slo_attainment: 0.9875,
                vm_downtime_hours: 84.0,
            }],
        }),
    };
    check(
        &sweep,
        "sweep_report.json",
        include_str!("golden/sweep_report.json"),
    );

    let timing = Report {
        experiment: "timing".into(),
        wall_ms: 2000.0,
        body: ReportBody::Timing(TimingReport {
            schedule_ms: vec![("50 MW".into(), 8.5)],
            records: vec![TimingRecord {
                name: "single_site_cold/devex".into(),
                wall_ms: 3.25,
                iterations: 591,
                warm_rate: 0.0,
            }],
            warm_vs_cold: Some(WarmVsCold {
                rounds: 96,
                warm_ms: 50.0,
                cold_ms: 265.0,
                warm_rate: 0.99,
            }),
        }),
    };
    check(
        &timing,
        "timing_report.json",
        include_str!("golden/timing_report.json"),
    );
}

#[test]
fn normalized_reports_zero_only_wall_clock_fields() {
    let timing = Report {
        experiment: "timing".into(),
        wall_ms: 2000.0,
        body: ReportBody::Timing(TimingReport {
            schedule_ms: vec![("50 MW".into(), 8.5)],
            records: vec![TimingRecord {
                name: "r".into(),
                wall_ms: 3.25,
                iterations: 591,
                warm_rate: 0.5,
            }],
            warm_vs_cold: Some(WarmVsCold {
                rounds: 96,
                warm_ms: 50.0,
                cold_ms: 265.0,
                warm_rate: 0.99,
            }),
        }),
    };
    let n = timing.normalized();
    assert_eq!(n.wall_ms, 0.0);
    let ReportBody::Timing(t) = &n.body else {
        unreachable!()
    };
    assert_eq!(t.schedule_ms[0].1, 0.0);
    assert_eq!(t.records[0].wall_ms, 0.0);
    assert_eq!(
        t.records[0].iterations, 591,
        "iterations are not wall clock"
    );
    assert_eq!(t.warm_vs_cold.unwrap().warm_ms, 0.0);
    assert_eq!(t.warm_vs_cold.unwrap().warm_rate, 0.99);
}
