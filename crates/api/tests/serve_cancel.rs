//! Satellite: concurrent cancellation does not corrupt shared state.
//!
//! Pushes N distinct specs through the serve queue, disconnects half the
//! clients mid-solve, and asserts that (a) survivors' reports are
//! byte-identical (after clock normalization) to a serial run on an
//! identically-seeded engine, (b) the candidate cache and report LRU keep
//! serving correct bytes afterwards, and (c) the summary accounts every
//! request with no 5xx.

mod common;

use common::{annual_spec, http, normalize_report_json, post_and_vanish, siting_spec, start, SEED};
use greencloud_api::Engine;
use greencloud_climate::catalog::WorldCatalog;
use std::thread;
use std::time::Duration;

#[test]
fn disconnect_storm_leaves_caches_and_results_intact() {
    let (server, addr) = start(|cfg| {
        cfg.max_inflight = 2;
        cfg.queue_depth = 16;
        cfg.cache_capacity = 32;
        cfg.default_deadline_ms = 120_000;
    });

    // Prime the engine's candidate cache with a siting run and keep its
    // normalized bytes as the corruption probe.
    let siting_body = siting_spec().to_json_string().into_bytes();
    let probe = http(addr, "POST", "/v1/experiments", &[], Some(&siting_body));
    assert_eq!(probe.status, 200, "siting probe: {}", probe.body);
    let probe_normalized = normalize_report_json(&probe.body);

    // Eight distinct annual specs: even indices are survivors whose bodies
    // we keep, odd indices vanish shortly after posting.
    let specs: Vec<_> = (0..8).map(|i| annual_spec(720, 8, i * 900)).collect();
    let mut clients = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let body = spec.to_json_string().into_bytes();
        clients.push(thread::spawn(move || {
            if i % 2 == 1 {
                post_and_vanish(addr, &body);
                None
            } else {
                let resp = http(addr, "POST", "/v1/experiments", &[], Some(&body));
                assert_eq!(resp.status, 200, "survivor {i}: {}", resp.body);
                Some(resp.body)
            }
        }));
    }
    let survivor_bodies: Vec<Option<String>> = clients
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();

    // Give the watchdog/workers time to notice the vanished clients so the
    // summary below reflects them.
    thread::sleep(Duration::from_millis(300));

    // (a) Survivors match a serial run on a fresh, identically-seeded
    // engine, byte for byte after zeroing wall-clock fields.
    let serial = Engine::new(WorldCatalog::anchors_only(SEED));
    for (i, body) in survivor_bodies.iter().enumerate() {
        let Some(body) = body else { continue };
        let report = serial.run(&specs[i]).expect("serial run");
        assert_eq!(
            normalize_report_json(body),
            normalize_report_json(&report.to_json_string()),
            "survivor {i} diverged from the serial run"
        );
    }

    // (b) The engine's candidate cache still yields the same siting answer
    // (no-cache forces a fresh solve through the shared candidate state).
    let recheck = http(
        addr,
        "POST",
        "/v1/experiments",
        &[("Cache-Control", "no-cache")],
        Some(&siting_body),
    );
    assert_eq!(recheck.status, 200);
    assert_eq!(
        normalize_report_json(&recheck.body),
        probe_normalized,
        "candidate cache corrupted by concurrent cancellation"
    );

    // ...and the report LRU still returns byte-identical bodies for a
    // survivor spec.
    if let Some((i, Some(body))) = survivor_bodies
        .iter()
        .enumerate()
        .find(|(_, b)| b.is_some())
        .map(|(i, b)| (i, b.clone()))
    {
        let cached = http(
            addr,
            "POST",
            "/v1/experiments",
            &[],
            Some(&specs[i].to_json_string().into_bytes()),
        );
        assert_eq!(cached.status, 200);
        assert_eq!(cached.header("X-Cache"), Some("hit"));
        assert_eq!(cached.body, body, "report LRU corrupted");
    }

    // (c) Clean books: no 5xx anywhere; the vanished clients surfaced as
    // disconnect cancellations (or finished before detection — both fine,
    // but at least one of the four should be caught by the prober).
    server.trigger_shutdown();
    let summary = server.join();
    assert_eq!(summary.server_errors, 0, "summary: {summary:?}");
    assert!(
        summary.ok >= 6,
        "probe + survivors + recheck must all be 200s: {summary:?}"
    );
    assert!(
        summary.disconnects >= 1,
        "at least one vanished client must be detected: {summary:?}"
    );
}
