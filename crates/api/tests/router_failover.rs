//! Failover integration tests: one of two backends dies mid-burst and
//! every acknowledged job still reaches a terminal state with a
//! byte-identical report, whichever backend ends up running it.

mod common;

use common::{
    annual_spec, http, normalize_report_json, remove_journal, start, start_router, temp_path,
};
use greencloud_api::json::Json;
use greencloud_api::{Engine, ServeConfig, Server};
use greencloud_climate::catalog::WorldCatalog;
use std::time::{Duration, Instant};

/// Polls `GET /v1/jobs/:id` through the router until the job is terminal;
/// returns the completed report body. Tolerates transient 404s — while a
/// restarted owner is still marked down, lookups may briefly reach only
/// the other backend.
fn wait_completed(router: std::net::SocketAddr, id: &str, budget_ms: u64) -> String {
    let deadline = Instant::now() + Duration::from_millis(budget_ms);
    loop {
        assert!(
            Instant::now() < deadline,
            "job {id} did not complete within {budget_ms} ms"
        );
        let resp = http(router, "GET", &format!("/v1/jobs/{id}"), &[], None);
        match resp.status {
            200 => {
                let doc = resp.json();
                if doc.get("schema").and_then(Json::as_str) != Some("greencloud-job/1") {
                    return resp.body;
                }
                match doc.get("status").and_then(Json::as_str) {
                    Some("failed") | Some("cancelled") => {
                        panic!("job {id} ended abnormally: {}", resp.body)
                    }
                    _ => {}
                }
            }
            404 | 503 => {}
            other => panic!("job {id}: unexpected status {other}: {}", resp.body),
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Waits until the router's readyz reports `n` live backends.
fn wait_backends_up(router: std::net::SocketAddr, n: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "probe never saw {n} backends up");
        let resp = http(router, "GET", "/v1/readyz", &[], None);
        if resp.status == 200 && resp.json().get("backends_up").and_then(Json::as_u64) == Some(n) {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The headline failover scenario: jobs are acknowledged through the
/// router against two durable backends, backend A goes dark mid-burst,
/// later submissions fail over to B, A is restarted over its journal, and
/// *every* acknowledged job completes with a report byte-identical to a
/// fresh reference solve.
#[test]
fn backend_death_mid_burst_loses_no_acknowledged_job() {
    let journal_a = temp_path("failover-a");
    let journal_b = temp_path("failover-b");
    remove_journal(&journal_a);
    remove_journal(&journal_b);

    let (server_a, addr_a) = start(|cfg| {
        cfg.journal_path = Some(journal_a.to_string_lossy().to_string());
        cfg.default_deadline_ms = 120_000;
    });
    let (server_b, addr_b) = start(|cfg| {
        cfg.journal_path = Some(journal_b.to_string_lossy().to_string());
        cfg.default_deadline_ms = 120_000;
    });
    let (router, router_addr) = start_router(&[addr_a, addr_b], |_| {});

    // Phase 1: acknowledge a first wave of distinct jobs across the ring.
    let mut acknowledged: Vec<String> = Vec::new();
    let mut specs: Vec<Vec<u8>> = Vec::new();
    for i in 0..4u64 {
        let spec = annual_spec(48, 4, (i * 24) as usize)
            .to_json_string()
            .into_bytes();
        let ack = http(router_addr, "POST", "/v1/jobs", &[], Some(&spec));
        assert_eq!(ack.status, 202, "wave 1 job {i}: {}", ack.body);
        let id = ack
            .json()
            .get("job_id")
            .and_then(Json::as_str)
            .map(str::to_string)
            .expect("job_id");
        acknowledged.push(id);
        specs.push(spec);
    }

    // Mid-burst: backend A dies. Its journal keeps whatever it owned.
    server_a.trigger_shutdown();
    server_a.join();

    // Phase 2: more submissions while A is dark — every one must still be
    // acknowledged (jobs owned by A fail over to B).
    for i in 4..8u64 {
        let spec = annual_spec(48, 4, (i * 24) as usize)
            .to_json_string()
            .into_bytes();
        let ack = http(router_addr, "POST", "/v1/jobs", &[], Some(&spec));
        assert_eq!(ack.status, 202, "wave 2 job {i}: {}", ack.body);
        let id = ack
            .json()
            .get("job_id")
            .and_then(Json::as_str)
            .map(str::to_string)
            .expect("job_id");
        acknowledged.push(id);
        specs.push(spec);
    }

    // A restarts on its old address over its old journal: unfinished jobs
    // are recovered and re-run.
    let engine = Engine::new(WorldCatalog::anchors_only(common::SEED));
    let cfg = ServeConfig {
        addr: addr_a.to_string(),
        journal_path: Some(journal_a.to_string_lossy().to_string()),
        default_deadline_ms: 120_000,
        ..ServeConfig::default()
    };
    let server_a = Server::bind(engine, cfg).expect("rebind backend A");
    wait_backends_up(router_addr, 2);

    // Every acknowledged job reaches `completed`, and the stored report is
    // byte-identical to a fresh no-cache reference solve of the same spec.
    for (id, spec) in acknowledged.iter().zip(&specs) {
        let report = wait_completed(router_addr, id, 120_000);
        let reference = http(
            router_addr,
            "POST",
            "/v1/experiments",
            &[("Cache-Control", "no-cache")],
            Some(spec),
        );
        assert_eq!(
            reference.status, 200,
            "reference for {id}: {}",
            reference.body
        );
        assert_eq!(
            normalize_report_json(&report),
            normalize_report_json(&reference.body),
            "job {id}: recovered report differs from the reference solve"
        );
    }

    router.trigger_shutdown();
    let summary = router.join();
    assert_eq!(summary.aborted_relays, 0);

    server_a.trigger_shutdown();
    server_a.join();
    server_b.trigger_shutdown();
    server_b.join();
    remove_journal(&journal_a);
    remove_journal(&journal_b);
}

/// When every backend is dark the router answers 503 with the typed
/// `no_backends` body and a Retry-After hint — and recovers on its own
/// once a backend returns.
#[test]
fn all_dark_is_a_typed_503_and_recovery_is_automatic() {
    let (server, server_addr) = start(|_| {});
    let (router, router_addr) = start_router(&[server_addr], |_| {});
    let spec = annual_spec(48, 4, 5_000).to_json_string().into_bytes();

    server.trigger_shutdown();
    server.join();

    let resp = http(router_addr, "POST", "/v1/experiments", &[], Some(&spec));
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert_eq!(resp.code().as_deref(), Some("no_backends"));
    assert_eq!(resp.header("Retry-After"), Some("1"));

    // A replacement backend on the same address brings the ring back.
    let engine = Engine::new(WorldCatalog::anchors_only(common::SEED));
    let cfg = ServeConfig {
        addr: server_addr.to_string(),
        ..ServeConfig::default()
    };
    let server = Server::bind(engine, cfg).expect("rebind backend");
    wait_backends_up(router_addr, 1);
    let resp = http(router_addr, "POST", "/v1/experiments", &[], Some(&spec));
    assert_eq!(resp.status, 200, "{}", resp.body);

    router.trigger_shutdown();
    router.join();
    server.trigger_shutdown();
    server.join();
}
