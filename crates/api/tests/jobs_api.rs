//! Tentpole: the durable job API end to end over HTTP.
//!
//! Covers the full lifecycle (`POST /v1/jobs` → 202 → poll →
//! completed report identical to a synchronous solve), idempotent
//! resubmission under the content-derived id, cancellation via `DELETE`
//! with its 404/409 edges, the typed 400 for malformed `X-Deadline-Ms`
//! (satellite), `/v1/stats` job counters (satellite), and — the point of
//! the PR — restart recovery: a journal written by one server instance is
//! replayed by the next, completed reports come back byte-identical, and
//! jobs that kept crashing are failed terminally as `retries_exhausted`
//! instead of being redelivered forever.

mod common;

use common::{
    annual_spec, http, normalize_report_json, remove_journal, start, temp_path, Resp, SEED,
};
use greencloud_api::json::Json;
use greencloud_api::{Engine, JobStore, ServeConfig, Server};
use greencloud_climate::catalog::WorldCatalog;
use std::net::SocketAddr;
use std::thread;
use std::time::Duration;

/// Polls `GET /v1/jobs/:id` until `X-Job-Status` is terminal, then
/// returns the final response. Panics after `budget_ms`.
fn wait_terminal(addr: SocketAddr, id: &str, budget_ms: u64) -> Resp {
    let mut waited = 0u64;
    loop {
        let resp = http(addr, "GET", &format!("/v1/jobs/{id}"), &[], None);
        assert_eq!(resp.status, 200, "poll {id}: {}", resp.body);
        let status = resp
            .header("X-Job-Status")
            .unwrap_or_else(|| panic!("poll {id}: no X-Job-Status header"))
            .to_string();
        if matches!(status.as_str(), "completed" | "failed" | "cancelled") {
            return resp;
        }
        assert!(
            waited < budget_ms,
            "job {id} not terminal after {budget_ms} ms"
        );
        thread::sleep(Duration::from_millis(100));
        waited += 100;
    }
}

fn submit(addr: SocketAddr, body: &[u8]) -> (u16, String, Json) {
    let resp = http(addr, "POST", "/v1/jobs", &[], Some(body));
    let doc = resp.json();
    let id = doc
        .get("job_id")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    (resp.status, id, doc)
}

#[test]
fn job_completes_and_report_matches_synchronous_solve() {
    let (server, addr) = start(|cfg| {
        cfg.default_deadline_ms = 120_000;
    });
    let body = annual_spec(48, 4, 0).to_json_string().into_bytes();

    let resp = http(addr, "POST", "/v1/jobs", &[], Some(&body));
    assert_eq!(resp.status, 202, "{}", resp.body);
    let ack = resp.json();
    assert_eq!(
        ack.get("schema").and_then(Json::as_str),
        Some("greencloud-job/1")
    );
    let id = ack
        .get("job_id")
        .and_then(Json::as_str)
        .expect("202 carries job_id")
        .to_string();
    assert_eq!(id.len(), 32, "content-derived id is 32 hex chars: {id}");
    assert_eq!(
        resp.header("Location"),
        Some(format!("/v1/jobs/{id}").as_str())
    );

    let done = wait_terminal(addr, &id, 120_000);
    assert_eq!(
        done.header("X-Job-Status"),
        Some("completed"),
        "{}",
        done.body
    );

    // The job's report must match a synchronous solve of the same spec,
    // byte for byte once clocks are zeroed.
    let sync = http(
        addr,
        "POST",
        "/v1/experiments",
        &[("Cache-Control", "no-cache")],
        Some(&body),
    );
    assert_eq!(sync.status, 200, "{}", sync.body);
    assert_eq!(
        normalize_report_json(&done.body),
        normalize_report_json(&sync.body)
    );

    // DELETE on a terminal job is a conflict, not a cancellation.
    let del = http(addr, "DELETE", &format!("/v1/jobs/{id}"), &[], None);
    assert_eq!(del.status, 409, "{}", del.body);
    assert_eq!(del.code().as_deref(), Some("job_terminal"));

    server.trigger_shutdown();
    server.join();
}

#[test]
fn resubmission_is_idempotent_and_unknown_ids_are_404() {
    let (server, addr) = start(|cfg| {
        cfg.default_deadline_ms = 120_000;
    });
    let body = annual_spec(48, 4, 24).to_json_string().into_bytes();

    let (s1, id1, _) = submit(addr, &body);
    assert_eq!(s1, 202);
    let (s2, id2, _) = submit(addr, &body);
    assert_eq!(s2, 202, "resubmitting the same spec is acknowledged again");
    assert_eq!(id1, id2, "the id is derived from the spec content");

    // A different spec gets a different id.
    let other = annual_spec(48, 4, 48).to_json_string().into_bytes();
    let (_, id3, _) = submit(addr, &other);
    assert_ne!(id1, id3);

    let missing = http(
        addr,
        "GET",
        "/v1/jobs/feedfacefeedfacefeedfacefeedface",
        &[],
        None,
    );
    assert_eq!(missing.status, 404);
    assert_eq!(missing.code().as_deref(), Some("job_not_found"));
    let missing = http(
        addr,
        "DELETE",
        "/v1/jobs/feedfacefeedfacefeedfacefeedface",
        &[],
        None,
    );
    assert_eq!(missing.status, 404);

    wait_terminal(addr, &id1, 120_000);
    wait_terminal(addr, &id3, 120_000);
    server.trigger_shutdown();
    server.join();
}

#[test]
fn delete_cancels_a_queued_job() {
    // One worker: the first (slow) job occupies it while the second sits
    // in the queue, where DELETE must reach it before it ever starts.
    let (server, addr) = start(|cfg| {
        cfg.max_inflight = 1;
        cfg.default_deadline_ms = 120_000;
    });
    let slow = annual_spec(720, 8, 0).to_json_string().into_bytes();
    let queued = annual_spec(720, 8, 1000).to_json_string().into_bytes();

    let (s1, slow_id, _) = submit(addr, &slow);
    assert_eq!(s1, 202);
    let (s2, queued_id, _) = submit(addr, &queued);
    assert_eq!(s2, 202);

    let del = http(addr, "DELETE", &format!("/v1/jobs/{queued_id}"), &[], None);
    assert_eq!(del.status, 200, "{}", del.body);
    let done = wait_terminal(addr, &queued_id, 120_000);
    let doc = done.json();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("cancelled"));
    assert!(doc.get("cancel_reason").and_then(Json::as_str).is_some());

    // The slow job is unaffected by its neighbor's cancellation.
    let done = wait_terminal(addr, &slow_id, 180_000);
    assert_eq!(done.header("X-Job-Status"), Some("completed"));

    server.trigger_shutdown();
    server.join();
}

#[test]
fn malformed_deadline_header_is_a_typed_400() {
    let (server, addr) = start(|_| {});
    let body = annual_spec(24, 4, 0).to_json_string().into_bytes();

    for bad in ["banana", "-5", "12.5", "1e3"] {
        for path in ["/v1/experiments", "/v1/jobs"] {
            let resp = http(addr, "POST", path, &[("X-Deadline-Ms", bad)], Some(&body));
            assert_eq!(
                resp.status, 400,
                "{path} with X-Deadline-Ms: {bad}: {}",
                resp.body
            );
            assert_eq!(
                resp.code().as_deref(),
                Some("deadline_invalid"),
                "{path} with {bad}"
            );
            assert_eq!(
                resp.json().get("schema").and_then(Json::as_str),
                Some("greencloud-error/1")
            );
        }
    }

    server.trigger_shutdown();
    server.join();
}

#[test]
fn restart_serves_completed_reports_byte_identical() {
    let journal = temp_path("restart");
    remove_journal(&journal);
    let journal_str = journal.to_string_lossy().to_string();
    let body = annual_spec(48, 4, 72).to_json_string().into_bytes();

    let (server, addr) = start(|cfg| {
        cfg.journal_path = Some(journal_str.clone());
        cfg.default_deadline_ms = 120_000;
    });
    let (status, id, _) = submit(addr, &body);
    assert_eq!(status, 202);
    let first = wait_terminal(addr, &id, 120_000);
    assert_eq!(first.header("X-Job-Status"), Some("completed"));
    server.trigger_shutdown();
    server.join();

    // A second instance over the same journal serves the identical bytes
    // without re-running anything.
    let (server, addr) = start(|cfg| {
        cfg.journal_path = Some(journal_str.clone());
    });
    let resp = http(addr, "GET", &format!("/v1/jobs/{id}"), &[], None);
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("X-Job-Status"), Some("completed"));
    assert_eq!(
        resp.body, first.body,
        "recovered report must be byte-identical"
    );

    // The warmed report cache also answers the synchronous endpoint.
    let sync = http(addr, "POST", "/v1/experiments", &[], Some(&body));
    assert_eq!(sync.status, 200);
    assert_eq!(
        sync.header("X-Cache"),
        Some("hit"),
        "recovery warms the LRU"
    );

    server.trigger_shutdown();
    server.join();
    remove_journal(&journal);
}

#[test]
fn restart_runs_accepted_jobs_and_exhausts_crashlooping_ones() {
    let journal = temp_path("recover");
    remove_journal(&journal);
    let runnable = annual_spec(24, 4, 96).to_json_string();
    let crashloop = annual_spec(24, 4, 120).to_json_string();

    // Craft the journal a crashed server would leave behind: one job
    // acknowledged but never started, one started three times without
    // ever finishing.
    let mut store = JobStore::open(&journal).expect("open journal");
    let (run_id, _) = store.accept(&runnable).expect("accept runnable");
    let (crash_id, _) = store.accept(&crashloop).expect("accept crashloop");
    for _ in 0..3 {
        store.start(&crash_id).expect("start crashloop");
    }
    drop(store);

    let engine = Engine::new(WorldCatalog::anchors_only(SEED));
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        journal_path: Some(journal.to_string_lossy().to_string()),
        max_redeliveries: 3,
        default_deadline_ms: 120_000,
        ..ServeConfig::default()
    };
    let server = Server::bind(engine, cfg).expect("bind");
    let addr = server.local_addr();

    // The never-started job is redelivered and completes.
    let done = wait_terminal(addr, &run_id, 120_000);
    assert_eq!(
        done.header("X-Job-Status"),
        Some("completed"),
        "{}",
        done.body
    );

    // The crash-looping job burned its three attempts: terminally failed
    // at startup, never run again.
    let failed = wait_terminal(addr, &crash_id, 10_000);
    let doc = failed.json();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("failed"));
    assert_eq!(
        doc.get("error_code").and_then(Json::as_str),
        Some("retries_exhausted")
    );
    assert_eq!(
        doc.get("attempts").and_then(Json::as_u64),
        Some(3),
        "no further delivery after exhaustion"
    );

    server.trigger_shutdown();
    server.join();
    remove_journal(&journal);
}

#[test]
fn stats_expose_job_store_counters() {
    let journal = temp_path("stats");
    remove_journal(&journal);
    let (server, addr) = start(|cfg| {
        cfg.journal_path = Some(journal.to_string_lossy().to_string());
        cfg.default_deadline_ms = 120_000;
    });
    let body = annual_spec(24, 4, 144).to_json_string().into_bytes();
    let (status, id, _) = submit(addr, &body);
    assert_eq!(status, 202);
    wait_terminal(addr, &id, 120_000);

    let stats = http(addr, "GET", "/v1/stats", &[], None).json();
    let field = |k: &str| {
        stats
            .get(k)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("stats field {k}"))
    };
    assert_eq!(field("jobs_total"), 1);
    assert_eq!(field("jobs_completed"), 1);
    assert_eq!(field("jobs_live"), 0);
    assert_eq!(field("jobs_failed"), 0);
    assert_eq!(field("jobs_cancelled"), 0);
    assert!(
        field("journal_bytes") > 0,
        "the journal holds the job's records"
    );

    server.trigger_shutdown();
    server.join();
    remove_journal(&journal);
}
