//! A minimal JSON document model shared by the spec and report layers.
//!
//! The vendored dependency set has no `serde_json`, so the experiment API
//! serializes through this hand-rolled value model: a recursive-descent
//! reader (grown out of the `BENCH_lp.json` round-trip validator, which now
//! reuses it) plus a deterministic writer. Object fields preserve insertion
//! order, numbers render via Rust's shortest round-trippable `Display`, and
//! the writer emits the same bytes for the same value on every platform —
//! the property the `greencloud-report/1` golden test pins down.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; fields keep insertion order (serialization is stable).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first structural problem found.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let doc = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.at));
        }
        Ok(doc)
    }

    /// Renders the value as a pretty-printed document (2-space indent,
    /// trailing newline) with a stable byte-for-byte layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(x) => {
                // JSON has no NaN/Inf; a non-finite stat (e.g. a rate over
                // zero rounds) degrades to null rather than corrupting the
                // document.
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => out.push_str(&quote(s)),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                    if i + 1 != items.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push('\n');
                    indent(out, depth + 1);
                    out.push_str(&quote(k));
                    out.push_str(": ");
                    v.write(out, depth + 1);
                    if i + 1 != fields.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Looks up a field of an object (`None` for missing keys or
    /// non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= usize::MAX as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer. Seeds above
    /// 2^53 are not representable in JSON numbers; the spec layer documents
    /// this limit.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= (1u64 << 53) as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object from `(key, value)` pairs (insertion order kept).
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Number(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Self {
        Json::Number(x as f64)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Self {
        Json::Number(x as f64)
    }
}

impl From<u32> for Json {
    fn from(x: u32) -> Self {
        Json::Number(f64::from(x))
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Self {
        Json::Array(items)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Quotes and escapes a JSON string literal.
pub fn quote(s: &str) -> String {
    let mut q = String::with_capacity(s.len() + 2);
    q.push('"');
    for c in s.chars() {
        match c {
            '"' => q.push_str("\\\""),
            '\\' => q.push_str("\\\\"),
            '\n' => q.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(q, "\\u{:04x}", c as u32);
            }
            c => q.push(c),
        }
    }
    q.push('"');
    q
}

/// A minimal recursive-descent JSON reader.
struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}",
                char::from(b),
                self.at
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.at += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    /// Reads the four hex digits starting at `at` (one code unit of a
    /// `\u` escape).
    fn hex4(&self, at: usize) -> Result<u32, String> {
        let hex = self.bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
        std::str::from_utf8(hex)
            .ok()
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| "bad \\u escape".to_string())
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let code = self.hex4(self.at + 1)?;
                            self.at += 4;
                            // UTF-16 surrogate pair: a high surrogate must
                            // combine with a following `\uDC00..\uDFFF`
                            // escape (how standard serializers encode
                            // astral-plane characters). Lone or mismatched
                            // surrogates degrade to U+FFFD.
                            if (0xd800..0xdc00).contains(&code) {
                                if self.bytes.get(self.at + 1) == Some(&b'\\')
                                    && self.bytes.get(self.at + 2) == Some(&b'u')
                                {
                                    let low = self.hex4(self.at + 3)?;
                                    if (0xdc00..0xe000).contains(&low) {
                                        self.at += 6;
                                        let combined =
                                            0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                        out.push(char::from_u32(combined).unwrap_or('\u{fffd}'));
                                    } else {
                                        out.push('\u{fffd}');
                                    }
                                } else {
                                    out.push('\u{fffd}');
                                }
                            } else {
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                        }
                        _ => return Err(format!("bad escape at offset {}", self.at)),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let s = &self.bytes[self.at..];
                    let ch_len = match s[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xf0 => 4,
                        b if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    out.push_str(
                        std::str::from_utf8(&s[..ch_len.min(s.len())])
                            .map_err(|_| "bad utf-8 in string")?,
                    );
                    self.at += ch_len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.at += 1;
                }
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.at += 1;
                }
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.at)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_round_trip() {
        let doc = Json::obj([
            ("name", Json::from("spec \"quoted\"")),
            ("x", Json::from(0.125)),
            ("n", Json::from(42usize)),
            ("flag", Json::from(true)),
            ("none", Json::Null),
            (
                "arr",
                Json::from(vec![Json::from(1.0), Json::from("two"), Json::Null]),
            ),
            ("empty_arr", Json::Array(vec![])),
            ("empty_obj", Json::Object(vec![])),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, doc);
        // Rendering is a fixed point: render(parse(render(x))) == render(x).
        assert_eq!(back.render(), text);
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": 3, "b": "s", "c": [1, 2], "d": true}"#).expect("parses");
        assert_eq!(doc.get("a").and_then(Json::as_usize), Some(3));
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("s"));
        assert_eq!(
            doc.get("c").and_then(Json::as_array).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(doc.get("d").and_then(Json::as_bool), Some(true));
        assert!(doc.get("missing").is_none());
        assert_eq!(Json::Number(2.5).as_usize(), None);
        assert_eq!(Json::Number(-1.0).as_u64(), None);
    }

    #[test]
    fn unicode_escapes_decode_including_surrogate_pairs() {
        // Raw UTF-8 passes through.
        let doc = Json::parse("\"caf\u{e9} \u{1f600} na\u{ef}ve\"").expect("parses");
        assert_eq!(doc.as_str(), Some("caf\u{e9} \u{1f600} na\u{ef}ve"));
        // The same text as a serde_json-style ASCII document: BMP escapes
        // plus an astral-plane surrogate pair (U+1F600).
        let doc = Json::parse(r#""caf\u00e9 \ud83d\ude00 na\u00efve""#).expect("parses");
        assert_eq!(doc.as_str(), Some("caf\u{e9} \u{1f600} na\u{ef}ve"));
        // Lone/mismatched surrogates degrade to U+FFFD instead of failing.
        assert_eq!(
            Json::parse(r#""\ud83d!""#).expect("parses").as_str(),
            Some("\u{fffd}!")
        );
        assert_eq!(
            Json::parse(r#""\ud83d\u0041""#).expect("parses").as_str(),
            Some("\u{fffd}A")
        );
        assert_eq!(
            Json::parse(r#""\ude00""#).expect("parses").as_str(),
            Some("\u{fffd}")
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\": 1} extra").is_err());
        assert!(Json::parse("nulx").is_err());
    }

    #[test]
    fn non_finite_numbers_degrade_to_null() {
        assert_eq!(Json::Number(f64::NAN).render(), "null\n");
        assert_eq!(Json::Number(f64::INFINITY).render(), "null\n");
    }
}
