//! `repro serve` — an overload-safe HTTP service wrapping [`Engine`].
//!
//! A hand-rolled HTTP/1.1 server over `std::net` in the workspace's
//! no-external-deps style (cf. [`crate::json`]): no hyper, no tokio, just
//! a nonblocking acceptor, a thread per connection, and a fixed pool of
//! solver workers pulling from a bounded queue. The interesting part is
//! not the parsing but the robustness envelope — the server is engineered
//! to *degrade instead of die*:
//!
//! * **Admission control.** At most `max_inflight` specs solve at once;
//!   at most `queue_depth` wait behind them. A request arriving to a full
//!   queue is shed immediately with `429` and a `Retry-After` estimated
//!   from an EMA of recent solve times — overload produces backpressure,
//!   never unbounded memory.
//! * **Deadlines.** Every request carries a deadline (default
//!   `default_deadline_ms`, overridable per request via `X-Deadline-Ms`,
//!   capped at `max_deadline_ms`) measured from *enqueue*, so time spent
//!   queued counts. A watchdog fires the spec's cancellation token and the
//!   client gets `408` with a typed `deadline_exceeded` body.
//! * **Disconnect detection.** While a request waits for its result, the
//!   connection is polled with a zero-copy `peek`; a vanished client
//!   fires the token so the solver stops burning CPU for nobody
//!   (nginx-style 499 — counted, never written).
//! * **Slow-loris resistance.** Request heads and bodies are read under
//!   both a byte cap and a wall-time budget; bodies require
//!   `Content-Length` (chunked is refused with `411`) and are capped at
//!   `max_body_bytes` (`413`).
//! * **Report LRU.** Whole rendered `Report` bodies are cached, keyed on
//!   the *normalized* spec bytes (`ExperimentSpec::to_json_string` of the
//!   parsed spec), so formatting differences still hit. `Cache-Control:
//!   no-cache` skips the lookup; responses carry `X-Cache: hit|miss`.
//! * **Graceful drain.** [`ServeHandle::trigger_shutdown`] stops the
//!   acceptor; [`Server::join`] then drains — in-flight work gets
//!   `drain_ms` to finish, stragglers are cancelled with the drain
//!   reason, and the process exits 0 with a [`ServeSummary`].
//! * **Durable jobs.** `POST /v1/jobs` acknowledges work with `202` and a
//!   content-derived job id *after* fsyncing an `Accepted` record to the
//!   write-ahead journal ([`crate::store`]), so acknowledged work
//!   survives `kill -9`. `GET /v1/jobs/:id` polls state or fetches the
//!   finished report; `DELETE /v1/jobs/:id` cancels via the engine's
//!   job-id cancel registry. On startup the journal is replayed:
//!   completed reports warm the LRU, and jobs that never reached a
//!   terminal state are re-enqueued with exponential backoff, up to
//!   `max_redeliveries` attempts before a terminal `retries_exhausted`.
//!
//! Every failure body is a `greencloud-error/1` document (see
//! [`crate::error::ERROR_SCHEMA`]); `GET /v1/healthz`, `/v1/readyz`, and
//! `/v1/stats` complete the operational surface.

use crate::engine::{Engine, Progress};
use crate::error::{ApiError, ERROR_SCHEMA};
use crate::json::Json;
use crate::spec::ExperimentSpec;
use crate::store::{self, JobStatus, JobStore};
use crate::wallclock::{self, Stopwatch};

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, Weak};
use std::thread;
use std::time::{Duration, Instant};

/// Upper bound on a request head (request line + headers).
pub(crate) const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Schema identifier of the progress frames emitted on streamed
/// responses (`X-Progress: stream` on `POST /v1/experiments`).
pub const PROGRESS_SCHEMA: &str = "greencloud-progress/1";

/// Cancellation causes, first-cause-wins (see [`JobState::fire`]).
const REASON_NONE: u8 = 0;
const REASON_DEADLINE: u8 = 1;
const REASON_DISCONNECT: u8 = 2;
const REASON_DRAIN: u8 = 3;
const REASON_CANCEL_API: u8 = 4;

/// Tuning knobs for [`Server::bind`]. `Default` gives a loopback server
/// with conservative limits; `bind` normalizes degenerate values
/// (`max_inflight`/`queue_depth` of 0 become 1).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7411` (`:0` picks a free port).
    pub addr: String,
    /// Solver worker threads — specs solving concurrently.
    pub max_inflight: usize,
    /// Accepted-but-not-yet-solving specs; beyond this, requests shed 429.
    pub queue_depth: usize,
    /// Deadline applied when the client sends no `X-Deadline-Ms`.
    pub default_deadline_ms: u64,
    /// Hard cap on any requested deadline.
    pub max_deadline_ms: u64,
    /// Largest accepted request body; larger bodies are refused with 413.
    pub max_body_bytes: usize,
    /// Budget for reading a request head or body (slow-loris guard).
    pub read_timeout_ms: u64,
    /// Socket write timeout for responses.
    pub write_timeout_ms: u64,
    /// How long [`Server::join`] lets in-flight work finish before
    /// cancelling it with the drain reason.
    pub drain_ms: u64,
    /// Whole-report LRU entries (0 disables caching).
    pub cache_capacity: usize,
    /// Simultaneous client connections; beyond this, connections are
    /// refused with a best-effort 503.
    pub max_connections: usize,
    /// Write-ahead journal path backing the `/v1/jobs` API. `None` keeps
    /// the job store in memory only (jobs do not survive a restart).
    pub journal_path: Option<String>,
    /// Most times a recovered job may be delivered to a worker before it
    /// turns terminally `Failed{code: "retries_exhausted"}`.
    pub max_redeliveries: u32,
    /// Base of the exponential backoff applied when a recovered job is
    /// re-enqueued: attempt *n* waits `backoff · 2^(n-1)` ms first.
    pub redelivery_backoff_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7411".to_string(),
            max_inflight: thread::available_parallelism()
                .map_or(2, |n| n.get())
                .min(8),
            queue_depth: 16,
            default_deadline_ms: 30_000,
            max_deadline_ms: 120_000,
            max_body_bytes: 1024 * 1024,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            drain_ms: 10_000,
            cache_capacity: 64,
            max_connections: 256,
            journal_path: None,
            max_redeliveries: 3,
            redelivery_backoff_ms: 250,
        }
    }
}

/// Locks a mutex, treating poisoning as survivable: the protected data is
/// counters/queues whose invariants hold between individual operations,
/// and a worker panic is already captured at the engine boundary.
pub(crate) fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-request lifecycle shared by the connection thread, the worker that
/// solves it, and the deadline watchdog.
struct JobState {
    /// The engine-facing cancellation token (polled by annual/sweep runs).
    /// `Arc`-shared so durable jobs can register it in the engine's
    /// job-id cancel registry for `DELETE /v1/jobs/:id`.
    cancel: Arc<AtomicBool>,
    /// First cancellation cause (`REASON_*`); set once via CAS.
    reason: AtomicU8,
    /// True once `done` holds the result (watchdog prunes on this).
    finished: AtomicBool,
    /// The request's effective deadline, for the 408 body.
    limit_ms: u64,
    /// When the job entered the queue — deadlines include queue wait.
    enqueued: Instant,
    /// The result slot, filled exactly once by the worker.
    done: Mutex<Option<Result<Arc<String>, ApiError>>>,
    /// Signals `done` being filled (or progress advancing) to the
    /// waiting connection thread.
    cv: Condvar,
    /// Latest progress counters from the solving worker; only the newest
    /// frame matters, so a single slot replaces a queue.
    progress: Mutex<Option<Progress>>,
    /// Bumped on every progress store, so the streaming connection
    /// thread can tell a fresh frame from one it already wrote.
    progress_seq: AtomicU64,
}

impl JobState {
    fn new(limit_ms: u64) -> Self {
        JobState {
            cancel: Arc::new(AtomicBool::new(false)),
            reason: AtomicU8::new(REASON_NONE),
            finished: AtomicBool::new(false),
            limit_ms,
            enqueued: wallclock::now(),
            done: Mutex::new(None),
            cv: Condvar::new(),
            progress: Mutex::new(None),
            progress_seq: AtomicU64::new(0),
        }
    }

    /// Publishes the worker's latest progress counters and wakes the
    /// streaming connection thread. Called from solver threads (sweeps
    /// report from several at once); last write wins.
    fn report_progress(&self, p: Progress) {
        *lock_ok(&self.progress) = Some(p);
        self.progress_seq.fetch_add(1, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// The newest progress frame and its sequence number. The sequence is
    /// read *before* the slot, so the returned frame is never older than
    /// the sequence says — at worst a racing update is written twice.
    fn latest_progress(&self) -> (u64, Option<Progress>) {
        let seq = self.progress_seq.load(Ordering::SeqCst);
        let p = *lock_ok(&self.progress);
        (seq, p)
    }

    /// Records `reason` as the cancellation cause if none is set yet and
    /// fires the engine token. Later causes lose the race and change
    /// nothing, so the reported error always names the *first* cause.
    fn fire(&self, reason: u8) {
        if self
            .reason
            .compare_exchange(REASON_NONE, reason, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.cancel.store(true, Ordering::SeqCst);
        }
    }

    fn reason_code(&self) -> u8 {
        self.reason.load(Ordering::SeqCst)
    }

    fn complete(&self, result: Result<Arc<String>, ApiError>) {
        *lock_ok(&self.done) = Some(result);
        self.finished.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// Marks the job finished without filling the result slot — durable
    /// jobs publish their outcome through the store, but the watchdog
    /// still prunes on `finished`.
    fn mark_finished(&self) {
        self.finished.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }
}

/// One queued experiment.
struct Job {
    spec: ExperimentSpec,
    cache_key: String,
    state: Arc<JobState>,
    /// `Some` for durable jobs submitted via `/v1/jobs` (or recovered
    /// from the journal); `None` for synchronous `/v1/experiments` work.
    job_id: Option<String>,
    /// Redelivery backoff: workers skip the job until this instant.
    not_before: Option<Instant>,
    /// The client asked for a streamed response: the worker publishes
    /// progress counters into [`JobState`] as the solve advances.
    stream: bool,
}

/// Monotonic service counters, snapshotted into [`ServeSummary`].
#[derive(Default)]
struct Stats {
    received: AtomicU64,
    ok: AtomicU64,
    shed: AtomicU64,
    cache_hits: AtomicU64,
    deadline_expired: AtomicU64,
    disconnects: AtomicU64,
    drain_cancelled: AtomicU64,
    client_errors: AtomicU64,
    solve_errors: AtomicU64,
    server_errors: AtomicU64,
    /// Jobs re-enqueued from the journal after at least one earlier
    /// delivery (surfaced via `/v1/stats`, not the exit summary).
    jobs_redelivered: AtomicU64,
    /// Responses sent with chunked progress streaming (surfaced via
    /// `/v1/stats`, not the exit summary).
    streamed: AtomicU64,
}

impl Stats {
    fn snapshot(&self) -> ServeSummary {
        ServeSummary {
            received: self.received.load(Ordering::SeqCst),
            ok: self.ok.load(Ordering::SeqCst),
            shed: self.shed.load(Ordering::SeqCst),
            cache_hits: self.cache_hits.load(Ordering::SeqCst),
            deadline_expired: self.deadline_expired.load(Ordering::SeqCst),
            disconnects: self.disconnects.load(Ordering::SeqCst),
            drain_cancelled: self.drain_cancelled.load(Ordering::SeqCst),
            client_errors: self.client_errors.load(Ordering::SeqCst),
            solve_errors: self.solve_errors.load(Ordering::SeqCst),
            server_errors: self.server_errors.load(Ordering::SeqCst),
        }
    }
}

/// What one serve run did, returned by [`Server::join`] and rendered by
/// `repro serve` on exit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Experiment POSTs that reached routing (including shed ones).
    pub received: u64,
    /// Requests answered 200 (cache hits included).
    pub ok: u64,
    /// Requests shed 429 by admission control (and refused connections).
    pub shed: u64,
    /// 200s served from the report LRU.
    pub cache_hits: u64,
    /// Deadlines fired by the watchdog (408s).
    pub deadline_expired: u64,
    /// Solves cancelled because the client vanished (499-style).
    pub disconnects: u64,
    /// Jobs cancelled by shutdown drain (503s).
    pub drain_cancelled: u64,
    /// 4xx responses other than shed/deadline (bad specs, bad HTTP).
    pub client_errors: u64,
    /// 422s — well-formed specs whose optimization failed.
    pub solve_errors: u64,
    /// 5xx responses.
    pub server_errors: u64,
}

impl ServeSummary {
    /// Multi-line human-readable rendering, one counter per line.
    pub fn render_text(&self) -> String {
        format!(
            "received        {}\nok              {}\nshed (429)      {}\ncache hits      {}\n\
             deadline (408)  {}\ndisconnects     {}\ndrain-cancelled {}\nclient errors   {}\n\
             solve errors    {}\nserver errors   {}\n",
            self.received,
            self.ok,
            self.shed,
            self.cache_hits,
            self.deadline_expired,
            self.disconnects,
            self.drain_cancelled,
            self.client_errors,
            self.solve_errors,
            self.server_errors,
        )
    }
}

/// Whole-report LRU with lazy deletion: a `HashMap` for lookup plus a
/// stamped recency queue, so eviction never iterates the map (the
/// workspace `hash-iter` rule — iteration order would be nondeterministic
/// anyway). A map entry is live only while its stamp matches the newest
/// queue marker for that key; stale markers are dropped as they surface.
struct ReportCache {
    capacity: usize,
    map: HashMap<String, CacheSlot>,
    recency: VecDeque<(String, u64)>,
    next_stamp: u64,
}

struct CacheSlot {
    body: Arc<String>,
    stamp: u64,
}

impl ReportCache {
    fn new(capacity: usize) -> Self {
        ReportCache {
            capacity,
            map: HashMap::new(),
            recency: VecDeque::new(),
            next_stamp: 0,
        }
    }

    fn bump(&mut self) -> u64 {
        self.next_stamp += 1;
        self.next_stamp
    }

    /// Looks `key` up and, on a hit, refreshes its recency.
    fn get(&mut self, key: &str) -> Option<Arc<String>> {
        let stamp = self.bump();
        let slot = self.map.get_mut(key)?;
        slot.stamp = stamp;
        let body = Arc::clone(&slot.body);
        self.recency.push_back((key.to_string(), stamp));
        self.trim_recency();
        Some(body)
    }

    /// Inserts (or refreshes) `key`, evicting least-recently-used live
    /// entries while over capacity.
    fn insert(&mut self, key: String, body: Arc<String>) {
        if self.capacity == 0 {
            return;
        }
        let stamp = self.bump();
        self.recency.push_back((key.clone(), stamp));
        self.map.insert(key, CacheSlot { body, stamp });
        while self.map.len() > self.capacity {
            let Some((old_key, old_stamp)) = self.recency.pop_front() else {
                break;
            };
            if self.map.get(&old_key).is_some_and(|s| s.stamp == old_stamp) {
                self.map.remove(&old_key);
            }
        }
        self.trim_recency();
    }

    /// Bounds the recency queue: stale markers are discarded, live ones
    /// rotated to the back. Live markers number at most `map.len()` ≤
    /// `capacity` < the bound, so the loop always finds stale ones.
    fn trim_recency(&mut self) {
        let bound = self.capacity * 8 + 16;
        while self.recency.len() > bound {
            let Some((key, stamp)) = self.recency.pop_front() else {
                break;
            };
            if self.map.get(&key).is_some_and(|s| s.stamp == stamp) {
                self.recency.push_back((key, stamp));
            }
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// State shared by the acceptor, connection threads, workers, and
/// watchdog.
struct ServerInner {
    engine: Engine,
    cfg: ServeConfig,
    /// Set by [`ServeHandle::trigger_shutdown`]; stops the acceptor.
    shutdown: AtomicBool,
    /// Set at shutdown: readyz fails, new experiments get 503, idle
    /// keep-alive connections close.
    draining: AtomicBool,
    /// Set after the drain budget: workers and the watchdog exit.
    stop_workers: AtomicBool,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    inflight: AtomicUsize,
    live_conns: AtomicUsize,
    /// Every live job, for the deadline watchdog and the drain sweep.
    registry: Mutex<Vec<Weak<JobState>>>,
    cache: Mutex<ReportCache>,
    stats: Stats,
    /// EMA of recent solve wall-times, feeding `Retry-After`.
    ema_ms: AtomicU64,
    /// The durable job store (ephemeral when `journal_path` is `None`).
    store: Mutex<JobStore>,
    /// Live (queued or running) durable jobs by id, for `DELETE`. Never
    /// iterated — only keyed access (the workspace `hash-iter` rule).
    job_states: Mutex<HashMap<String, Arc<JobState>>>,
}

/// A cloneable remote control for a running [`Server`] — lets signal
/// handlers and tests trigger shutdown without owning the server.
#[derive(Clone)]
pub struct ServeHandle {
    inner: Arc<ServerInner>,
}

impl ServeHandle {
    /// Begins graceful shutdown: the acceptor stops, readyz starts
    /// failing, and [`Server::join`] proceeds to drain.
    pub fn trigger_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.draining.store(true, Ordering::SeqCst);
    }

    /// True once shutdown has been triggered.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }
}

/// A running experiment service. Construct with [`Server::bind`], stop
/// with [`ServeHandle::trigger_shutdown`] + [`Server::join`].
pub struct Server {
    inner: Arc<ServerInner>,
    addr: SocketAddr,
    acceptor: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
    watchdog: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr`, spawns the worker pool, watchdog, and acceptor,
    /// and returns the running server. Degenerate config values are
    /// normalized rather than rejected (0 workers → 1, 0 queue depth →
    /// 1, default deadline clamped under the cap).
    pub fn bind(engine: Engine, mut cfg: ServeConfig) -> Result<Server, ApiError> {
        cfg.max_inflight = cfg.max_inflight.max(1);
        cfg.queue_depth = cfg.queue_depth.max(1);
        cfg.max_deadline_ms = cfg.max_deadline_ms.max(1);
        cfg.default_deadline_ms = cfg.default_deadline_ms.clamp(1, cfg.max_deadline_ms);
        cfg.max_connections = cfg.max_connections.max(1);
        let store = match &cfg.journal_path {
            Some(p) => JobStore::open(p)?,
            None => JobStore::ephemeral(),
        };
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let max_inflight = cfg.max_inflight;
        let cache_capacity = cfg.cache_capacity;
        let inner = Arc::new(ServerInner {
            engine,
            cfg,
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            stop_workers: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            inflight: AtomicUsize::new(0),
            live_conns: AtomicUsize::new(0),
            registry: Mutex::new(Vec::new()),
            cache: Mutex::new(ReportCache::new(cache_capacity)),
            stats: Stats::default(),
            ema_ms: AtomicU64::new(0),
            store: Mutex::new(store),
            job_states: Mutex::new(HashMap::new()),
        });
        // Replay before the workers exist: recovered jobs are queued (and
        // completed reports warm the LRU) before anything can race them.
        recover_jobs(&inner);
        let mut workers = Vec::new();
        for i in 0..max_inflight {
            let w = Arc::clone(&inner);
            workers.push(
                thread::Builder::new()
                    .name(format!("gc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&w))?,
            );
        }
        let wd = Arc::clone(&inner);
        let watchdog = thread::Builder::new()
            .name("gc-serve-watchdog".to_string())
            .spawn(move || watchdog_loop(&wd))?;
        let acc = Arc::clone(&inner);
        let acceptor = thread::Builder::new()
            .name("gc-serve-accept".to_string())
            .spawn(move || acceptor_loop(&listener, &acc))?;
        Ok(Server {
            inner,
            addr,
            acceptor: Some(acceptor),
            workers,
            watchdog: Some(watchdog),
        })
    }

    /// The bound address (useful with `:0` — the OS-picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable shutdown control for this server.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Convenience for [`ServeHandle::trigger_shutdown`].
    pub fn trigger_shutdown(&self) {
        self.handle().trigger_shutdown();
    }

    /// Blocks until shutdown is triggered, then drains: in-flight and
    /// queued work gets `drain_ms` to finish, stragglers are cancelled
    /// with the drain reason and given a short grace period, workers are
    /// stopped and joined. Returns the run's counters.
    pub fn join(mut self) -> ServeSummary {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.inner.draining.store(true, Ordering::SeqCst);
        let drain = Stopwatch::start();
        while (drain.elapsed_ms() as u64) < self.inner.cfg.drain_ms {
            let pending = lock_ok(&self.inner.queue).len();
            if pending == 0
                && self.inner.inflight.load(Ordering::SeqCst) == 0
                && self.inner.live_conns.load(Ordering::SeqCst) == 0
            {
                break;
            }
            self.inner.queue_cv.notify_all();
            thread::sleep(Duration::from_millis(10));
        }
        {
            let mut reg = lock_ok(&self.inner.registry);
            for w in reg.drain(..) {
                if let Some(s) = w.upgrade() {
                    if !s.finished.load(Ordering::SeqCst) {
                        s.fire(REASON_DRAIN);
                    }
                }
            }
        }
        let grace = Stopwatch::start();
        while (grace.elapsed_ms() as u64) < 2_000 {
            if self.inner.inflight.load(Ordering::SeqCst) == 0
                && self.inner.live_conns.load(Ordering::SeqCst) == 0
            {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        self.inner.stop_workers.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
        self.inner.stats.snapshot()
    }
}

/// Startup replay: warms the report LRU from completed jobs and
/// re-enqueues every job the journal shows as accepted/started but never
/// terminal. A job already delivered `max_redeliveries` times fails
/// terminally with `retries_exhausted`; later attempts back off
/// exponentially (`redelivery_backoff_ms · 2^(attempts-1)`).
fn recover_jobs(inner: &Arc<ServerInner>) {
    let max = inner.cfg.max_redeliveries;
    let backoff = inner.cfg.redelivery_backoff_ms;
    let mut store = lock_ok(&inner.store);
    if inner.cfg.cache_capacity > 0 {
        let mut cache = lock_ok(&inner.cache);
        for (_, e) in store.entries() {
            if let Some(report) = &e.report {
                cache.insert(e.spec.as_ref().clone(), Arc::clone(report));
            }
        }
    }
    for (id, attempts) in store.recoverable() {
        if attempts >= max {
            let _ = store.fail(
                &id,
                "retries_exhausted",
                &format!("delivered {attempts} times without finishing (max {max})"),
            );
            continue;
        }
        let Some(entry) = store.get(&id) else {
            continue;
        };
        let spec_text = entry.spec.as_ref().clone();
        let spec = match ExperimentSpec::from_json_str(&spec_text) {
            Ok(s) => s,
            Err(e) => {
                let err = ApiError::from(e);
                let _ = store.fail(&id, err.code(), &err.to_string());
                continue;
            }
        };
        let not_before = if attempts == 0 {
            None
        } else {
            inner.stats.jobs_redelivered.fetch_add(1, Ordering::SeqCst);
            let shift = attempts.saturating_sub(1).min(16);
            let wait = backoff.saturating_mul(1u64 << shift);
            Some(wallclock::now() + Duration::from_millis(wait))
        };
        let state = Arc::new(JobState::new(u64::MAX));
        lock_ok(&inner.registry).push(Arc::downgrade(&state));
        lock_ok(&inner.job_states).insert(id.clone(), Arc::clone(&state));
        // Recovery bypasses `queue_depth`: these jobs were already
        // admitted (and durably acknowledged) by a previous process.
        lock_ok(&inner.queue).push_back(Job {
            spec,
            cache_key: spec_text,
            state,
            job_id: Some(id),
            not_before,
            stream: false,
        });
    }
}

/// Accepts connections until shutdown; each gets its own thread, capped
/// at `max_connections` live at once.
fn acceptor_loop(listener: &TcpListener, inner: &Arc<ServerInner>) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if inner.live_conns.load(Ordering::SeqCst) >= inner.cfg.max_connections {
                    refuse_busy(stream, inner);
                    continue;
                }
                inner.live_conns.fetch_add(1, Ordering::SeqCst);
                let conn = Arc::clone(inner);
                let spawned = thread::Builder::new()
                    .name("gc-serve-conn".to_string())
                    .spawn(move || {
                        handle_connection(stream, &conn);
                        conn.live_conns.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    inner.live_conns.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Best-effort 503 for a connection over the `max_connections` cap.
fn refuse_busy(mut stream: TcpStream, inner: &ServerInner) {
    inner.stats.shed.fetch_add(1, Ordering::SeqCst);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(inner.cfg.write_timeout_ms)));
    let body = error_body("overloaded", "connection limit reached", Vec::new());
    let _ = write_response(
        &mut stream,
        503,
        &[("Retry-After", "1".to_string())],
        &body,
        true,
    );
}

/// Solver worker: pops jobs, honors already-fired cancellations, runs the
/// engine with the job's token, caches successful reports.
fn worker_loop(inner: &ServerInner) {
    loop {
        let job = {
            let mut q = lock_ok(&inner.queue);
            loop {
                if inner.stop_workers.load(Ordering::SeqCst) {
                    return;
                }
                // First *ready* job: entries still inside their redelivery
                // backoff window are skipped, not reordered away.
                let now = wallclock::now();
                let ready = q.iter().position(|j| j.not_before.is_none_or(|t| t <= now));
                if let Some(k) = ready {
                    if let Some(j) = q.remove(k) {
                        break j;
                    }
                }
                let (guard, _timed_out) = inner
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(25))
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        };
        run_job(inner, job);
    }
}

fn run_job(inner: &ServerInner, job: Job) {
    if let Some(id) = job.job_id.clone() {
        run_durable_job(inner, job, &id);
        return;
    }
    inner.inflight.fetch_add(1, Ordering::SeqCst);
    let result = if job.state.reason_code() != REASON_NONE {
        // Expired or cancelled while queued — skip the engine entirely.
        Err(reason_error(job.state.reason_code(), job.state.limit_ms))
    } else {
        let sw = Stopwatch::start();
        let run = if job.stream {
            let state = Arc::clone(&job.state);
            let sink = move |p: Progress| state.report_progress(p);
            inner
                .engine
                .run_with_progress(&job.spec, &job.state.cancel, &sink)
        } else {
            inner.engine.run_with_cancel(&job.spec, &job.state.cancel)
        };
        update_ema(inner, (sw.elapsed_ms() as u64).max(1));
        match (job.state.reason_code(), run) {
            (REASON_NONE, Ok(report)) => {
                let body = Arc::new(report.to_json_string());
                if inner.cfg.cache_capacity > 0 {
                    lock_ok(&inner.cache).insert(job.cache_key, Arc::clone(&body));
                }
                Ok(body)
            }
            (REASON_NONE, Err(e)) => Err(e),
            // A fired token dominates whatever the run returned, even a
            // limped-to-Ok report — mirrors `run_all_with_deadline`.
            (reason, _) => Err(reason_error(reason, job.state.limit_ms)),
        }
    };
    job.state.complete(result);
    inner.inflight.fetch_sub(1, Ordering::SeqCst);
}

/// Runs one durable job to a terminal journal record — except under
/// drain, which deliberately leaves the job live so the next process
/// recovers and re-runs it (that survival is the journal's entire point).
fn run_durable_job(inner: &ServerInner, job: Job, id: &str) {
    inner.inflight.fetch_add(1, Ordering::SeqCst);
    let pre_reason = job.state.reason_code();
    if pre_reason == REASON_NONE {
        let started = lock_ok(&inner.store).start(id);
        match started {
            Ok(Some(_attempt)) => {
                let sw = Stopwatch::start();
                let run = inner
                    .engine
                    .run_job(id, &job.spec, Arc::clone(&job.state.cancel));
                update_ema(inner, (sw.elapsed_ms() as u64).max(1));
                finish_durable_job(inner, &job, id, run);
            }
            // Already terminal (cancelled while queued): nothing to run.
            Ok(None) => {}
            Err(e) => {
                inner.stats.server_errors.fetch_add(1, Ordering::SeqCst);
                let _ = lock_ok(&inner.store).fail(id, "store_error", &e.to_string());
            }
        }
    } else {
        finish_durable_job(
            inner,
            &job,
            id,
            Err(reason_error(pre_reason, job.state.limit_ms)),
        );
    }
    if lock_ok(&inner.store).maybe_compact().is_err() {
        inner.stats.server_errors.fetch_add(1, Ordering::SeqCst);
    }
    lock_ok(&inner.job_states).remove(id);
    job.state.mark_finished();
    inner.inflight.fetch_sub(1, Ordering::SeqCst);
}

/// Maps a durable run's outcome to its journal record, mirroring the
/// synchronous path's fired-token-dominates arbitration.
fn finish_durable_job(
    inner: &ServerInner,
    job: &Job,
    id: &str,
    run: Result<crate::report::Report, ApiError>,
) {
    let outcome = match (job.state.reason_code(), run) {
        (REASON_NONE, Ok(report)) => {
            let body = Arc::new(report.to_json_string());
            if inner.cfg.cache_capacity > 0 {
                lock_ok(&inner.cache).insert(job.cache_key.clone(), Arc::clone(&body));
            }
            lock_ok(&inner.store).complete(id, &body)
        }
        (REASON_NONE, Err(e)) => {
            if e.http_status() == 422 {
                inner.stats.solve_errors.fetch_add(1, Ordering::SeqCst);
            }
            lock_ok(&inner.store).fail(id, e.code(), &e.to_string())
        }
        (REASON_CANCEL_API, _) => lock_ok(&inner.store).cancel(id, "cancelled by client request"),
        (REASON_DRAIN, _) => {
            // Non-terminal on purpose: the restart will redeliver.
            inner.stats.drain_cancelled.fetch_add(1, Ordering::SeqCst);
            Ok(false)
        }
        (reason, _) => {
            let e = reason_error(reason, job.state.limit_ms);
            lock_ok(&inner.store).fail(id, e.code(), &e.to_string())
        }
    };
    if outcome.is_err() {
        inner.stats.server_errors.fetch_add(1, Ordering::SeqCst);
    }
}

fn update_ema(inner: &ServerInner, ms: u64) {
    let prev = inner.ema_ms.load(Ordering::SeqCst);
    let next = if prev == 0 { ms } else { (prev * 3 + ms) / 4 };
    inner.ema_ms.store(next, Ordering::SeqCst);
}

/// Deadline watchdog: every ~5 ms, ages live jobs against their limits
/// and prunes finished/dropped entries from the registry.
fn watchdog_loop(inner: &ServerInner) {
    while !inner.stop_workers.load(Ordering::SeqCst) {
        {
            let mut reg = lock_ok(&inner.registry);
            reg.retain(|w| match w.upgrade() {
                Some(s) => {
                    if !s.finished.load(Ordering::SeqCst)
                        && s.reason_code() == REASON_NONE
                        && s.enqueued.elapsed().as_millis() as u64 >= s.limit_ms
                    {
                        s.fire(REASON_DEADLINE);
                        inner.stats.deadline_expired.fetch_add(1, Ordering::SeqCst);
                    }
                    !s.finished.load(Ordering::SeqCst)
                }
                None => false,
            });
        }
        thread::sleep(Duration::from_millis(5));
    }
}

fn reason_error(reason: u8, limit_ms: u64) -> ApiError {
    match reason {
        REASON_DEADLINE => ApiError::Deadline { limit_ms },
        REASON_DISCONNECT => ApiError::Cancelled("client disconnected mid-solve".to_string()),
        REASON_DRAIN => ApiError::Cancelled("server drain cancelled the experiment".to_string()),
        REASON_CANCEL_API => ApiError::Cancelled("cancelled by client request".to_string()),
        _ => ApiError::Cancelled("cancelled".to_string()),
    }
}

/// `Retry-After` estimate: the queue's expected service time from the
/// solve-time EMA, clamped to [1, 60] seconds.
fn retry_after_secs(inner: &ServerInner) -> u64 {
    let pending = lock_ok(&inner.queue).len() as u64;
    let ema = inner.ema_ms.load(Ordering::SeqCst).max(1);
    let par = inner.cfg.max_inflight.max(1) as u64;
    ((pending + 1) * ema / par / 1000).clamp(1, 60)
}

/// True when the peer is certainly gone: a 1 ms `peek` returning EOF or a
/// hard error. `WouldBlock`/`TimedOut` mean merely quiet, i.e. alive.
fn client_gone(stream: &TcpStream) -> bool {
    if stream
        .set_read_timeout(Some(Duration::from_millis(1)))
        .is_err()
    {
        return true;
    }
    let mut probe = [0u8; 1];
    match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) => !matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ),
    }
}

/// One parsed HTTP request. Shared with the router, which reads client
/// requests with the same slow-loris envelope before relaying them.
pub(crate) struct Request {
    pub(crate) method: String,
    pub(crate) path: String,
    pub(crate) headers: Vec<(String, String)>,
    pub(crate) body: Vec<u8>,
    pub(crate) close: bool,
}

/// Outcome of reading one request off a connection.
pub(crate) enum ReadOut {
    /// A complete, parseable request.
    Request(Request),
    /// The peer closed (or idled out, or we are draining) — hang up
    /// without writing anything.
    Closed,
    /// A malformed or abusive request: answer `status` with an
    /// [`ERROR_SCHEMA`] body carrying `code`, then close.
    Reject {
        status: u16,
        code: &'static str,
        message: String,
    },
}

/// The read-side budgets [`read_request`] enforces, decoupled from
/// [`ServeConfig`] so the router can lend its own limits.
pub(crate) struct HttpLimits<'a> {
    pub(crate) max_body_bytes: usize,
    pub(crate) read_timeout_ms: u64,
    /// Checked while idling for a request's first byte: a draining
    /// process closes idle keep-alive connections instead of waiting.
    pub(crate) draining: &'a AtomicBool,
}

pub(crate) fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// Parses `X-Deadline-Ms`, distinguishing *absent* (`Ok(None)`) from
/// *malformed* (`Err(raw)`). Non-numeric and negative values are client
/// errors answered with a typed 400 — never silently the default.
fn parse_deadline(headers: &[(String, String)]) -> Result<Option<u64>, String> {
    let Some(raw) = header(headers, "x-deadline-ms") else {
        return Ok(None);
    };
    match raw.trim().parse::<u64>() {
        Ok(v) => Ok(Some(v)),
        Err(_) => Err(raw.to_string()),
    }
}

/// The `greencloud-error/1` body for a malformed `X-Deadline-Ms`.
fn deadline_invalid_body(raw: &str) -> String {
    error_body(
        "deadline_invalid",
        &format!(
            "X-Deadline-Ms must be a non-negative integer number of milliseconds, got {raw:?}"
        ),
        Vec::new(),
    )
}

pub(crate) fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// (method, path, headers) from a parsed request head.
type ParsedHead = (String, String, Vec<(String, String)>);

fn parse_head(head: &str) -> Result<ParsedHead, String> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(format!("malformed request line {request_line:?}"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((k, v)) = line.split_once(':') else {
            return Err(format!("malformed header line {line:?}"));
        };
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    Ok((method, path, headers))
}

/// Reads one request under slow-loris budgets: a 250 ms-granularity idle
/// wait for the first byte (closing on drain or keep-alive idle
/// expiration), then byte- and time-capped reads for head and body.
pub(crate) fn read_request(stream: &mut TcpStream, limits: &HttpLimits<'_>) -> ReadOut {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let idle = Stopwatch::start();
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return ReadOut::Closed,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                break;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if limits.draining.load(Ordering::SeqCst) {
                    return ReadOut::Closed;
                }
                if idle.elapsed_ms() as u64 > limits.read_timeout_ms {
                    return ReadOut::Closed;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOut::Closed,
        }
    }
    let head_clock = Stopwatch::start();
    let head_end = loop {
        if let Some(end) = find_head_end(&buf) {
            break end;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return ReadOut::Reject {
                status: 431,
                code: "head_too_large",
                message: format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            };
        }
        if head_clock.elapsed_ms() as u64 > limits.read_timeout_ms {
            return ReadOut::Reject {
                status: 408,
                code: "request_timeout",
                message: "timed out reading the request head".to_string(),
            };
        }
        match stream.read(&mut chunk) {
            Ok(0) => return ReadOut::Closed,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return ReadOut::Closed,
        }
    };
    let head_text = match std::str::from_utf8(&buf[..head_end.saturating_sub(4)]) {
        Ok(t) => t.to_string(),
        Err(_) => {
            return ReadOut::Reject {
                status: 400,
                code: "bad_request",
                message: "request head is not valid UTF-8".to_string(),
            }
        }
    };
    let (method, path, headers) = match parse_head(&head_text) {
        Ok(t) => t,
        Err(message) => {
            return ReadOut::Reject {
                status: 400,
                code: "bad_request",
                message,
            }
        }
    };
    let mut body: Vec<u8> = buf.split_off(head_end);
    let close = header(&headers, "connection").is_some_and(|v| v.eq_ignore_ascii_case("close"));
    if method == "POST" || method == "PUT" {
        if header(&headers, "transfer-encoding").is_some() {
            return ReadOut::Reject {
                status: 411,
                code: "length_required",
                message: "chunked bodies are not supported; send Content-Length".to_string(),
            };
        }
        let Some(len) = header(&headers, "content-length").and_then(|v| v.parse::<usize>().ok())
        else {
            return ReadOut::Reject {
                status: 411,
                code: "length_required",
                message: "POST requires a Content-Length header".to_string(),
            };
        };
        if len > limits.max_body_bytes {
            return ReadOut::Reject {
                status: 413,
                code: "body_too_large",
                message: format!(
                    "body of {len} bytes exceeds the {} byte cap",
                    limits.max_body_bytes
                ),
            };
        }
        if body.is_empty()
            && header(&headers, "expect")
                .is_some_and(|v| v.to_ascii_lowercase().contains("100-continue"))
        {
            let _ = stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
            let _ = stream.flush();
        }
        let body_clock = Stopwatch::start();
        while body.len() < len {
            if body_clock.elapsed_ms() as u64 > limits.read_timeout_ms {
                return ReadOut::Reject {
                    status: 408,
                    code: "request_timeout",
                    message: "timed out reading the request body".to_string(),
                };
            }
            match stream.read(&mut chunk) {
                Ok(0) => return ReadOut::Closed,
                Ok(n) => body.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) => {}
                Err(_) => return ReadOut::Closed,
            }
        }
        body.truncate(len);
    }
    ReadOut::Request(Request {
        method,
        path,
        headers,
        body,
        close,
    })
}

pub(crate) fn status_reason(status: u16) -> &'static str {
    match status {
        100 => "Continue",
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        499 => "Client Closed Request",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Renders an [`ERROR_SCHEMA`] body from serve-level (non-`ApiError`)
/// failures; `extra` appends detail fields.
pub(crate) fn error_body(code: &str, message: &str, extra: Vec<(&'static str, Json)>) -> String {
    let mut fields = vec![
        ("schema".to_string(), Json::from(ERROR_SCHEMA)),
        ("code".to_string(), Json::from(code)),
        ("message".to_string(), Json::from(message)),
    ];
    for (k, v) in extra {
        fields.push((k.to_string(), v));
    }
    Json::Object(fields).render()
}

pub(crate) fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
    close: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        status_reason(status),
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(if close {
        "Connection: close\r\n\r\n"
    } else {
        "Connection: keep-alive\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes the head of a chunked (streamed) response. The body follows as
/// [`write_chunk`] calls ended by [`finish_chunks`] — one JSON document
/// per chunk; the status commits before the solve finishes, so later
/// failures must travel in-band as `greencloud-error/1` documents.
fn write_chunked_head(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    close: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/x-json-stream\r\nTransfer-Encoding: chunked\r\n",
        status_reason(status),
    );
    for (k, v) in extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(if close {
        "Connection: close\r\n\r\n"
    } else {
        "Connection: keep-alive\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// One HTTP/1.1 chunk: hex length, CRLF, payload, CRLF — flushed so the
/// client (or a relaying router) sees the frame immediately.
fn write_chunk(stream: &mut TcpStream, data: &[u8]) -> io::Result<()> {
    stream.write_all(format!("{:x}\r\n", data.len()).as_bytes())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// The terminating zero-length chunk of a streamed response.
fn finish_chunks(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// Renders one `greencloud-progress/1` frame document (sent as its own
/// chunk, blank-line separated from the next document for readability).
fn progress_frame(kind: &str, done: u64, total: u64) -> String {
    let mut doc = Json::obj([
        ("schema", Json::from(PROGRESS_SCHEMA)),
        ("kind", Json::from(kind)),
        ("done", Json::from(done)),
        ("total", Json::from(total)),
    ])
    .render();
    doc.push('\n');
    doc
}

/// Serves one connection: requests are read and routed until the peer
/// hangs up, sends `Connection: close`, errors, or the server drains.
fn handle_connection(mut stream: TcpStream, inner: &ServerInner) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(inner.cfg.write_timeout_ms)));
    let limits = HttpLimits {
        max_body_bytes: inner.cfg.max_body_bytes,
        read_timeout_ms: inner.cfg.read_timeout_ms,
        draining: &inner.draining,
    };
    loop {
        match read_request(&mut stream, &limits) {
            ReadOut::Closed => break,
            ReadOut::Reject {
                status,
                code,
                message,
            } => {
                inner.stats.client_errors.fetch_add(1, Ordering::SeqCst);
                let body = error_body(code, &message, Vec::new());
                let _ = write_response(&mut stream, status, &[], &body, true);
                break;
            }
            ReadOut::Request(req) => {
                let close = req.close || inner.draining.load(Ordering::SeqCst);
                let keep = route(&mut stream, inner, &req, close);
                if close || !keep {
                    break;
                }
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

fn route(stream: &mut TcpStream, inner: &ServerInner, req: &Request, close: bool) -> bool {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/healthz") => {
            let body = Json::obj([("status", Json::from("ok"))]).render();
            write_response(stream, 200, &[], &body, close).is_ok()
        }
        ("GET", "/v1/readyz") => {
            if inner.draining.load(Ordering::SeqCst) {
                let body = error_body("draining", "server is draining", Vec::new());
                let _ = write_response(
                    stream,
                    503,
                    &[("Retry-After", "1".to_string())],
                    &body,
                    true,
                );
                false
            } else {
                let body = Json::obj([("status", Json::from("ready"))]).render();
                write_response(stream, 200, &[], &body, close).is_ok()
            }
        }
        ("GET", "/v1/stats") => {
            let body = stats_json(inner);
            write_response(stream, 200, &[], &body, close).is_ok()
        }
        ("POST", "/v1/experiments") => handle_experiment(stream, inner, req, close),
        ("POST", "/v1/jobs") => handle_job_submit(stream, inner, req, close),
        (_, p) if p.starts_with("/v1/jobs/") => handle_job_entity(stream, inner, req, close),
        (_, "/v1/healthz" | "/v1/readyz" | "/v1/stats" | "/v1/experiments" | "/v1/jobs") => {
            inner.stats.client_errors.fetch_add(1, Ordering::SeqCst);
            let allow = if req.path == "/v1/experiments" || req.path == "/v1/jobs" {
                "POST"
            } else {
                "GET"
            };
            let body = error_body(
                "method_not_allowed",
                &format!("{} is not supported on {}", req.method, req.path),
                Vec::new(),
            );
            write_response(stream, 405, &[("Allow", allow.to_string())], &body, close).is_ok()
        }
        _ => {
            inner.stats.client_errors.fetch_add(1, Ordering::SeqCst);
            let body = error_body("not_found", &format!("no route {}", req.path), Vec::new());
            write_response(stream, 404, &[], &body, close).is_ok()
        }
    }
}

/// `POST /v1/experiments`: parse → cache lookup → admit or shed →
/// wait (watching for client disconnect) → respond.
fn handle_experiment(
    stream: &mut TcpStream,
    inner: &ServerInner,
    req: &Request,
    close: bool,
) -> bool {
    inner.stats.received.fetch_add(1, Ordering::SeqCst);
    if inner.draining.load(Ordering::SeqCst) {
        let body = error_body(
            "draining",
            "server is draining; not accepting work",
            Vec::new(),
        );
        let _ = write_response(
            stream,
            503,
            &[("Retry-After", "1".to_string())],
            &body,
            true,
        );
        return false;
    }
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => {
            inner.stats.client_errors.fetch_add(1, Ordering::SeqCst);
            let body = error_body("bad_request", "body is not valid UTF-8", Vec::new());
            return write_response(stream, 400, &[], &body, close).is_ok();
        }
    };
    let spec = match ExperimentSpec::from_json_str(text) {
        Ok(s) => s,
        Err(e) => {
            inner.stats.client_errors.fetch_add(1, Ordering::SeqCst);
            let err = ApiError::from(e);
            return write_response(stream, err.http_status(), &[], &err.to_error_json(), close)
                .is_ok();
        }
    };
    // Normalized spec bytes key the cache: two differently-formatted
    // documents describing the same experiment share an entry.
    let cache_key = spec.to_json_string();
    let limit_ms = match parse_deadline(&req.headers) {
        Ok(v) => v
            .unwrap_or(inner.cfg.default_deadline_ms)
            .clamp(1, inner.cfg.max_deadline_ms),
        Err(raw) => {
            inner.stats.client_errors.fetch_add(1, Ordering::SeqCst);
            let body = deadline_invalid_body(&raw);
            return write_response(stream, 400, &[], &body, close).is_ok();
        }
    };
    // `X-Progress: stream` opts the response into chunked transfer
    // encoding with `greencloud-progress/1` frames ahead of the body.
    let want_stream = header(&req.headers, "x-progress").is_some_and(|v| {
        let v = v.trim();
        v.eq_ignore_ascii_case("stream") || v == "1" || v.eq_ignore_ascii_case("true")
    });
    let skip_cache = header(&req.headers, "cache-control")
        .is_some_and(|v| v.to_ascii_lowercase().contains("no-cache"));
    if !skip_cache && inner.cfg.cache_capacity > 0 {
        let hit = lock_ok(&inner.cache).get(&cache_key);
        if let Some(body) = hit {
            inner.stats.cache_hits.fetch_add(1, Ordering::SeqCst);
            inner.stats.ok.fetch_add(1, Ordering::SeqCst);
            if want_stream {
                // Streamed responses stay chunked even on a hit, so a
                // client never needs both framings: one `cached` frame,
                // then the body line.
                inner.stats.streamed.fetch_add(1, Ordering::SeqCst);
                let ok = write_chunked_head(stream, 200, &[("X-Cache", "hit".to_string())], close)
                    .and_then(|()| write_chunk(stream, progress_frame("cached", 1, 1).as_bytes()))
                    .and_then(|()| write_chunk(stream, format!("{body}\n").as_bytes()))
                    .and_then(|()| finish_chunks(stream));
                return ok.is_ok();
            }
            return write_response(stream, 200, &[("X-Cache", "hit".to_string())], &body, close)
                .is_ok();
        }
    }
    let state = {
        let mut q = lock_ok(&inner.queue);
        if q.len() >= inner.cfg.queue_depth {
            drop(q);
            inner.stats.shed.fetch_add(1, Ordering::SeqCst);
            let secs = retry_after_secs(inner);
            let body = error_body(
                "overloaded",
                &format!(
                    "queue full ({} pending); retry after {secs}s",
                    inner.cfg.queue_depth
                ),
                Vec::new(),
            );
            return write_response(
                stream,
                429,
                &[("Retry-After", secs.to_string())],
                &body,
                close,
            )
            .is_ok();
        }
        let state = Arc::new(JobState::new(limit_ms));
        q.push_back(Job {
            spec,
            cache_key,
            state: Arc::clone(&state),
            job_id: None,
            not_before: None,
            stream: want_stream,
        });
        lock_ok(&inner.registry).push(Arc::downgrade(&state));
        state
    };
    inner.queue_cv.notify_one();
    if want_stream {
        return stream_experiment(stream, inner, &state, close);
    }
    let result = loop {
        let mut done = lock_ok(&state.done);
        if let Some(r) = done.take() {
            break r;
        }
        let (mut done, _timed_out) = state
            .cv
            .wait_timeout(done, Duration::from_millis(25))
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(r) = done.take() {
            break r;
        }
        drop(done);
        if inner.stop_workers.load(Ordering::SeqCst) && !state.finished.load(Ordering::SeqCst) {
            // Backstop: the pool stopped before this job ran (drain
            // budget exhausted while it sat queued).
            state.fire(REASON_DRAIN);
            inner.stats.drain_cancelled.fetch_add(1, Ordering::SeqCst);
            let body = error_body(
                "draining",
                "server stopped before the experiment ran",
                Vec::new(),
            );
            let _ = write_response(stream, 503, &[], &body, true);
            return false;
        }
        if client_gone(stream) {
            state.fire(REASON_DISCONNECT);
            inner.stats.disconnects.fetch_add(1, Ordering::SeqCst);
            return false;
        }
    };
    match result {
        Ok(body) => {
            inner.stats.ok.fetch_add(1, Ordering::SeqCst);
            write_response(
                stream,
                200,
                &[("X-Cache", "miss".to_string())],
                &body,
                close,
            )
            .is_ok()
        }
        Err(err) => match state.reason_code() {
            REASON_DISCONNECT => {
                // Nothing to write — the peer is gone (counted when the
                // disconnect was detected, or here if the worker saw it
                // first via a racing token).
                false
            }
            REASON_DRAIN => {
                inner.stats.drain_cancelled.fetch_add(1, Ordering::SeqCst);
                let body = error_body(
                    "draining",
                    "experiment cancelled by server drain",
                    Vec::new(),
                );
                let _ = write_response(stream, 503, &[], &body, true);
                false
            }
            _ => {
                let status = err.http_status();
                if status >= 500 {
                    inner.stats.server_errors.fetch_add(1, Ordering::SeqCst);
                } else if status == 422 {
                    inner.stats.solve_errors.fetch_add(1, Ordering::SeqCst);
                } else if status != 408 {
                    // 408s are already counted by the watchdog.
                    inner.stats.client_errors.fetch_add(1, Ordering::SeqCst);
                }
                write_response(stream, status, &[], &err.to_error_json(), close).is_ok()
            }
        },
    }
}

/// The streamed tail of `POST /v1/experiments` with `X-Progress: stream`:
/// the 200 head and a `queued` frame commit immediately (guaranteeing at
/// least one frame before the body), fresh progress frames are relayed as
/// the worker reports them, and the final chunk is the report — or, since
/// the status is already on the wire, an in-band `greencloud-error/1`
/// document when the solve fails.
fn stream_experiment(
    stream: &mut TcpStream,
    inner: &ServerInner,
    state: &Arc<JobState>,
    close: bool,
) -> bool {
    inner.stats.streamed.fetch_add(1, Ordering::SeqCst);
    let opened = write_chunked_head(stream, 200, &[("X-Cache", "miss".to_string())], close)
        .and_then(|()| write_chunk(stream, progress_frame("queued", 0, 0).as_bytes()));
    if opened.is_err() {
        state.fire(REASON_DISCONNECT);
        inner.stats.disconnects.fetch_add(1, Ordering::SeqCst);
        return false;
    }
    let mut last_seq = 0u64;
    let result = loop {
        let mut done = lock_ok(&state.done);
        if let Some(r) = done.take() {
            break r;
        }
        let (mut done, _timed_out) = state
            .cv
            .wait_timeout(done, Duration::from_millis(25))
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(r) = done.take() {
            break r;
        }
        drop(done);
        let (seq, frame) = state.latest_progress();
        if seq != last_seq {
            last_seq = seq;
            if let Some(p) = frame {
                let (done_n, total) = p.counts();
                let line = progress_frame(p.kind(), done_n as u64, total as u64);
                if write_chunk(stream, line.as_bytes()).is_err() {
                    state.fire(REASON_DISCONNECT);
                    inner.stats.disconnects.fetch_add(1, Ordering::SeqCst);
                    return false;
                }
            }
        }
        if inner.stop_workers.load(Ordering::SeqCst) && !state.finished.load(Ordering::SeqCst) {
            state.fire(REASON_DRAIN);
            inner.stats.drain_cancelled.fetch_add(1, Ordering::SeqCst);
            let line = error_body(
                "draining",
                "server stopped before the experiment ran",
                Vec::new(),
            );
            let _ = write_chunk(stream, format!("{line}\n").as_bytes());
            let _ = finish_chunks(stream);
            return false;
        }
        if client_gone(stream) {
            state.fire(REASON_DISCONNECT);
            inner.stats.disconnects.fetch_add(1, Ordering::SeqCst);
            return false;
        }
    };
    let final_line = match result {
        Ok(body) => {
            inner.stats.ok.fetch_add(1, Ordering::SeqCst);
            format!("{body}\n")
        }
        Err(err) => match state.reason_code() {
            REASON_DISCONNECT => return false,
            REASON_DRAIN => {
                inner.stats.drain_cancelled.fetch_add(1, Ordering::SeqCst);
                format!(
                    "{}\n",
                    error_body(
                        "draining",
                        "experiment cancelled by server drain",
                        Vec::new(),
                    )
                )
            }
            _ => {
                let status = err.http_status();
                if status >= 500 {
                    inner.stats.server_errors.fetch_add(1, Ordering::SeqCst);
                } else if status == 422 {
                    inner.stats.solve_errors.fetch_add(1, Ordering::SeqCst);
                } else if status != 408 {
                    // 408s are already counted by the watchdog.
                    inner.stats.client_errors.fetch_add(1, Ordering::SeqCst);
                }
                format!("{}\n", err.to_error_json())
            }
        },
    };
    let wrote = write_chunk(stream, final_line.as_bytes()).and_then(|()| finish_chunks(stream));
    wrote.is_ok()
}

/// The `greencloud-job/1` state body for one job.
fn job_state_body(id: &str, e: &crate::store::JobEntry) -> String {
    let mut fields = vec![
        ("schema".to_string(), Json::from(store::JOB_SCHEMA)),
        ("job_id".to_string(), Json::from(id)),
        ("status".to_string(), Json::from(e.status.as_str())),
        ("attempts".to_string(), Json::from(u64::from(e.attempts))),
    ];
    if let Some(code) = &e.error_code {
        fields.push(("error_code".to_string(), Json::from(code.as_str())));
    }
    if let Some(msg) = &e.error_message {
        fields.push(("error_message".to_string(), Json::from(msg.as_str())));
    }
    if let Some(reason) = &e.cancel_reason {
        fields.push(("cancel_reason".to_string(), Json::from(reason.as_str())));
    }
    Json::Object(fields).render()
}

/// `POST /v1/jobs`: parse and normalize the spec, fsync an `Accepted`
/// record, answer `202` with the content-derived job id. Resubmitting
/// identical normalized spec bytes returns the existing job in whatever
/// state it is in — acceptance is idempotent.
fn handle_job_submit(
    stream: &mut TcpStream,
    inner: &ServerInner,
    req: &Request,
    close: bool,
) -> bool {
    inner.stats.received.fetch_add(1, Ordering::SeqCst);
    if inner.draining.load(Ordering::SeqCst) {
        let body = error_body(
            "draining",
            "server is draining; not accepting work",
            Vec::new(),
        );
        let _ = write_response(
            stream,
            503,
            &[("Retry-After", "1".to_string())],
            &body,
            true,
        );
        return false;
    }
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => {
            inner.stats.client_errors.fetch_add(1, Ordering::SeqCst);
            let body = error_body("bad_request", "body is not valid UTF-8", Vec::new());
            return write_response(stream, 400, &[], &body, close).is_ok();
        }
    };
    let spec = match ExperimentSpec::from_json_str(text) {
        Ok(s) => s,
        Err(e) => {
            inner.stats.client_errors.fetch_add(1, Ordering::SeqCst);
            let err = ApiError::from(e);
            return write_response(stream, err.http_status(), &[], &err.to_error_json(), close)
                .is_ok();
        }
    };
    // Jobs are asynchronous: no deadline unless the client asks for one.
    let limit_ms = match parse_deadline(&req.headers) {
        Ok(Some(v)) => v.clamp(1, inner.cfg.max_deadline_ms),
        Ok(None) => u64::MAX,
        Err(raw) => {
            inner.stats.client_errors.fetch_add(1, Ordering::SeqCst);
            let body = deadline_invalid_body(&raw);
            return write_response(stream, 400, &[], &body, close).is_ok();
        }
    };
    let key = spec.to_json_string();
    // Admission control applies to *new* jobs only; the race between this
    // check and the push below can overshoot `queue_depth` by at most the
    // number of concurrent submitters, which is bounded by
    // `max_connections`.
    if lock_ok(&inner.queue).len() >= inner.cfg.queue_depth
        && lock_ok(&inner.store)
            .get(&store::job_id(key.as_bytes()))
            .is_none()
    {
        inner.stats.shed.fetch_add(1, Ordering::SeqCst);
        let secs = retry_after_secs(inner);
        let body = error_body(
            "overloaded",
            &format!(
                "queue full ({} pending); retry after {secs}s",
                inner.cfg.queue_depth
            ),
            Vec::new(),
        );
        return write_response(
            stream,
            429,
            &[("Retry-After", secs.to_string())],
            &body,
            close,
        )
        .is_ok();
    }
    let accepted = lock_ok(&inner.store).accept(&key);
    let (id, new) = match accepted {
        Ok(t) => t,
        Err(e) => {
            inner.stats.server_errors.fetch_add(1, Ordering::SeqCst);
            let err = ApiError::from(e);
            return write_response(stream, 500, &[], &err.to_error_json(), close).is_ok();
        }
    };
    let status = if new {
        let state = Arc::new(JobState::new(limit_ms));
        lock_ok(&inner.registry).push(Arc::downgrade(&state));
        lock_ok(&inner.job_states).insert(id.clone(), Arc::clone(&state));
        lock_ok(&inner.queue).push_back(Job {
            spec,
            cache_key: key,
            state,
            job_id: Some(id.clone()),
            not_before: None,
            stream: false,
        });
        inner.queue_cv.notify_one();
        JobStatus::Accepted
    } else {
        match lock_ok(&inner.store).get(&id).map(|e| e.status) {
            Some(s) => s,
            None => JobStatus::Accepted,
        }
    };
    let body = Json::obj([
        ("schema", Json::from(store::JOB_SCHEMA)),
        ("job_id", Json::from(id.as_str())),
        ("status", Json::from(status.as_str())),
    ])
    .render();
    write_response(
        stream,
        202,
        &[("Location", format!("/v1/jobs/{id}"))],
        &body,
        close,
    )
    .is_ok()
}

/// `GET`/`DELETE /v1/jobs/:id` dispatch.
fn handle_job_entity(
    stream: &mut TcpStream,
    inner: &ServerInner,
    req: &Request,
    close: bool,
) -> bool {
    let id = req.path.trim_start_matches("/v1/jobs/");
    if id.is_empty() || id.contains('/') {
        inner.stats.client_errors.fetch_add(1, Ordering::SeqCst);
        let body = error_body("not_found", &format!("no route {}", req.path), Vec::new());
        return write_response(stream, 404, &[], &body, close).is_ok();
    }
    match req.method.as_str() {
        "GET" => handle_job_get(stream, inner, id, close),
        "DELETE" => handle_job_delete(stream, inner, id, close),
        _ => {
            inner.stats.client_errors.fetch_add(1, Ordering::SeqCst);
            let body = error_body(
                "method_not_allowed",
                &format!("{} is not supported on {}", req.method, req.path),
                Vec::new(),
            );
            write_response(
                stream,
                405,
                &[("Allow", "GET, DELETE".to_string())],
                &body,
                close,
            )
            .is_ok()
        }
    }
}

/// `GET /v1/jobs/:id`: the finished report for completed jobs, a
/// `greencloud-job/1` state document otherwise.
fn handle_job_get(stream: &mut TcpStream, inner: &ServerInner, id: &str, close: bool) -> bool {
    // Clone what the response needs and release the store lock before
    // touching the socket — a slow reader must not stall the workers.
    let found = {
        let s = lock_ok(&inner.store);
        s.get(id)
            .map(|e| (e.status, e.report.clone(), job_state_body(id, e)))
    };
    let Some((status, report, state_body)) = found else {
        inner.stats.client_errors.fetch_add(1, Ordering::SeqCst);
        let body = error_body("job_not_found", &format!("no job {id}"), Vec::new());
        return write_response(stream, 404, &[], &body, close).is_ok();
    };
    match (status, report) {
        (JobStatus::Completed, Some(report)) => {
            inner.stats.ok.fetch_add(1, Ordering::SeqCst);
            write_response(
                stream,
                200,
                &[("X-Job-Status", "completed".to_string())],
                &report,
                close,
            )
            .is_ok()
        }
        _ => write_response(
            stream,
            200,
            &[("X-Job-Status", status.as_str().to_string())],
            &state_body,
            close,
        )
        .is_ok(),
    }
}

/// `DELETE /v1/jobs/:id`: fires the job's cancel token (queued or
/// mid-solve — the engine's job-id registry reaches a running solve) and
/// records a terminal `Cancelled`. Terminal jobs answer `409`.
fn handle_job_delete(stream: &mut TcpStream, inner: &ServerInner, id: &str, close: bool) -> bool {
    if let Some(state) = lock_ok(&inner.job_states).get(id).cloned() {
        state.fire(REASON_CANCEL_API);
    }
    // Belt for a solve already registered with the engine: same token,
    // addressed by job id.
    inner.engine.cancels().fire(id);
    let res = lock_ok(&inner.store).cancel(id, "cancelled by client request");
    match res {
        Err(e) => {
            inner.stats.server_errors.fetch_add(1, Ordering::SeqCst);
            let err = ApiError::from(e);
            write_response(stream, 500, &[], &err.to_error_json(), close).is_ok()
        }
        Ok(true) => {
            let body = Json::obj([
                ("schema", Json::from(store::JOB_SCHEMA)),
                ("job_id", Json::from(id)),
                ("status", Json::from("cancelled")),
            ])
            .render();
            write_response(stream, 200, &[], &body, close).is_ok()
        }
        Ok(false) => {
            let current = lock_ok(&inner.store).get(id).map(|e| e.status);
            inner.stats.client_errors.fetch_add(1, Ordering::SeqCst);
            match current {
                None => {
                    let body = error_body("job_not_found", &format!("no job {id}"), Vec::new());
                    write_response(stream, 404, &[], &body, close).is_ok()
                }
                Some(s) => {
                    let body = error_body(
                        "job_terminal",
                        &format!("job {id} is already {}", s.as_str()),
                        Vec::new(),
                    );
                    write_response(stream, 409, &[], &body, close).is_ok()
                }
            }
        }
    }
}

/// `GET /v1/stats` body: all counters plus instantaneous gauges.
fn stats_json(inner: &ServerInner) -> String {
    let pending = lock_ok(&inner.queue).len();
    let cached = lock_ok(&inner.cache).len();
    let s = inner.stats.snapshot();
    let js = lock_ok(&inner.store).stats();
    Json::obj([
        ("schema", Json::from("greencloud-serve-stats/1")),
        ("received", Json::from(s.received)),
        ("ok", Json::from(s.ok)),
        ("shed", Json::from(s.shed)),
        ("cache_hits", Json::from(s.cache_hits)),
        ("deadline_expired", Json::from(s.deadline_expired)),
        ("disconnects", Json::from(s.disconnects)),
        ("drain_cancelled", Json::from(s.drain_cancelled)),
        ("client_errors", Json::from(s.client_errors)),
        ("solve_errors", Json::from(s.solve_errors)),
        ("server_errors", Json::from(s.server_errors)),
        ("pending", Json::from(pending as u64)),
        (
            "inflight",
            Json::from(inner.inflight.load(Ordering::SeqCst) as u64),
        ),
        (
            "connections",
            Json::from(inner.live_conns.load(Ordering::SeqCst) as u64),
        ),
        ("cached_reports", Json::from(cached as u64)),
        (
            "draining",
            Json::from(inner.draining.load(Ordering::SeqCst)),
        ),
        (
            "ema_solve_ms",
            Json::from(inner.ema_ms.load(Ordering::SeqCst)),
        ),
        ("jobs_total", Json::from(js.jobs_total)),
        ("jobs_live", Json::from(js.jobs_live)),
        ("jobs_completed", Json::from(js.jobs_completed)),
        ("jobs_failed", Json::from(js.jobs_failed)),
        ("jobs_cancelled", Json::from(js.jobs_cancelled)),
        (
            "jobs_redelivered",
            Json::from(inner.stats.jobs_redelivered.load(Ordering::SeqCst)),
        ),
        (
            "streamed",
            Json::from(inner.stats.streamed.load(Ordering::SeqCst)),
        ),
        ("journal_bytes", Json::from(js.journal_bytes)),
        ("snapshot_bytes", Json::from(js.snapshot_bytes)),
        ("compactions", Json::from(js.compactions)),
        ("rss_kb", Json::from(read_rss_kb())),
    ])
    .render()
}

/// Resident set size in KiB from `/proc/self/status`, 0 where
/// unavailable — an observability gauge, never a decision input.
fn read_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| {
                    l.chars()
                        .filter(|c| c.is_ascii_digit())
                        .collect::<String>()
                        .parse::<u64>()
                        .ok()
                })
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used_live_entry() {
        let mut c = ReportCache::new(2);
        c.insert("a".into(), Arc::new("A".into()));
        c.insert("b".into(), Arc::new("B".into()));
        // Touch `a` so `b` becomes the LRU entry.
        assert_eq!(c.get("a").as_deref().map(String::as_str), Some("A"));
        c.insert("c".into(), Arc::new("C".into()));
        assert_eq!(c.len(), 2);
        assert!(c.get("b").is_none(), "b was LRU and must be evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
    }

    #[test]
    fn lru_reinsert_refreshes_and_capacity_zero_disables() {
        let mut c = ReportCache::new(2);
        c.insert("a".into(), Arc::new("A1".into()));
        c.insert("b".into(), Arc::new("B".into()));
        c.insert("a".into(), Arc::new("A2".into()));
        c.insert("c".into(), Arc::new("C".into()));
        assert_eq!(c.get("a").as_deref().map(String::as_str), Some("A2"));
        assert!(c.get("b").is_none());

        let mut z = ReportCache::new(0);
        z.insert("a".into(), Arc::new("A".into()));
        assert_eq!(z.len(), 0);
        assert!(z.get("a").is_none());
    }

    #[test]
    fn lru_recency_queue_stays_bounded() {
        let mut c = ReportCache::new(2);
        c.insert("a".into(), Arc::new("A".into()));
        c.insert("b".into(), Arc::new("B".into()));
        for _ in 0..10_000 {
            c.get("a");
            c.get("b");
        }
        assert!(
            c.recency.len() <= c.capacity * 8 + 16 + 2,
            "recency queue grew to {}",
            c.recency.len()
        );
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn head_end_finder() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_head_end(b""), None);
    }

    #[test]
    fn parse_head_accepts_and_rejects() {
        let (m, p, h) = parse_head("POST /v1/experiments HTTP/1.1\r\nContent-Length: 12\r\nX-Y: z")
            .expect("parses");
        assert_eq!(m, "POST");
        assert_eq!(p, "/v1/experiments");
        assert_eq!(header(&h, "content-length"), Some("12"));
        assert_eq!(header(&h, "x-y"), Some("z"));
        assert!(parse_head("GARBAGE").is_err());
        assert!(parse_head("GET / SPDY/9").is_err());
        assert!(parse_head("GET / HTTP/1.1\r\nno-colon-here").is_err());
    }

    #[test]
    fn fire_is_first_cause_wins() {
        let s = JobState::new(100);
        assert_eq!(s.reason_code(), REASON_NONE);
        assert!(!s.cancel.load(Ordering::SeqCst));
        s.fire(REASON_DISCONNECT);
        s.fire(REASON_DEADLINE);
        s.fire(REASON_DRAIN);
        assert_eq!(s.reason_code(), REASON_DISCONNECT);
        assert!(s.cancel.load(Ordering::SeqCst));
    }

    #[test]
    fn reason_errors_are_typed() {
        assert_eq!(
            reason_error(REASON_DEADLINE, 250),
            ApiError::Deadline { limit_ms: 250 }
        );
        assert!(matches!(
            reason_error(REASON_DISCONNECT, 0),
            ApiError::Cancelled(_)
        ));
        assert!(matches!(
            reason_error(REASON_DRAIN, 0),
            ApiError::Cancelled(_)
        ));
    }

    #[test]
    fn error_body_is_schema_versioned() {
        let body = error_body(
            "overloaded",
            "queue full",
            vec![("retry_after_s", Json::from(3u64))],
        );
        let doc = Json::parse(&body).expect("parses");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(ERROR_SCHEMA));
        assert_eq!(doc.get("code").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(
            doc.get("message").and_then(Json::as_str),
            Some("queue full")
        );
        assert_eq!(doc.get("retry_after_s").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn config_normalization_clamps_degenerate_values() {
        let engine = Engine::new(greencloud_climate::catalog::WorldCatalog::synthetic(24, 7));
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 0,
            queue_depth: 0,
            default_deadline_ms: 0,
            max_deadline_ms: 0,
            ..ServeConfig::default()
        };
        let server = Server::bind(engine, cfg).expect("binds");
        assert_eq!(server.inner.cfg.max_inflight, 1);
        assert_eq!(server.inner.cfg.queue_depth, 1);
        assert_eq!(server.inner.cfg.max_deadline_ms, 1);
        assert_eq!(server.inner.cfg.default_deadline_ms, 1);
        server.trigger_shutdown();
        let summary = server.join();
        assert_eq!(summary.received, 0);
    }

    #[test]
    fn ema_and_retry_after_stay_clamped() {
        let engine = Engine::new(greencloud_climate::catalog::WorldCatalog::synthetic(24, 7));
        let server = Server::bind(
            engine,
            ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                ..ServeConfig::default()
            },
        )
        .expect("binds");
        assert_eq!(
            retry_after_secs(&server.inner),
            1,
            "empty queue floors at 1s"
        );
        update_ema(&server.inner, 1000);
        update_ema(&server.inner, 2000);
        let ema = server.inner.ema_ms.load(Ordering::SeqCst);
        assert!((1000..=2000).contains(&ema), "ema {ema}");
        server.inner.ema_ms.store(10_000_000, Ordering::SeqCst);
        assert_eq!(retry_after_secs(&server.inner), 60, "cap at 60s");
        server.trigger_shutdown();
        server.join();
    }

    #[test]
    fn status_reasons_cover_every_emitted_code() {
        for code in [
            200, 202, 400, 404, 405, 408, 409, 411, 413, 422, 429, 431, 499, 500, 503,
        ] {
            assert_ne!(status_reason(code), "Unknown", "status {code}");
        }
    }

    #[test]
    fn deadline_header_distinguishes_absent_valid_and_malformed() {
        let hdrs = |v: &str| vec![("x-deadline-ms".to_string(), v.to_string())];
        assert_eq!(parse_deadline(&[]), Ok(None));
        assert_eq!(parse_deadline(&hdrs("250")), Ok(Some(250)));
        assert_eq!(parse_deadline(&hdrs(" 42 ")), Ok(Some(42)));
        assert_eq!(parse_deadline(&hdrs("-5")), Err("-5".to_string()));
        assert_eq!(parse_deadline(&hdrs("soon")), Err("soon".to_string()));
        assert_eq!(parse_deadline(&hdrs("1.5")), Err("1.5".to_string()));
        let body = deadline_invalid_body("-5");
        let doc = Json::parse(&body).expect("parses");
        assert_eq!(
            doc.get("code").and_then(Json::as_str),
            Some("deadline_invalid")
        );
    }
}
