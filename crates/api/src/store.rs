//! Crash-safe write-ahead job store backing the `repro serve` job API.
//!
//! The service layer acknowledges work with a 202 *before* solving it, so
//! the acknowledgment must survive a process crash: a `kill -9` between
//! the 202 and the report must not lose the job. This module is the
//! durability substrate — a hand-rolled write-ahead journal in the
//! workspace's no-external-deps style (cf. [`crate::json`]):
//!
//! * **Records.** Five kinds trace a job's lifecycle: `Accepted` (spec
//!   bytes, fsynced before the 202 is written), `Started` (attempt
//!   counter, one per delivery), `Completed` (the rendered report),
//!   `Failed` (stable `greencloud-error/1` code + message), and
//!   `Cancelled` (reason). Each record is framed as
//!   `[len: u32 LE][crc32: u32 LE][payload]`; the CRC covers the payload.
//! * **Torn-tail truncation.** Replay walks records until the first
//!   incomplete frame or checksum mismatch, keeps exactly the valid
//!   prefix, and truncates the file there — a crash mid-append loses at
//!   most the unacknowledged suffix, never acknowledged history.
//! * **fsync-on-accept.** Only `Accepted` is fsynced: that is the record
//!   backing an externally visible promise. Later records are buffered
//!   writes — losing a `Completed` to a crash merely re-runs a
//!   deterministic experiment on replay.
//! * **Compaction.** Once the journal grows past a threshold and terminal
//!   jobs dominate, the store collapses per-job history into a snapshot
//!   (`<journal>.snap`, committed by atomic rename) and resets the
//!   journal. Replay loads the snapshot first, then the journal.
//! * **Content-derived ids.** [`job_id`] hashes the *normalized* spec
//!   bytes (SHA-256, truncated to 128 bits, hex), so resubmitting the
//!   same experiment — however formatted — idempotently names the same
//!   job.
//!
//! The store itself is synchronous and single-threaded; the serve layer
//! wraps it in a mutex and owns scheduling (redelivery, backoff) — see
//! `crate::serve`.

use crate::error::ApiError;
use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Schema identifier of the job-state JSON bodies served by the job API.
pub const JOB_SCHEMA: &str = "greencloud-job/1";

/// Records larger than this are treated as corruption during replay — a
/// torn length prefix must not trigger a multi-gigabyte allocation.
const MAX_RECORD_BYTES: u32 = 256 * 1024 * 1024;

/// A failure of the job store: the backing file misbehaved or replay met
/// bytes that no valid journal can contain.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io(String),
    /// A snapshot (which atomic rename should make all-or-nothing) failed
    /// to replay — unlike a torn journal tail, this is not survivable.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "journal io: {m}"),
            StoreError::Corrupt(m) => write!(f, "journal corrupt: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

impl From<StoreError> for ApiError {
    fn from(e: StoreError) -> Self {
        ApiError::Store(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Content-derived job ids: SHA-256 over the normalized spec bytes.
// ---------------------------------------------------------------------------

/// SHA-256 round constants (FIPS 180-4).
const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 of `data` (FIPS 180-4), hand-rolled: the vendor set carries no
/// hashing crate, and the job-id contract needs a collision-resistant,
/// stable-across-platforms digest rather than a seeded runtime hash.
fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h0 = 0x6a09e667u32;
    let mut h1 = 0xbb67ae85u32;
    let mut h2 = 0x3c6ef372u32;
    let mut h3 = 0xa54ff53au32;
    let mut h4 = 0x510e527fu32;
    let mut h5 = 0x9b05688cu32;
    let mut h6 = 0x1f83d9abu32;
    let mut h7 = 0x5be0cd19u32;

    // Merkle–Damgård padding: 0x80, zeros to 56 mod 64, bit length BE.
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    for chunk in msg.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            let mut v = 0u32;
            for &b in word {
                v = (v << 8) | u32::from(b);
            }
            w[i] = v;
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let (mut a, mut b, mut c, mut d) = (h0, h1, h2, h3);
        let (mut e, mut f, mut g, mut h) = (h4, h5, h6, h7);
        for (&wi, &ki) in w.iter().zip(SHA256_K.iter()) {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(ki)
                .wrapping_add(wi);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        h0 = h0.wrapping_add(a);
        h1 = h1.wrapping_add(b);
        h2 = h2.wrapping_add(c);
        h3 = h3.wrapping_add(d);
        h4 = h4.wrapping_add(e);
        h5 = h5.wrapping_add(f);
        h6 = h6.wrapping_add(g);
        h7 = h7.wrapping_add(h);
    }

    let mut out = [0u8; 32];
    for (i, v) in [h0, h1, h2, h3, h4, h5, h6, h7].iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&v.to_be_bytes());
    }
    out
}

/// The content-derived job id for a normalized spec document: the first
/// 128 bits of `SHA-256(spec_bytes)` in lowercase hex (32 characters).
/// Resubmitting byte-identical normalized spec bytes names the same job.
pub fn job_id(spec_bytes: &[u8]) -> String {
    let digest = sha256(spec_bytes);
    let mut out = String::with_capacity(32);
    for b in digest.iter().take(16) {
        let _ = fmt::Write::write_fmt(&mut out, format_args!("{b:02x}"));
    }
    out
}

/// The consistent-hash ring key for arbitrary bytes: the first 64 bits of
/// `SHA-256(data)`, big-endian. For normalized spec bytes this equals the
/// first 16 hex characters of [`job_id`], so the router can place a
/// `POST` body and a later `GET /v1/jobs/:id` for the job it created on
/// the same ring point without reparsing the spec.
pub fn ring_key(data: &[u8]) -> u64 {
    let digest = sha256(data);
    let mut key = 0u64;
    for b in digest.iter().take(8) {
        key = (key << 8) | u64::from(*b);
    }
    key
}

/// Recovers the ring key embedded in a content-derived job id (its first
/// 16 hex characters). Returns `None` when `id` is too short or not hex —
/// such ids name no job anywhere, so any backend may serve the 404.
pub fn ring_key_of_job_id(id: &str) -> Option<u64> {
    let prefix = id.get(..16)?;
    u64::from_str_radix(prefix, 16).ok()
}

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) — the per-record checksum.
/// Bitwise, no table: journal records are small and rare relative to
/// solves, so simplicity wins over throughput here.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------------
// Record encoding.
// ---------------------------------------------------------------------------

const KIND_ACCEPTED: u8 = 1;
const KIND_STARTED: u8 = 2;
const KIND_COMPLETED: u8 = 3;
const KIND_FAILED: u8 = 4;
const KIND_CANCELLED: u8 = 5;

/// One journal record: a step of a job's lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// The job was admitted; `spec` is the normalized spec document. The
    /// only fsynced record — it backs the 202 acknowledgment.
    Accepted {
        /// Content-derived id (see [`job_id`]).
        job_id: String,
        /// Normalized `greencloud-spec/1` text.
        spec: String,
    },
    /// A delivery attempt began; `attempt` counts from 1.
    Started {
        /// Content-derived id.
        job_id: String,
        /// 1-based delivery attempt.
        attempt: u32,
    },
    /// The job finished; `report` is the rendered `greencloud-report/1`.
    Completed {
        /// Content-derived id.
        job_id: String,
        /// Rendered report body.
        report: String,
    },
    /// The job failed terminally.
    Failed {
        /// Content-derived id.
        job_id: String,
        /// Stable `greencloud-error/1` code.
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// The job was cancelled before completion.
    Cancelled {
        /// Content-derived id.
        job_id: String,
        /// Why it was cancelled.
        reason: String,
    },
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Little-endian `u32` at `at`, or `None` past the end.
fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let s = bytes.get(at..at.checked_add(4)?)?;
    let mut v = 0u32;
    for (i, &b) in s.iter().enumerate() {
        v |= u32::from(b) << (8 * i);
    }
    Some(v)
}

/// Length-prefixed UTF-8 string at `at`; returns `(value, next_offset)`.
fn read_str(bytes: &[u8], at: usize) -> Result<(String, usize), String> {
    let len = read_u32(bytes, at).ok_or("truncated length prefix")? as usize;
    let start = at + 4;
    let end = start.checked_add(len).ok_or("length overflow")?;
    let raw = bytes.get(start..end).ok_or("truncated string field")?;
    let text = std::str::from_utf8(raw).map_err(|_| "non-UTF-8 string field".to_string())?;
    Ok((text.to_string(), end))
}

impl Record {
    /// The id of the job this record belongs to.
    pub fn job_id(&self) -> &str {
        match self {
            Record::Accepted { job_id, .. }
            | Record::Started { job_id, .. }
            | Record::Completed { job_id, .. }
            | Record::Failed { job_id, .. }
            | Record::Cancelled { job_id, .. } => job_id,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Record::Accepted { job_id, spec } => {
                out.push(KIND_ACCEPTED);
                push_str(&mut out, job_id);
                push_str(&mut out, spec);
            }
            Record::Started { job_id, attempt } => {
                out.push(KIND_STARTED);
                push_str(&mut out, job_id);
                push_u32(&mut out, *attempt);
            }
            Record::Completed { job_id, report } => {
                out.push(KIND_COMPLETED);
                push_str(&mut out, job_id);
                push_str(&mut out, report);
            }
            Record::Failed {
                job_id,
                code,
                message,
            } => {
                out.push(KIND_FAILED);
                push_str(&mut out, job_id);
                push_str(&mut out, code);
                push_str(&mut out, message);
            }
            Record::Cancelled { job_id, reason } => {
                out.push(KIND_CANCELLED);
                push_str(&mut out, job_id);
                push_str(&mut out, reason);
            }
        }
        out
    }

    fn decode_payload(payload: &[u8]) -> Result<Record, String> {
        let kind = *payload.first().ok_or("empty payload")?;
        let (job_id, at) = read_str(payload, 1)?;
        match kind {
            KIND_ACCEPTED => {
                let (spec, _) = read_str(payload, at)?;
                Ok(Record::Accepted { job_id, spec })
            }
            KIND_STARTED => {
                let attempt = read_u32(payload, at).ok_or("truncated attempt")?;
                Ok(Record::Started { job_id, attempt })
            }
            KIND_COMPLETED => {
                let (report, _) = read_str(payload, at)?;
                Ok(Record::Completed { job_id, report })
            }
            KIND_FAILED => {
                let (code, at) = read_str(payload, at)?;
                let (message, _) = read_str(payload, at)?;
                Ok(Record::Failed {
                    job_id,
                    code,
                    message,
                })
            }
            KIND_CANCELLED => {
                let (reason, _) = read_str(payload, at)?;
                Ok(Record::Cancelled { job_id, reason })
            }
            other => Err(format!("unknown record kind {other}")),
        }
    }

    /// The on-disk frame: `[len][crc32][payload]`, both prefixes LE.
    fn frame(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(payload.len() + 8);
        push_u32(&mut out, payload.len() as u32);
        push_u32(&mut out, crc32(&payload));
        out.extend_from_slice(&payload);
        out
    }
}

/// Walks frames from the start of `bytes`. Returns the decoded records,
/// the byte offset of the end of the last *valid* frame (the torn-tail
/// truncation point), and what stopped the walk early, if anything.
fn replay_frames(bytes: &[u8]) -> (Vec<Record>, usize, Option<String>) {
    let mut records = Vec::new();
    let mut at = 0usize;
    loop {
        if at == bytes.len() {
            return (records, at, None);
        }
        let Some(len) = read_u32(bytes, at) else {
            return (records, at, Some("torn frame header".to_string()));
        };
        if len > MAX_RECORD_BYTES {
            return (
                records,
                at,
                Some(format!("implausible record length {len}")),
            );
        }
        let Some(crc) = read_u32(bytes, at + 4) else {
            return (records, at, Some("torn frame header".to_string()));
        };
        let start = at + 8;
        let Some(end) = start.checked_add(len as usize) else {
            return (records, at, Some("frame length overflow".to_string()));
        };
        let Some(payload) = bytes.get(start..end) else {
            return (records, at, Some("torn record payload".to_string()));
        };
        if crc32(payload) != crc {
            return (records, at, Some("checksum mismatch".to_string()));
        }
        match Record::decode_payload(payload) {
            Ok(r) => records.push(r),
            Err(e) => return (records, at, Some(format!("undecodable payload: {e}"))),
        }
        at = end;
    }
}

// ---------------------------------------------------------------------------
// The store.
// ---------------------------------------------------------------------------

/// A job's lifecycle state, as reconstructed from its records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Acknowledged, waiting for a worker.
    Accepted,
    /// A delivery attempt is (or was, at crash time) underway.
    Started,
    /// Finished with a report.
    Completed,
    /// Failed terminally.
    Failed,
    /// Cancelled before completion.
    Cancelled,
}

impl JobStatus {
    /// Lowercase wire name, used in job-state JSON bodies.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Accepted => "accepted",
            JobStatus::Started => "started",
            JobStatus::Completed => "completed",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }

    /// True for states a job never leaves.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Completed | JobStatus::Failed | JobStatus::Cancelled
        )
    }
}

/// Everything the store knows about one job.
#[derive(Debug, Clone)]
pub struct JobEntry {
    /// Normalized spec text (the cache key and id preimage).
    pub spec: Arc<String>,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Delivery attempts so far (count of `Started` records).
    pub attempts: u32,
    /// The rendered report, for completed jobs.
    pub report: Option<Arc<String>>,
    /// Stable error code, for failed jobs.
    pub error_code: Option<String>,
    /// Error detail, for failed jobs.
    pub error_message: Option<String>,
    /// Cancellation reason, for cancelled jobs.
    pub cancel_reason: Option<String>,
}

/// Counters for `/v1/stats` and operator visibility.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Bytes in the active journal file.
    pub journal_bytes: u64,
    /// Bytes in the snapshot file (0 before the first compaction).
    pub snapshot_bytes: u64,
    /// Jobs known to the store, any state.
    pub jobs_total: u64,
    /// Jobs in a non-terminal state (accepted or started).
    pub jobs_live: u64,
    /// Jobs completed with a report.
    pub jobs_completed: u64,
    /// Jobs failed terminally.
    pub jobs_failed: u64,
    /// Jobs cancelled.
    pub jobs_cancelled: u64,
    /// Compactions performed since this store opened.
    pub compactions: u64,
}

/// The write-ahead job store (see the module docs). All mutating calls
/// update the in-memory index first and then append to the journal, so a
/// write error leaves memory consistent (at the cost of durability the
/// caller is told about through the `Err`).
#[derive(Debug)]
pub struct JobStore {
    /// Journal path; `None` for an ephemeral (memory-only) store.
    path: Option<PathBuf>,
    /// Append handle on the journal (absent for ephemeral stores).
    file: Option<File>,
    jobs: HashMap<String, JobEntry>,
    /// Insertion order of job ids — the deterministic iteration order for
    /// compaction and recovery (`jobs` itself is never iterated).
    order: Vec<String>,
    journal_bytes: u64,
    snapshot_bytes: u64,
    compactions: u64,
    /// Journal size that arms auto-compaction (0 disables).
    compact_threshold: u64,
}

fn snap_path(journal: &Path) -> PathBuf {
    let mut os = journal.as_os_str().to_os_string();
    os.push(".snap");
    PathBuf::from(os)
}

impl JobStore {
    /// A memory-only store: the same API with no durability — backs
    /// `repro serve --no-persist` and unit tests.
    pub fn ephemeral() -> JobStore {
        JobStore {
            path: None,
            file: None,
            jobs: HashMap::new(),
            order: Vec::new(),
            journal_bytes: 0,
            snapshot_bytes: 0,
            compactions: 0,
            compact_threshold: 0,
        }
    }

    /// Opens (or creates) the journal at `path`, replaying the snapshot
    /// and then the journal into memory. A torn journal tail is truncated
    /// in place; a corrupt snapshot is a hard error (atomic rename makes
    /// snapshots all-or-nothing, so corruption there is real damage).
    pub fn open(path: impl Into<PathBuf>) -> Result<JobStore, StoreError> {
        let path = path.into();
        let mut store = JobStore {
            path: Some(path.clone()),
            file: None,
            jobs: HashMap::new(),
            order: Vec::new(),
            journal_bytes: 0,
            snapshot_bytes: 0,
            compactions: 0,
            compact_threshold: 4 * 1024 * 1024,
        };

        let snap = snap_path(&path);
        if snap.exists() {
            let bytes = fs::read(&snap)?;
            let (records, consumed, tail) = replay_frames(&bytes);
            if tail.is_some() || consumed != bytes.len() {
                return Err(StoreError::Corrupt(format!(
                    "snapshot {}: {}",
                    snap.display(),
                    tail.unwrap_or_else(|| "trailing bytes".to_string())
                )));
            }
            for r in records {
                store.apply(r);
            }
            store.snapshot_bytes = bytes.len() as u64;
        }

        if path.exists() {
            let bytes = fs::read(&path)?;
            let (records, consumed, _tail) = replay_frames(&bytes);
            for r in records {
                store.apply(r);
            }
            if consumed < bytes.len() {
                // Torn tail: keep exactly the valid prefix.
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(consumed as u64)?;
                f.sync_data()?;
            }
            store.journal_bytes = consumed as u64;
        }

        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        store.file = Some(file);
        Ok(store)
    }

    /// Folds one record into the in-memory index. Records for terminal
    /// jobs are ignored (replay tolerance; live writers guard upstream).
    fn apply(&mut self, record: Record) {
        match record {
            Record::Accepted { job_id, spec } => {
                if self.jobs.contains_key(&job_id) {
                    return;
                }
                self.order.push(job_id.clone());
                self.jobs.insert(
                    job_id,
                    JobEntry {
                        spec: Arc::new(spec),
                        status: JobStatus::Accepted,
                        attempts: 0,
                        report: None,
                        error_code: None,
                        error_message: None,
                        cancel_reason: None,
                    },
                );
            }
            Record::Started { job_id, attempt } => {
                if let Some(e) = self.jobs.get_mut(&job_id) {
                    if !e.status.is_terminal() {
                        e.status = JobStatus::Started;
                        e.attempts = e.attempts.max(attempt);
                    }
                }
            }
            Record::Completed { job_id, report } => {
                if let Some(e) = self.jobs.get_mut(&job_id) {
                    if !e.status.is_terminal() {
                        e.status = JobStatus::Completed;
                        e.report = Some(Arc::new(report));
                    }
                }
            }
            Record::Failed {
                job_id,
                code,
                message,
            } => {
                if let Some(e) = self.jobs.get_mut(&job_id) {
                    if !e.status.is_terminal() {
                        e.status = JobStatus::Failed;
                        e.error_code = Some(code);
                        e.error_message = Some(message);
                    }
                }
            }
            Record::Cancelled { job_id, reason } => {
                if let Some(e) = self.jobs.get_mut(&job_id) {
                    if !e.status.is_terminal() {
                        e.status = JobStatus::Cancelled;
                        e.cancel_reason = Some(reason);
                    }
                }
            }
        }
    }

    /// Appends a record frame; `durable` forces the bytes to disk before
    /// returning (the fsync-on-accept discipline).
    fn append(&mut self, record: &Record, durable: bool) -> Result<(), StoreError> {
        let Some(file) = self.file.as_mut() else {
            return Ok(());
        };
        let frame = record.frame();
        file.write_all(&frame)?;
        if durable {
            file.sync_data()?;
        }
        self.journal_bytes += frame.len() as u64;
        Ok(())
    }

    /// Admits a job for `spec` (normalized spec text). Returns its
    /// content-derived id and whether the job is new; resubmission of the
    /// same normalized bytes is idempotent and touches neither memory nor
    /// disk. New jobs are fsynced before this returns — the caller may
    /// acknowledge externally once it has the id.
    pub fn accept(&mut self, spec: &str) -> Result<(String, bool), StoreError> {
        let id = job_id(spec.as_bytes());
        if self.jobs.contains_key(&id) {
            return Ok((id, false));
        }
        self.apply(Record::Accepted {
            job_id: id.clone(),
            spec: spec.to_string(),
        });
        self.append(
            &Record::Accepted {
                job_id: id.clone(),
                spec: spec.to_string(),
            },
            true,
        )?;
        Ok((id, true))
    }

    /// Marks a delivery attempt on a live job and returns its 1-based
    /// attempt number (`None` for unknown or terminal jobs).
    pub fn start(&mut self, id: &str) -> Result<Option<u32>, StoreError> {
        let attempt = match self.jobs.get(id) {
            Some(e) if !e.status.is_terminal() => e.attempts + 1,
            _ => return Ok(None),
        };
        self.apply(Record::Started {
            job_id: id.to_string(),
            attempt,
        });
        self.append(
            &Record::Started {
                job_id: id.to_string(),
                attempt,
            },
            false,
        )?;
        Ok(Some(attempt))
    }

    /// Records a completion. Returns false (touching nothing) when the
    /// job is unknown or already terminal — so a worker finishing after a
    /// client cancellation cannot resurrect the job.
    pub fn complete(&mut self, id: &str, report: &str) -> Result<bool, StoreError> {
        if !self.is_live(id) {
            return Ok(false);
        }
        self.apply(Record::Completed {
            job_id: id.to_string(),
            report: report.to_string(),
        });
        self.append(
            &Record::Completed {
                job_id: id.to_string(),
                report: report.to_string(),
            },
            false,
        )?;
        Ok(true)
    }

    /// Records a terminal failure (same guard as [`JobStore::complete`]).
    pub fn fail(&mut self, id: &str, code: &str, message: &str) -> Result<bool, StoreError> {
        if !self.is_live(id) {
            return Ok(false);
        }
        self.apply(Record::Failed {
            job_id: id.to_string(),
            code: code.to_string(),
            message: message.to_string(),
        });
        self.append(
            &Record::Failed {
                job_id: id.to_string(),
                code: code.to_string(),
                message: message.to_string(),
            },
            false,
        )?;
        Ok(true)
    }

    /// Records a cancellation (same guard as [`JobStore::complete`]).
    pub fn cancel(&mut self, id: &str, reason: &str) -> Result<bool, StoreError> {
        if !self.is_live(id) {
            return Ok(false);
        }
        self.apply(Record::Cancelled {
            job_id: id.to_string(),
            reason: reason.to_string(),
        });
        self.append(
            &Record::Cancelled {
                job_id: id.to_string(),
                reason: reason.to_string(),
            },
            false,
        )?;
        Ok(true)
    }

    fn is_live(&self, id: &str) -> bool {
        self.jobs.get(id).is_some_and(|e| !e.status.is_terminal())
    }

    /// The entry for `id`, if the store knows the job.
    pub fn get(&self, id: &str) -> Option<&JobEntry> {
        self.jobs.get(id)
    }

    /// `(id, entry)` for every job, in acceptance order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &JobEntry)> {
        self.order
            .iter()
            .filter_map(|id| self.jobs.get(id).map(|e| (id.as_str(), e)))
    }

    /// Jobs needing redelivery — accepted or started but never terminal —
    /// as `(id, attempts_so_far)`, in acceptance order.
    pub fn recoverable(&self) -> Vec<(String, u32)> {
        self.order
            .iter()
            .filter_map(|id| {
                self.jobs.get(id).and_then(|e| {
                    if e.status.is_terminal() {
                        None
                    } else {
                        Some((id.clone(), e.attempts))
                    }
                })
            })
            .collect()
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        let mut s = StoreStats {
            journal_bytes: self.journal_bytes,
            snapshot_bytes: self.snapshot_bytes,
            jobs_total: self.order.len() as u64,
            compactions: self.compactions,
            ..StoreStats::default()
        };
        for id in &self.order {
            match self.jobs.get(id).map(|e| e.status) {
                Some(JobStatus::Completed) => s.jobs_completed += 1,
                Some(JobStatus::Failed) => s.jobs_failed += 1,
                Some(JobStatus::Cancelled) => s.jobs_cancelled += 1,
                Some(_) => s.jobs_live += 1,
                None => {}
            }
        }
        s
    }

    /// Compacts when the journal is large and terminal jobs dominate:
    /// collapses per-job history into `<journal>.snap` (committed by
    /// atomic rename), then resets the journal. Returns whether a
    /// compaction ran. No-op for ephemeral stores.
    pub fn maybe_compact(&mut self) -> Result<bool, StoreError> {
        if self.compact_threshold == 0 || self.journal_bytes < self.compact_threshold {
            return Ok(false);
        }
        let stats = self.stats();
        let terminal = stats.jobs_completed + stats.jobs_failed + stats.jobs_cancelled;
        if terminal <= stats.jobs_live {
            return Ok(false);
        }
        self.compact()
    }

    /// Unconditional compaction (see [`JobStore::maybe_compact`]).
    pub fn compact(&mut self) -> Result<bool, StoreError> {
        let Some(path) = self.path.clone() else {
            return Ok(false);
        };
        let snap = snap_path(&path);
        let tmp = {
            let mut os = snap.as_os_str().to_os_string();
            os.push(".tmp");
            PathBuf::from(os)
        };
        let mut bytes: Vec<u8> = Vec::new();
        for id in &self.order {
            let Some(e) = self.jobs.get(id) else { continue };
            bytes.extend_from_slice(
                &Record::Accepted {
                    job_id: id.clone(),
                    spec: e.spec.as_ref().clone(),
                }
                .frame(),
            );
            if e.attempts > 0 {
                bytes.extend_from_slice(
                    &Record::Started {
                        job_id: id.clone(),
                        attempt: e.attempts,
                    }
                    .frame(),
                );
            }
            match e.status {
                JobStatus::Completed => {
                    if let Some(report) = &e.report {
                        bytes.extend_from_slice(
                            &Record::Completed {
                                job_id: id.clone(),
                                report: report.as_ref().clone(),
                            }
                            .frame(),
                        );
                    }
                }
                JobStatus::Failed => {
                    bytes.extend_from_slice(
                        &Record::Failed {
                            job_id: id.clone(),
                            code: e.error_code.clone().unwrap_or_default(),
                            message: e.error_message.clone().unwrap_or_default(),
                        }
                        .frame(),
                    );
                }
                JobStatus::Cancelled => {
                    bytes.extend_from_slice(
                        &Record::Cancelled {
                            job_id: id.clone(),
                            reason: e.cancel_reason.clone().unwrap_or_default(),
                        }
                        .frame(),
                    );
                }
                JobStatus::Accepted | JobStatus::Started => {}
            }
        }
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &snap)?;
        // The snapshot now carries all history: reset the journal. A crash
        // between rename and truncate merely replays duplicate records,
        // which `apply` tolerates.
        let f = OpenOptions::new().write(true).open(&path)?;
        f.set_len(0)?;
        f.sync_data()?;
        self.file = Some(OpenOptions::new().append(true).open(&path)?);
        self.journal_bytes = 0;
        self.snapshot_bytes = bytes.len() as u64;
        self.compactions += 1;
        Ok(true)
    }

    /// Overrides the auto-compaction threshold (bytes; 0 disables).
    pub fn set_compact_threshold(&mut self, bytes: u64) {
        self.compact_threshold = bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!("gc-store-{}-{tag}-{n}.wal", std::process::id()))
    }

    fn cleanup(path: &Path) {
        let _ = fs::remove_file(path);
        let _ = fs::remove_file(snap_path(path));
    }

    #[test]
    fn sha256_matches_fips_vectors() {
        let hex = |d: [u8; 32]| -> String { d.iter().map(|b| format!("{b:02x}")).collect() };
        assert_eq!(
            hex(sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        // Two blocks (padding spills over).
        assert_eq!(
            hex(sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn job_ids_are_content_derived_and_stable() {
        assert_eq!(job_id(b"abc"), "ba7816bf8f01cfea414140de5dae2223");
        assert_eq!(job_id(b"abc"), job_id(b"abc"));
        assert_ne!(job_id(b"abc"), job_id(b"abd"));
        assert_eq!(job_id(b"abc").len(), 32);
    }

    #[test]
    fn crc32_matches_reference() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip_through_frames() {
        let records = vec![
            Record::Accepted {
                job_id: "a".repeat(32),
                spec: "{\"schema\": \"greencloud-spec/1\"}".to_string(),
            },
            Record::Started {
                job_id: "a".repeat(32),
                attempt: 3,
            },
            Record::Completed {
                job_id: "a".repeat(32),
                report: "{\"ok\": true}".to_string(),
            },
            Record::Failed {
                job_id: "b".repeat(32),
                code: "solve_failed".to_string(),
                message: "infeasible".to_string(),
            },
            Record::Cancelled {
                job_id: "c".repeat(32),
                reason: "client asked".to_string(),
            },
        ];
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&r.frame());
        }
        let (back, consumed, tail) = replay_frames(&bytes);
        assert_eq!(back, records);
        assert_eq!(consumed, bytes.len());
        assert!(tail.is_none());
    }

    #[test]
    fn accept_is_idempotent_and_durable() {
        let path = tmp_path("accept");
        let spec = "{\"x\": 1}";
        {
            let mut s = JobStore::open(&path).expect("open");
            let (id1, new1) = s.accept(spec).expect("accept");
            let (id2, new2) = s.accept(spec).expect("re-accept");
            assert_eq!(id1, id2);
            assert!(new1);
            assert!(!new2);
            assert_eq!(s.stats().jobs_total, 1);
        }
        let s = JobStore::open(&path).expect("reopen");
        let (id, _) = (job_id(spec.as_bytes()), ());
        let e = s.get(&id).expect("recovered");
        assert_eq!(e.status, JobStatus::Accepted);
        assert_eq!(e.spec.as_str(), spec);
        assert_eq!(s.recoverable(), vec![(id, 0)]);
        cleanup(&path);
    }

    #[test]
    fn lifecycle_and_terminal_guard() {
        let mut s = JobStore::ephemeral();
        let (id, _) = s.accept("{\"a\": 1}").expect("accept");
        assert_eq!(s.start(&id).expect("start"), Some(1));
        assert_eq!(s.start(&id).expect("start"), Some(2));
        assert!(s.cancel(&id, "nope").expect("cancel"));
        // Terminal: completion after cancellation is a no-op.
        assert!(!s.complete(&id, "{}").expect("complete"));
        assert!(!s.fail(&id, "x", "y").expect("fail"));
        assert_eq!(s.start(&id).expect("start"), None);
        let e = s.get(&id).expect("entry");
        assert_eq!(e.status, JobStatus::Cancelled);
        assert_eq!(e.attempts, 2);
        assert!(s.recoverable().is_empty());
        assert_eq!(s.stats().jobs_cancelled, 1);
    }

    #[test]
    fn torn_tail_is_truncated_to_the_valid_prefix() {
        let path = tmp_path("torn");
        {
            let mut s = JobStore::open(&path).expect("open");
            s.accept("{\"a\": 1}").expect("a");
            s.accept("{\"b\": 2}").expect("b");
        }
        let full = fs::read(&path).expect("read journal");
        // Chop the last record in half.
        let cut = full.len() - 5;
        fs::write(&path, &full[..cut]).expect("write torn");
        let s = JobStore::open(&path).expect("reopen");
        assert_eq!(s.stats().jobs_total, 1, "only the intact record survives");
        let truncated = fs::read(&path).expect("read truncated");
        assert!(truncated.len() < cut, "file truncated to the valid prefix");
        let (_, consumed, tail) = replay_frames(&truncated);
        assert_eq!(consumed, truncated.len());
        assert!(tail.is_none());
        cleanup(&path);
    }

    #[test]
    fn compaction_preserves_state_and_resets_the_journal() {
        let path = tmp_path("compact");
        let ids: Vec<String> = {
            let mut s = JobStore::open(&path).expect("open");
            let mut ids = Vec::new();
            for k in 0..6 {
                let (id, _) = s.accept(&format!("{{\"k\": {k}}}")).expect("accept");
                s.start(&id).expect("start");
                if k < 4 {
                    s.complete(&id, &format!("{{\"report\": {k}}}"))
                        .expect("done");
                } else if k == 4 {
                    s.fail(&id, "solve_failed", "infeasible").expect("fail");
                }
                ids.push(id);
            }
            assert!(s.compact().expect("compact"));
            assert_eq!(s.stats().journal_bytes, 0);
            assert_eq!(s.stats().compactions, 1);
            // Post-compaction appends still land in the journal.
            s.cancel(&ids[5], "late cancel").expect("cancel");
            assert!(s.stats().journal_bytes > 0);
            ids
        };
        let s = JobStore::open(&path).expect("reopen");
        assert_eq!(s.stats().jobs_total, 6);
        assert_eq!(s.stats().jobs_completed, 4);
        assert_eq!(s.stats().jobs_failed, 1);
        assert_eq!(s.stats().jobs_cancelled, 1);
        let first = s.get(&ids[0]).expect("first");
        assert_eq!(
            first.report.as_deref().map(String::as_str),
            Some("{\"report\": 0}")
        );
        assert_eq!(first.attempts, 1);
        cleanup(&path);
    }

    #[test]
    fn maybe_compact_waits_for_threshold_and_terminal_majority() {
        let mut s = JobStore::ephemeral();
        assert!(!s.maybe_compact().expect("ephemeral never compacts"));
        let path = tmp_path("maybe");
        let mut s = JobStore::open(&path).expect("open");
        s.set_compact_threshold(1);
        let (id, _) = s.accept("{\"live\": 1}").expect("accept");
        // One live job, no terminal: must not compact.
        assert!(!s.maybe_compact().expect("no majority"));
        s.complete(&id, "{}").expect("complete");
        assert!(s.maybe_compact().expect("compacts"));
        cleanup(&path);
    }
}
