//! The structured result of every experiment, with a stable JSON schema.
//!
//! A [`Report`] is what [`crate::Engine::run`] returns: typed
//! per-experiment results plus uniform solver rollups
//! ([`SolverRollup`], distilled from `SolveStats`/`SearchStats`/
//! `RollingStats`). [`Report::to_json_string`] serializes it under the
//! versioned [`REPORT_SCHEMA`]; the byte layout is pinned by a golden-file
//! test, so downstream consumers (dashboards, cross-PR diffing) can rely on
//! it. Wall-clock fields (`wall_ms`, `pricing_ms`, per-record timings) are
//! the only non-deterministic content; [`Report::normalized`] zeroes them
//! so two runs of the same spec compare equal.

use crate::json::Json;
use greencloud_core::anneal::SearchStats;
use greencloud_core::solution::PlacementSolution;
use greencloud_nebula::emulation::{EmulationReport, TraceRow};
use greencloud_nebula::faults::ResilienceReport;
use greencloud_nebula::scheduler::RollingStats;
use greencloud_nebula::sweep::ScenarioResult;

/// Schema identifier written to serialized reports.
pub const REPORT_SCHEMA: &str = "greencloud-report/1";

/// Schema identifier of the embedded resilience body (present on annual
/// reports whose spec injected faults).
pub const RESILIENCE_SCHEMA: &str = "greencloud-resilience/1";

/// The result of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The experiment kind tag (matches [`crate::ExperimentSpec::kind`]).
    pub experiment: String,
    /// End-to-end wall time of the run, milliseconds (non-deterministic;
    /// zeroed by [`Report::normalized`]).
    pub wall_ms: f64,
    /// The experiment-specific payload.
    pub body: ReportBody,
}

/// Experiment-specific report payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportBody {
    /// Heuristic or exact siting result.
    Siting(SitingReport),
    /// Operational emulation result.
    Annual(AnnualReport),
    /// Scenario sweep result.
    Sweep(SweepReport),
    /// Timing measurements.
    Timing(TimingReport),
}

/// Uniform LP-solver accounting: one shape regardless of whether the
/// numbers came from the siting search (`SearchStats`), the rolling
/// scheduler (`RollingStats`), or a single solve (`SolveStats`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolverRollup {
    /// LP solves performed (search evaluations / scheduler rounds).
    pub solves: usize,
    /// Simplex iterations across all solves.
    pub iterations: usize,
    /// Basis refactorizations.
    pub refactorizations: usize,
    /// FTRAN solves.
    pub ftrans: usize,
    /// BTRAN solves.
    pub btrans: usize,
    /// Warm-start success rate, in `[0, 1]`.
    pub warm_rate: f64,
    /// Wall time spent pricing, milliseconds (zeroed by
    /// [`Report::normalized`]).
    pub pricing_ms: f64,
}

impl From<&SearchStats> for SolverRollup {
    fn from(s: &SearchStats) -> Self {
        Self {
            solves: s.evaluations,
            iterations: s.simplex_iterations,
            refactorizations: s.refactorizations,
            ftrans: s.ftrans,
            btrans: s.btrans,
            warm_rate: s.warm_rate(),
            pricing_ms: s.pricing_ms(),
        }
    }
}

impl From<&RollingStats> for SolverRollup {
    fn from(s: &RollingStats) -> Self {
        Self {
            solves: s.rounds,
            iterations: s.iterations,
            refactorizations: s.refactorizations,
            ftrans: s.ftrans,
            btrans: s.btrans,
            warm_rate: s.warm_rate(),
            pricing_ms: s.pricing_ms(),
        }
    }
}

/// One sited datacenter with its itemized monthly cost.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteReport {
    /// Location name.
    pub name: String,
    /// `"small"` or `"large"`.
    pub size_class: String,
    /// IT compute capacity, MW.
    pub capacity_mw: f64,
    /// Installed solar, MW.
    pub solar_mw: f64,
    /// Installed wind, MW.
    pub wind_mw: f64,
    /// Battery bank, MWh.
    pub batt_mwh: f64,
    /// Site monthly cost, USD.
    pub monthly_cost_usd: f64,
    /// Green fraction of the site's own consumption.
    pub green_fraction: f64,
    /// Itemized monthly cost components, USD (Table I order).
    pub breakdown: BreakdownReport,
}

/// The Table I cost components of one site, USD/month.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BreakdownReport {
    /// Datacenter construction.
    pub building_dc: f64,
    /// Servers and switches.
    pub it_equipment: f64,
    /// Land financing.
    pub land: f64,
    /// Solar + wind plant construction.
    pub plants: f64,
    /// Battery banks.
    pub batteries: f64,
    /// Power/network line layout.
    pub connections: f64,
    /// External bandwidth.
    pub bandwidth: f64,
    /// Net grid energy after settlement.
    pub energy: f64,
}

/// Result of a siting experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct SitingReport {
    /// Total monthly cost, USD (the optimization objective).
    pub monthly_cost_usd: f64,
    /// Network green-energy fraction achieved.
    pub green_fraction: f64,
    /// Total provisioned compute capacity, MW.
    pub total_capacity_mw: f64,
    /// LP evaluations the search spent (0 for the exact path).
    pub evaluations: usize,
    /// The sited datacenters.
    pub sites: Vec<SiteReport>,
    /// Search solver rollup (absent for single-LP/exact solves).
    pub solver: Option<SolverRollup>,
}

impl SitingReport {
    /// Distills a [`PlacementSolution`].
    pub fn from_solution(sol: &PlacementSolution) -> Self {
        Self {
            monthly_cost_usd: sol.monthly_cost,
            green_fraction: sol.green_fraction,
            total_capacity_mw: sol.total_capacity_mw,
            evaluations: sol.evaluations,
            sites: sol
                .datacenters
                .iter()
                .map(|dc| SiteReport {
                    name: dc.name.clone(),
                    size_class: match dc.size_class {
                        greencloud_core::SizeClass::Small => "small".to_string(),
                        greencloud_core::SizeClass::Large => "large".to_string(),
                    },
                    capacity_mw: dc.capacity_mw,
                    solar_mw: dc.solar_mw,
                    wind_mw: dc.wind_mw,
                    batt_mwh: dc.batt_mwh,
                    monthly_cost_usd: dc.breakdown.total(),
                    green_fraction: dc.green_fraction,
                    breakdown: BreakdownReport {
                        building_dc: dc.breakdown.building_dc,
                        it_equipment: dc.breakdown.it_equipment,
                        land: dc.breakdown.land,
                        plants: dc.breakdown.building_solar + dc.breakdown.building_wind,
                        batteries: dc.breakdown.batteries,
                        connections: dc.breakdown.connections,
                        bandwidth: dc.breakdown.bandwidth,
                        energy: dc.breakdown.energy,
                    },
                })
                .collect(),
            solver: sol.search_stats.as_ref().map(SolverRollup::from),
        }
    }
}

/// One datacenter-hour of the optional emulation trace (mirror of
/// [`TraceRow`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRowReport {
    /// Hour since the start of the run.
    pub hour: usize,
    /// Site index.
    pub dc: usize,
    /// Green power available, MW.
    pub green_available_mw: f64,
    /// IT load hosted, MW.
    pub load_mw: f64,
    /// Cooling/power overhead, MW.
    pub pue_overhead_mw: f64,
    /// Migration energy overhead, MW.
    pub migration_mw: f64,
    /// Brown power drawn, MW.
    pub brown_mw: f64,
}

impl From<&TraceRow> for TraceRowReport {
    fn from(r: &TraceRow) -> Self {
        Self {
            hour: r.hour,
            dc: r.dc,
            green_available_mw: r.green_available_mw,
            load_mw: r.load_mw,
            pue_overhead_mw: r.pue_overhead_mw,
            migration_mw: r.migration_mw,
            brown_mw: r.brown_mw,
        }
    }
}

/// Result of an operational emulation.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnualReport {
    /// Hours emulated.
    pub hours: usize,
    /// Datacenter-hour rows produced (hours × sites).
    pub trace_rows: usize,
    /// Fraction of demand served green.
    pub green_fraction: f64,
    /// Total brown energy, MWh.
    pub brown_mwh: f64,
    /// Total demand, MWh.
    pub demand_mwh: f64,
    /// VM migrations executed.
    pub migrations: usize,
    /// Total migration payload shipped, GB.
    pub migrated_gb: f64,
    /// Mean live-migration duration, hours.
    pub mean_migration_hours: f64,
    /// Peak concurrently in-flight migrations.
    pub peak_inflight_migrations: usize,
    /// GDFS blocks re-replicated in the background.
    pub rereplicated_blocks: usize,
    /// Green energy consumed charging batteries, MWh.
    pub battery_in_mwh: f64,
    /// Battery energy delivered to loads, MWh.
    pub battery_out_mwh: f64,
    /// Green energy pushed into net-metering banks, MWh.
    pub net_pushed_mwh: f64,
    /// Banked energy drawn back, MWh.
    pub net_drawn_mwh: f64,
    /// Annual grid true-up, USD.
    pub energy_settlement_usd: f64,
    /// Persistent-model rebuilds (1 = the model lived the whole run).
    pub rebuilds: usize,
    /// Rolling-scheduler solver rollup.
    pub solver: SolverRollup,
    /// Resilience accounting under [`RESILIENCE_SCHEMA`], present iff the
    /// spec injected faults (deterministic — not zeroed by
    /// [`Report::normalized`]). Boxed: the body is large and usually
    /// absent, and it should not bloat every [`ReportBody`].
    pub resilience: Option<Box<ResilienceReport>>,
    /// The per-datacenter-hour trace, when the spec asked for it.
    pub trace: Vec<TraceRowReport>,
}

impl AnnualReport {
    /// Distills an [`EmulationReport`]; `include_trace` copies the hourly
    /// rows.
    pub fn from_emulation(hours: usize, r: &EmulationReport, include_trace: bool) -> Self {
        Self {
            hours,
            trace_rows: r.rows.len(),
            green_fraction: r.green_fraction,
            brown_mwh: r.total_brown_mwh,
            demand_mwh: r.total_demand_mwh,
            migrations: r.migrations,
            migrated_gb: r.migrated_gb,
            mean_migration_hours: r.mean_migration_hours,
            peak_inflight_migrations: r.peak_inflight_migrations,
            rereplicated_blocks: r.rereplicated_blocks,
            battery_in_mwh: r.battery_in_mwh,
            battery_out_mwh: r.battery_out_mwh,
            net_pushed_mwh: r.net_pushed_mwh,
            net_drawn_mwh: r.net_drawn_mwh,
            energy_settlement_usd: r.energy_settlement_usd,
            rebuilds: r.scheduler_stats.rebuilds,
            solver: SolverRollup::from(&r.scheduler_stats),
            resilience: r.resilience.clone().map(Box::new),
            trace: if include_trace {
                r.rows.iter().map(TraceRowReport::from).collect()
            } else {
                Vec::new()
            },
        }
    }
}

/// One scenario row of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Scenario label.
    pub name: String,
    /// Hours emulated.
    pub hours: usize,
    /// Fraction of demand served green.
    pub green_fraction: f64,
    /// Total brown energy, MWh.
    pub brown_mwh: f64,
    /// Total demand, MWh.
    pub demand_mwh: f64,
    /// VM migrations executed.
    pub migrations: usize,
    /// Battery energy delivered, MWh.
    pub battery_out_mwh: f64,
    /// Banked energy drawn back, MWh.
    pub net_drawn_mwh: f64,
    /// Rolling-scheduler warm-start rate.
    pub warm_rate: f64,
    /// Simplex iterations spent.
    pub lp_iterations: usize,
    /// Fraction of requested VM-hours served (1.0 when fault-free).
    pub slo_attainment: f64,
    /// VM-hours lost to outages (0.0 when fault-free).
    pub vm_downtime_hours: f64,
}

impl From<&ScenarioResult> for SweepRow {
    fn from(r: &ScenarioResult) -> Self {
        Self {
            name: r.name.clone(),
            hours: r.hours,
            green_fraction: r.green_fraction,
            brown_mwh: r.brown_mwh,
            demand_mwh: r.demand_mwh,
            migrations: r.migrations,
            battery_out_mwh: r.battery_out_mwh,
            net_drawn_mwh: r.net_drawn_mwh,
            warm_rate: r.warm_rate,
            lp_iterations: r.lp_iterations,
            slo_attainment: r.slo_attainment,
            vm_downtime_hours: r.vm_downtime_hours,
        }
    }
}

/// Result of a sweep experiment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepReport {
    /// One row per scenario, in spec order.
    pub rows: Vec<SweepRow>,
}

/// One named timing measurement (LP pricing suite, rolling re-solves).
#[derive(Debug, Clone, PartialEq)]
pub struct TimingRecord {
    /// Record name, e.g. `"single_site_cold/devex"`.
    pub name: String,
    /// Wall time, milliseconds (zeroed by [`Report::normalized`]).
    pub wall_ms: f64,
    /// Simplex iterations (0 when not applicable).
    pub iterations: usize,
    /// Warm-start rate (0 when not applicable).
    pub warm_rate: f64,
}

/// The warm-vs-cold hourly re-solve comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmVsCold {
    /// Rounds compared.
    pub rounds: usize,
    /// Total warm (rolling) time, milliseconds.
    pub warm_ms: f64,
    /// Total cold (rebuild) time, milliseconds.
    pub cold_ms: f64,
    /// Warm-start rate of the rolling path.
    pub warm_rate: f64,
}

/// Result of a timing experiment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimingReport {
    /// §V-C schedule computation times: `(label, ms per 48-h schedule)`.
    pub schedule_ms: Vec<(String, f64)>,
    /// LP-substrate benchmark records.
    pub records: Vec<TimingRecord>,
    /// Warm-vs-cold comparison, when requested.
    pub warm_vs_cold: Option<WarmVsCold>,
}

impl Report {
    /// A copy with every wall-clock field zeroed: two runs of the same
    /// deterministic spec produce equal normalized reports.
    pub fn normalized(&self) -> Report {
        let mut r = self.clone();
        r.wall_ms = 0.0;
        match &mut r.body {
            ReportBody::Siting(s) => {
                if let Some(solver) = &mut s.solver {
                    solver.pricing_ms = 0.0;
                }
            }
            ReportBody::Annual(a) => a.solver.pricing_ms = 0.0,
            ReportBody::Sweep(_) => {}
            ReportBody::Timing(t) => {
                for (_, ms) in &mut t.schedule_ms {
                    *ms = 0.0;
                }
                for rec in &mut t.records {
                    rec.wall_ms = 0.0;
                }
                if let Some(wc) = &mut t.warm_vs_cold {
                    wc.warm_ms = 0.0;
                    wc.cold_ms = 0.0;
                }
            }
        }
        r
    }

    /// Serializes the report under [`REPORT_SCHEMA`]. The field order and
    /// layout are stable (golden-file tested).
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    fn to_json(&self) -> Json {
        let body = match &self.body {
            ReportBody::Siting(s) => ("siting", siting_to_json(s)),
            ReportBody::Annual(a) => ("annual", annual_to_json(a)),
            ReportBody::Sweep(s) => ("sweep", sweep_to_json(s)),
            ReportBody::Timing(t) => ("timing", timing_to_json(t)),
        };
        Json::obj([
            ("schema", Json::from(REPORT_SCHEMA)),
            ("experiment", Json::from(self.experiment.as_str())),
            ("wall_ms", Json::from(self.wall_ms)),
            (body.0, body.1),
        ])
    }

    /// Renders a human-readable summary (what `repro` prints).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        match &self.body {
            ReportBody::Siting(s) => {
                let _ = writeln!(
                    out,
                    "total ${:.2}M/month, {:.1}% green, {:.1} MW provisioned, {} datacenter(s), {} LP evaluations",
                    s.monthly_cost_usd / 1e6,
                    s.green_fraction * 100.0,
                    s.total_capacity_mw,
                    s.sites.len(),
                    s.evaluations
                );
                for dc in &s.sites {
                    let _ = writeln!(
                        out,
                        "  {:<28} {:>6.1} MW IT ({}) | solar {:>7.1} MW | wind {:>7.1} MW | batt {:>7.1} MWh | ${:.2}M/mo",
                        dc.name, dc.capacity_mw, dc.size_class, dc.solar_mw, dc.wind_mw, dc.batt_mwh,
                        dc.monthly_cost_usd / 1e6
                    );
                }
                if let Some(st) = &s.solver {
                    let _ = writeln!(
                        out,
                        "solver: {} LP solves, {} simplex iterations, {} refactorizations, {} ftrans, {} btrans, warm {:.0}%, {:.0} ms pricing",
                        st.solves,
                        st.iterations,
                        st.refactorizations,
                        st.ftrans,
                        st.btrans,
                        st.warm_rate * 100.0,
                        st.pricing_ms
                    );
                }
            }
            ReportBody::Annual(a) => {
                let _ = writeln!(
                    out,
                    "{} h emulated: green fraction {:.1}%, brown {:.0} MWh of {:.0} MWh demand, \
                     {} migrations ({:.1} GB shipped, mean {:.2} h, peak {} in flight)",
                    a.hours,
                    a.green_fraction * 100.0,
                    a.brown_mwh,
                    a.demand_mwh,
                    a.migrations,
                    a.migrated_gb,
                    a.mean_migration_hours,
                    a.peak_inflight_migrations
                );
                let _ = writeln!(
                    out,
                    "storage: battery {:.0} MWh in / {:.0} MWh out, net meter {:.0} MWh pushed / {:.0} MWh drawn, grid settlement ${:.2}M",
                    a.battery_in_mwh, a.battery_out_mwh, a.net_pushed_mwh, a.net_drawn_mwh,
                    a.energy_settlement_usd / 1e6
                );
                let st = &a.solver;
                let _ = writeln!(
                    out,
                    "scheduler: {} rounds, warm rate {:.0}%, {} simplex iterations, {} rebuilds, {} refactorizations, {} ftrans, {} btrans, {:.0} ms pricing",
                    st.solves,
                    st.warm_rate * 100.0,
                    st.iterations,
                    a.rebuilds,
                    st.refactorizations,
                    st.ftrans,
                    st.btrans,
                    st.pricing_ms
                );
                if let Some(res) = &a.resilience {
                    let _ = writeln!(
                        out,
                        "resilience: SLO {:.3}%, {} fault events ({} site / {} grid / {} wan outages, {} shocks), \
                         {:.1} VM-h down, {} evacuations ({:.1} GB), mean recovery {:.2} h, \
                         incidents cost {:.1} MWh brown / ${:.0}",
                        res.slo_attainment * 100.0,
                        res.fault_events,
                        res.site_outages,
                        res.grid_outages,
                        res.wan_outages,
                        res.forecast_shocks,
                        res.vm_downtime_hours,
                        res.evacuations,
                        res.evacuated_gb,
                        res.mean_recovery_hours,
                        res.incident_brown_mwh,
                        res.incident_cost_usd
                    );
                }
            }
            ReportBody::Sweep(s) => {
                let _ = writeln!(
                    out,
                    "{:<30} {:>7} {:>10} {:>6} {:>9} {:>9} {:>6} {:>7}",
                    "scenario",
                    "green%",
                    "brown MWh",
                    "migs",
                    "batt MWh",
                    "net MWh",
                    "warm%",
                    "slo%"
                );
                for r in &s.rows {
                    let _ = writeln!(
                        out,
                        "{:<30} {:>6.1}% {:>10.1} {:>6} {:>9.1} {:>9.1} {:>5.0}% {:>6.2}%",
                        r.name,
                        r.green_fraction * 100.0,
                        r.brown_mwh,
                        r.migrations,
                        r.battery_out_mwh,
                        r.net_drawn_mwh,
                        r.warm_rate * 100.0,
                        r.slo_attainment * 100.0
                    );
                }
            }
            ReportBody::Timing(t) => {
                for (label, ms) in &t.schedule_ms {
                    let _ = writeln!(
                        out,
                        "{label:>8}: {ms:>8.1} ms per 48-h schedule (paper: 240–780 ms on 2 GHz hardware)"
                    );
                }
                for r in &t.records {
                    let _ = writeln!(
                        out,
                        "{:<34} {:>9.1} ms  {:>7} iters  warm {:>4.0}%",
                        r.name,
                        r.wall_ms,
                        r.iterations,
                        r.warm_rate * 100.0
                    );
                }
                if let Some(wc) = &t.warm_vs_cold {
                    let _ = writeln!(
                        out,
                        "hourly re-solve ({} rounds): warm {:.1} ms vs cold {:.1} ms → {:.1}x speedup ({:.0}% warm-started)",
                        wc.rounds,
                        wc.warm_ms,
                        wc.cold_ms,
                        if wc.warm_ms > 0.0 { wc.cold_ms / wc.warm_ms } else { 0.0 },
                        wc.warm_rate * 100.0
                    );
                }
            }
        }
        out
    }
}

fn rollup_to_json(s: &SolverRollup) -> Json {
    Json::obj([
        ("solves", Json::from(s.solves)),
        ("iterations", Json::from(s.iterations)),
        ("refactorizations", Json::from(s.refactorizations)),
        ("ftrans", Json::from(s.ftrans)),
        ("btrans", Json::from(s.btrans)),
        ("warm_rate", Json::from(s.warm_rate)),
        ("pricing_ms", Json::from(s.pricing_ms)),
    ])
}

fn siting_to_json(s: &SitingReport) -> Json {
    Json::obj([
        ("monthly_cost_usd", Json::from(s.monthly_cost_usd)),
        ("green_fraction", Json::from(s.green_fraction)),
        ("total_capacity_mw", Json::from(s.total_capacity_mw)),
        ("evaluations", Json::from(s.evaluations)),
        (
            "sites",
            Json::Array(
                s.sites
                    .iter()
                    .map(|dc| {
                        Json::obj([
                            ("name", Json::from(dc.name.as_str())),
                            ("size_class", Json::from(dc.size_class.as_str())),
                            ("capacity_mw", Json::from(dc.capacity_mw)),
                            ("solar_mw", Json::from(dc.solar_mw)),
                            ("wind_mw", Json::from(dc.wind_mw)),
                            ("batt_mwh", Json::from(dc.batt_mwh)),
                            ("monthly_cost_usd", Json::from(dc.monthly_cost_usd)),
                            ("green_fraction", Json::from(dc.green_fraction)),
                            (
                                "breakdown",
                                Json::obj([
                                    ("building_dc", Json::from(dc.breakdown.building_dc)),
                                    ("it_equipment", Json::from(dc.breakdown.it_equipment)),
                                    ("land", Json::from(dc.breakdown.land)),
                                    ("plants", Json::from(dc.breakdown.plants)),
                                    ("batteries", Json::from(dc.breakdown.batteries)),
                                    ("connections", Json::from(dc.breakdown.connections)),
                                    ("bandwidth", Json::from(dc.breakdown.bandwidth)),
                                    ("energy", Json::from(dc.breakdown.energy)),
                                ]),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "solver",
            match &s.solver {
                Some(st) => rollup_to_json(st),
                None => Json::Null,
            },
        ),
    ])
}

fn annual_to_json(a: &AnnualReport) -> Json {
    Json::obj([
        ("hours", Json::from(a.hours)),
        ("trace_rows", Json::from(a.trace_rows)),
        ("green_fraction", Json::from(a.green_fraction)),
        ("brown_mwh", Json::from(a.brown_mwh)),
        ("demand_mwh", Json::from(a.demand_mwh)),
        ("migrations", Json::from(a.migrations)),
        ("migrated_gb", Json::from(a.migrated_gb)),
        ("mean_migration_hours", Json::from(a.mean_migration_hours)),
        (
            "peak_inflight_migrations",
            Json::from(a.peak_inflight_migrations),
        ),
        ("rereplicated_blocks", Json::from(a.rereplicated_blocks)),
        ("battery_in_mwh", Json::from(a.battery_in_mwh)),
        ("battery_out_mwh", Json::from(a.battery_out_mwh)),
        ("net_pushed_mwh", Json::from(a.net_pushed_mwh)),
        ("net_drawn_mwh", Json::from(a.net_drawn_mwh)),
        ("energy_settlement_usd", Json::from(a.energy_settlement_usd)),
        ("rebuilds", Json::from(a.rebuilds)),
        ("solver", rollup_to_json(&a.solver)),
        (
            "resilience",
            match &a.resilience {
                Some(res) => resilience_to_json(res),
                None => Json::Null,
            },
        ),
        (
            "trace",
            Json::Array(
                a.trace
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("hour", Json::from(r.hour)),
                            ("dc", Json::from(r.dc)),
                            ("green_available_mw", Json::from(r.green_available_mw)),
                            ("load_mw", Json::from(r.load_mw)),
                            ("pue_overhead_mw", Json::from(r.pue_overhead_mw)),
                            ("migration_mw", Json::from(r.migration_mw)),
                            ("brown_mw", Json::from(r.brown_mw)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn resilience_to_json(r: &ResilienceReport) -> Json {
    Json::obj([
        ("schema", Json::from(RESILIENCE_SCHEMA)),
        ("fault_events", Json::from(r.fault_events)),
        ("site_outages", Json::from(r.site_outages)),
        ("grid_outages", Json::from(r.grid_outages)),
        ("wan_outages", Json::from(r.wan_outages)),
        ("forecast_shocks", Json::from(r.forecast_shocks)),
        ("site_down_hours", Json::from(r.site_down_hours)),
        ("vm_downtime_hours", Json::from(r.vm_downtime_hours)),
        ("shed_vm_hours", Json::from(r.shed_vm_hours)),
        ("evacuations", Json::from(r.evacuations)),
        ("evacuated_gb", Json::from(r.evacuated_gb)),
        ("recoveries", Json::from(r.recoveries)),
        ("mean_recovery_hours", Json::from(r.mean_recovery_hours)),
        ("slo_attainment", Json::from(r.slo_attainment)),
        ("unserved_mwh", Json::from(r.unserved_mwh)),
        ("incident_brown_mwh", Json::from(r.incident_brown_mwh)),
        ("incident_cost_usd", Json::from(r.incident_cost_usd)),
    ])
}

fn sweep_to_json(s: &SweepReport) -> Json {
    Json::obj([(
        "rows",
        Json::Array(
            s.rows
                .iter()
                .map(|r| {
                    Json::obj([
                        ("name", Json::from(r.name.as_str())),
                        ("hours", Json::from(r.hours)),
                        ("green_fraction", Json::from(r.green_fraction)),
                        ("brown_mwh", Json::from(r.brown_mwh)),
                        ("demand_mwh", Json::from(r.demand_mwh)),
                        ("migrations", Json::from(r.migrations)),
                        ("battery_out_mwh", Json::from(r.battery_out_mwh)),
                        ("net_drawn_mwh", Json::from(r.net_drawn_mwh)),
                        ("warm_rate", Json::from(r.warm_rate)),
                        ("lp_iterations", Json::from(r.lp_iterations)),
                        ("slo_attainment", Json::from(r.slo_attainment)),
                        ("vm_downtime_hours", Json::from(r.vm_downtime_hours)),
                    ])
                })
                .collect(),
        ),
    )])
}

fn timing_to_json(t: &TimingReport) -> Json {
    Json::obj([
        (
            "schedule_ms",
            Json::Array(
                t.schedule_ms
                    .iter()
                    .map(|(label, ms)| {
                        Json::obj([
                            ("label", Json::from(label.as_str())),
                            ("ms", Json::from(*ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "records",
            Json::Array(
                t.records
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("name", Json::from(r.name.as_str())),
                            ("wall_ms", Json::from(r.wall_ms)),
                            ("iterations", Json::from(r.iterations)),
                            ("warm_rate", Json::from(r.warm_rate)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "warm_vs_cold",
            match &t.warm_vs_cold {
                Some(wc) => Json::obj([
                    ("rounds", Json::from(wc.rounds)),
                    ("warm_ms", Json::from(wc.warm_ms)),
                    ("cold_ms", Json::from(wc.cold_ms)),
                    ("warm_rate", Json::from(wc.warm_rate)),
                ]),
                None => Json::Null,
            },
        ),
    ])
}
