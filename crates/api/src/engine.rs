//! The experiment engine: one handle that owns the world catalog and cost
//! parameters, builds candidate sites once, and runs [`ExperimentSpec`]s.
//!
//! The engine is the single front door for every caller — the `repro` CLI,
//! benches, tests, examples, and (eventually) a service layer. It caches
//! candidate sets per [`ProfileConfig`] so a batch of experiments over the
//! same world pays the TMY synthesis cost once, and [`Engine::run_all`]
//! fans independent specs out over scoped threads (the same crossbeam
//! worker-pool pattern the sweep and annealing layers use), so concurrent
//! scenario queries share one engine.

use crate::error::ApiError;
use crate::harness::{rolling_states, table3_profiles};
use crate::report::{
    AnnualReport, Report, ReportBody, SitingReport, SweepReport, SweepRow, TimingRecord,
    TimingReport, WarmVsCold,
};
use crate::spec::{
    AnnualSpec, ExactSitingSpec, ExperimentSpec, SearchSpec, SitingSpec, SweepSpec, TimingSpec,
};
use greencloud_climate::catalog::WorldCatalog;
use greencloud_climate::profiles::ProfileConfig;
use greencloud_core::candidate::CandidateSite;
use greencloud_core::filter::filter_candidates;
use greencloud_core::framework::SizeClass;
use greencloud_core::milp::{solve_exact, ExactOptions};
use greencloud_core::solution::PlacementSolution;
use greencloud_core::tool::{default_threads, PlacementTool};
use greencloud_cost::params::CostParams;
use greencloud_lp::{PricingMode, SimplexOptions};
use greencloud_nebula::emulation::{self, EmulationConfig};
use greencloud_nebula::scheduler::{RollingScheduler, Scheduler, SchedulerConfig};
use greencloud_nebula::sweep::run_sweep_observed;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::wallclock::{self, Stopwatch};

/// A progress event from a running experiment. Events carry loop counters
/// only — never solver state — so observing a run cannot perturb its
/// report. The serve layer renders these as `greencloud-progress/1`
/// frames on streamed responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// Annual emulation: `done` of `total` emulated hours.
    Hours {
        /// Hours emulated so far.
        done: usize,
        /// Hours the run will emulate in total.
        total: usize,
    },
    /// Sweep: `done` of `total` scenarios complete.
    Scenarios {
        /// Scenarios finished so far (completion order).
        done: usize,
        /// Scenarios in the sweep.
        total: usize,
    },
}

impl Progress {
    /// The counters, kind-erased: `(done, total)`.
    pub fn counts(&self) -> (usize, usize) {
        match *self {
            Progress::Hours { done, total } | Progress::Scenarios { done, total } => (done, total),
        }
    }

    /// The frame kind label used in `greencloud-progress/1` documents.
    pub fn kind(&self) -> &'static str {
        match self {
            Progress::Hours { .. } => "hours",
            Progress::Scenarios { .. } => "scenarios",
        }
    }
}

/// A shared progress sink: sweeps report from several worker threads at
/// once, so sinks must be `Sync`.
pub type ProgressSink<'a> = &'a (dyn Fn(Progress) + Sync);

/// Renders a captured panic payload for an [`ApiError::Engine`] message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Job-id-keyed cancellation tokens for experiments running under the
/// durable job API. The serve layer registers a token when a worker picks
/// a job up; `DELETE /v1/jobs/:id` fires it by id without needing a handle
/// on the worker — the same cooperative-token mechanism the deadline
/// watchdog and drain path use, addressed by job id instead of by
/// connection.
#[derive(Debug, Default)]
pub struct CancelRegistry {
    by_job: Mutex<HashMap<String, Arc<AtomicBool>>>,
}

impl CancelRegistry {
    /// Associates `token` with `job_id` for the duration of a run.
    pub fn register(&self, job_id: &str, token: Arc<AtomicBool>) {
        self.by_job.lock().insert(job_id.to_string(), token);
    }

    /// Drops the association (the run finished, however it finished).
    pub fn unregister(&self, job_id: &str) {
        self.by_job.lock().remove(job_id);
    }

    /// Fires the token registered for `job_id`, if any. Returns whether a
    /// running job was signalled.
    pub fn fire(&self, job_id: &str) -> bool {
        match self.by_job.lock().get(job_id) {
            Some(t) => {
                t.store(true, Ordering::SeqCst);
                true
            }
            None => false,
        }
    }

    /// How many jobs are currently registered (running).
    pub fn len(&self) -> usize {
        self.by_job.lock().len()
    }

    /// True when no job is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The experiment engine (see the module docs).
#[derive(Debug)]
pub struct Engine {
    catalog: WorldCatalog,
    params: CostParams,
    threads: usize,
    candidates: Mutex<HashMap<ProfileConfig, Arc<Vec<CandidateSite>>>>,
    cancels: CancelRegistry,
}

impl Engine {
    /// Creates an engine over `catalog` with default cost parameters and
    /// the machine-derived thread count.
    pub fn new(catalog: WorldCatalog) -> Self {
        Self {
            catalog,
            params: CostParams::default(),
            threads: default_threads(),
            candidates: Mutex::new(HashMap::new()),
            cancels: CancelRegistry::default(),
        }
    }

    /// Replaces the cost parameters (builder style). Clears the candidate
    /// cache conservatively — candidates themselves do not depend on cost
    /// parameters today, but a stale coupling here would be silent.
    pub fn with_params(mut self, params: CostParams) -> Self {
        self.params = params;
        self.candidates.lock().clear();
        self
    }

    /// Sets the thread knob used for candidate building, sweeps, and
    /// [`Engine::run_all`] (`0` = [`default_threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        self
    }

    /// The world catalog this engine serves.
    pub fn catalog(&self) -> &WorldCatalog {
        &self.catalog
    }

    /// The cost parameters in use.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// The engine's thread knob.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The candidate set for `profile`, built on first use and shared
    /// across experiments (and threads) thereafter.
    pub fn candidates(&self, profile: &ProfileConfig) -> Arc<Vec<CandidateSite>> {
        if let Some(c) = self.candidates.lock().get(profile) {
            return Arc::clone(c);
        }
        // Build outside the lock: candidate synthesis is the expensive
        // part, and two racing builders produce identical sets (the build
        // is deterministic), so last-write-wins is benign.
        let built = Arc::new(CandidateSite::build_all_threaded(
            &self.catalog,
            profile,
            self.threads,
        ));
        self.candidates
            .lock()
            .entry(*profile)
            .or_insert_with(|| Arc::clone(&built))
            .clone()
    }

    /// A placement tool over this engine's cached candidates — the escape
    /// hatch for callers that need per-location solves (e.g. the Fig. 6
    /// cost-CDF study) rather than a whole experiment.
    pub fn placement_tool(&self, search: &SearchSpec) -> PlacementTool {
        PlacementTool::with_candidates(
            self.params.clone(),
            self.candidates(&search.profile),
            search.tool_options(self.threads),
        )
    }

    /// Runs one experiment.
    ///
    /// # Errors
    ///
    /// Any [`ApiError`]: input validation, solver failures, or a spec the
    /// engine's catalog cannot serve.
    pub fn run(&self, spec: &ExperimentSpec) -> Result<Report, ApiError> {
        let cancel = AtomicBool::new(false);
        self.run_cancellable(spec, &cancel, None)
    }

    /// Runs one experiment with a per-spec deadline: the long-running
    /// experiment kinds (annual emulations, sweeps) are cancelled
    /// cooperatively once the deadline passes, and the result is reported
    /// as [`ApiError::Deadline`].
    pub fn run_with_deadline(
        &self,
        spec: &ExperimentSpec,
        deadline: Duration,
    ) -> Result<Report, ApiError> {
        self.run_all_with_deadline(std::slice::from_ref(spec), Some(deadline))
            .pop()
            .unwrap_or_else(|| Err(ApiError::Engine("spec did not run".into())))
    }

    /// [`Engine::run`] with a caller-owned cooperative cancellation token,
    /// panics contained at this boundary. Setting `cancel` stops the
    /// long-running experiment kinds (annual emulations, sweeps) at their
    /// next hourly poll and surfaces [`ApiError::Cancelled`]; short
    /// experiment kinds (siting, timing) run to completion regardless.
    /// This is the entry point the `serve` layer drives: its deadline
    /// watchdog, client-disconnect detection, and drain path all fire the
    /// same token.
    pub fn run_with_cancel(
        &self,
        spec: &ExperimentSpec,
        cancel: &AtomicBool,
    ) -> Result<Report, ApiError> {
        catch_unwind(AssertUnwindSafe(|| {
            self.run_cancellable(spec, cancel, None)
        }))
        .unwrap_or_else(|p| {
            Err(ApiError::Engine(format!(
                "experiment panicked: {}",
                panic_message(p.as_ref())
            )))
        })
    }

    /// [`Engine::run_with_cancel`] with a progress sink: the long-running
    /// experiment kinds (annual emulations, sweeps) report loop counters
    /// through `progress` as they advance — hourly for annual runs,
    /// per-scenario for sweeps. Short kinds complete without reporting.
    pub fn run_with_progress(
        &self,
        spec: &ExperimentSpec,
        cancel: &AtomicBool,
        progress: ProgressSink<'_>,
    ) -> Result<Report, ApiError> {
        catch_unwind(AssertUnwindSafe(|| {
            self.run_cancellable(spec, cancel, Some(progress))
        }))
        .unwrap_or_else(|p| {
            Err(ApiError::Engine(format!(
                "experiment panicked: {}",
                panic_message(p.as_ref())
            )))
        })
    }

    /// The job-id-keyed cancellation registry (see [`CancelRegistry`]).
    pub fn cancels(&self) -> &CancelRegistry {
        &self.cancels
    }

    /// [`Engine::run_with_cancel`] for a durable job: the token is
    /// registered under `job_id` in [`Engine::cancels`] for the duration
    /// of the run, so `DELETE /v1/jobs/:id` can fire it by id.
    pub fn run_job(
        &self,
        job_id: &str,
        spec: &ExperimentSpec,
        cancel: Arc<AtomicBool>,
    ) -> Result<Report, ApiError> {
        self.cancels.register(job_id, Arc::clone(&cancel));
        let out = self.run_with_cancel(spec, &cancel);
        self.cancels.unregister(job_id);
        out
    }

    /// [`Engine::run`] with a cooperative cancellation flag threaded into
    /// the experiment kinds that can run for a long time.
    fn run_cancellable(
        &self,
        spec: &ExperimentSpec,
        cancel: &AtomicBool,
        progress: Option<ProgressSink<'_>>,
    ) -> Result<Report, ApiError> {
        let t0 = Stopwatch::start();
        let body = match spec {
            ExperimentSpec::Siting(s) => self.run_siting(s)?,
            ExperimentSpec::ExactSiting(s) => self.run_exact(s)?,
            ExperimentSpec::Annual(s) => self.run_annual(s, cancel, progress)?,
            ExperimentSpec::Sweep(s) => self.run_sweep(s, cancel, progress)?,
            ExperimentSpec::Timing(s) => self.run_timing(s)?,
        };
        Ok(Report {
            experiment: spec.kind().to_string(),
            wall_ms: t0.elapsed_ms(),
            body,
        })
    }

    /// Runs many experiments concurrently (at most [`Engine::threads`] at
    /// a time) and returns results in spec order. Candidate sets are
    /// shared through the engine cache, so a batch over one world builds
    /// its candidates once.
    ///
    /// A panicking experiment is captured at this boundary and reported as
    /// [`ApiError::Engine`] for that spec alone; sibling specs still run
    /// to completion and return their own results.
    pub fn run_all(&self, specs: &[ExperimentSpec]) -> Vec<Result<Report, ApiError>> {
        self.run_all_with_deadline(specs, None)
    }

    /// [`Engine::run_all`] with an optional per-spec deadline, measured
    /// from the moment a worker picks the spec up. A watchdog fires the
    /// spec's cancellation token once the deadline passes; the emulation
    /// layers poll it hourly, and a fired token turns the outcome into
    /// [`ApiError::Deadline`] regardless of what the run returned.
    pub fn run_all_with_deadline(
        &self,
        specs: &[ExperimentSpec],
        deadline: Option<Duration>,
    ) -> Vec<Result<Report, ApiError>> {
        let limit_ms = deadline.map(|d| d.as_millis() as u64).unwrap_or(0);
        let workers = self.threads.min(specs.len().max(1));
        if workers <= 1 && deadline.is_none() {
            // Serial fast path: no watchdog needed, but panics are still
            // isolated per spec.
            let cancel = AtomicBool::new(false);
            return specs
                .iter()
                .map(|s| {
                    catch_unwind(AssertUnwindSafe(|| self.run_cancellable(s, &cancel, None)))
                        .unwrap_or_else(|p| {
                            Err(ApiError::Engine(format!(
                                "experiment panicked: {}",
                                panic_message(p.as_ref())
                            )))
                        })
                })
                .collect();
        }
        let mut slots: Vec<Option<Result<Report, ApiError>>> =
            (0..specs.len()).map(|_| None).collect();
        let tokens: Vec<AtomicBool> = specs.iter().map(|_| AtomicBool::new(false)).collect();
        let started: Vec<Mutex<Option<Instant>>> = specs.iter().map(|_| Mutex::new(None)).collect();
        let completed = AtomicUsize::new(0);
        let all_done = AtomicBool::new(false);
        {
            let next = AtomicUsize::new(0);
            let slots = Mutex::new(&mut slots);
            let scope_out = crossbeam::thread::scope(|scope| {
                if let Some(dl) = deadline {
                    // Watchdog: fires a spec's token once its deadline
                    // passes; exits when every spec has completed.
                    let tokens = &tokens;
                    let started = &started;
                    let all_done = &all_done;
                    scope.spawn(move |_| {
                        while !all_done.load(Ordering::Relaxed) {
                            for (token, t0) in tokens.iter().zip(started) {
                                if !token.load(Ordering::Relaxed)
                                    && t0.lock().is_some_and(|t| t.elapsed() >= dl)
                                {
                                    token.store(true, Ordering::Relaxed);
                                }
                            }
                            std::thread::sleep(Duration::from_millis(2));
                        }
                    });
                }
                for _ in 0..workers {
                    let next = &next;
                    let slots = &slots;
                    let tokens = &tokens;
                    let started = &started;
                    let completed = &completed;
                    let all_done = &all_done;
                    scope.spawn(move |_| loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= specs.len() {
                            break;
                        }
                        *started[k].lock() = Some(wallclock::now());
                        let out = catch_unwind(AssertUnwindSafe(|| {
                            self.run_cancellable(&specs[k], &tokens[k], None)
                        }))
                        .unwrap_or_else(|p| {
                            Err(ApiError::Engine(format!(
                                "experiment panicked: {}",
                                panic_message(p.as_ref())
                            )))
                        });
                        // A fired deadline dominates: even if the run
                        // limped to a result, the contract is Deadline.
                        let out = if tokens[k].load(Ordering::Relaxed) {
                            Err(ApiError::Deadline { limit_ms })
                        } else {
                            out
                        };
                        slots.lock()[k] = Some(out);
                        if completed.fetch_add(1, Ordering::Relaxed) + 1 == specs.len() {
                            all_done.store(true, Ordering::Relaxed);
                        }
                    });
                }
            });
            if scope_out.is_err() {
                // A worker died outside the catch_unwind window; the slots
                // it owned stay None and are reported below.
                all_done.store(true, Ordering::Relaxed);
            }
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    Err(ApiError::Engine(
                        "spec did not run: a worker thread died".into(),
                    ))
                })
            })
            .collect()
    }

    fn run_siting(&self, spec: &SitingSpec) -> Result<ReportBody, ApiError> {
        spec.input.validate()?;
        let tool = self.placement_tool(&spec.search);
        let sol = tool.solve(&spec.input)?;
        Ok(ReportBody::Siting(SitingReport::from_solution(&sol)))
    }

    fn run_exact(&self, spec: &ExactSitingSpec) -> Result<ReportBody, ApiError> {
        spec.input.validate()?;
        let candidates = self.candidates(&spec.profile);
        let kept = filter_candidates(&self.params, &spec.input, &candidates, spec.filter_keep);
        let filtered: Vec<CandidateSite> = kept.iter().map(|&i| candidates[i].clone()).collect();
        let options = ExactOptions {
            max_candidates: spec.max_candidates,
            max_sites: spec.max_sites,
        };
        let (siting, dispatch) = solve_exact(&self.params, &spec.input, &filtered, &options)?;
        // Map filtered indices back to catalog candidates for reporting.
        let siting: Vec<(usize, SizeClass)> = siting
            .iter()
            .map(|&(fi, class)| (kept[fi], class))
            .collect();
        let sol =
            PlacementSolution::from_dispatch(&self.params, &candidates, &siting, &dispatch, 0);
        Ok(ReportBody::Siting(SitingReport::from_solution(&sol)))
    }

    fn run_annual(
        &self,
        spec: &AnnualSpec,
        cancel: &AtomicBool,
        progress: Option<ProgressSink<'_>>,
    ) -> Result<ReportBody, ApiError> {
        let r = match progress {
            Some(sink) => {
                let observe = |done: usize, total: usize| sink(Progress::Hours { done, total });
                emulation::run_observed(&self.catalog, &spec.config, cancel, Some(&observe))?
            }
            None => emulation::run_with_cancel(&self.catalog, &spec.config, cancel)?,
        };
        Ok(ReportBody::Annual(AnnualReport::from_emulation(
            spec.config.hours,
            &r,
            spec.include_trace,
        )))
    }

    fn run_sweep(
        &self,
        spec: &SweepSpec,
        cancel: &AtomicBool,
        progress: Option<ProgressSink<'_>>,
    ) -> Result<ReportBody, ApiError> {
        let scenarios = spec.scenarios();
        let results = match progress {
            Some(sink) => {
                let observe = |done: usize, total: usize| sink(Progress::Scenarios { done, total });
                run_sweep_observed(
                    &self.catalog,
                    &scenarios,
                    self.threads,
                    cancel,
                    Some(&observe),
                )?
            }
            None => run_sweep_observed(&self.catalog, &scenarios, self.threads, cancel, None)?,
        };
        Ok(ReportBody::Sweep(SweepReport {
            rows: results.iter().map(SweepRow::from).collect(),
        }))
    }

    fn run_timing(&self, spec: &TimingSpec) -> Result<ReportBody, ApiError> {
        let mut report = TimingReport::default();
        if spec.schedule_timing {
            report.schedule_ms = self.schedule_timing()?;
        }
        if spec.lp_records {
            report.records = self.lp_records(spec.fast)?;
        }
        if spec.warm_cold_rounds > 0 {
            report.warm_vs_cold = Some(self.warm_vs_cold(spec.warm_cold_rounds)?);
        }
        Ok(ReportBody::Timing(report))
    }

    /// §V-C: time a 48-hour schedule computation at two load levels.
    fn schedule_timing(&self) -> Result<Vec<(String, f64)>, ApiError> {
        let cfg = EmulationConfig::default();
        let profiles = table3_profiles(&self.catalog).ok_or_else(|| {
            ApiError::Engine("catalog lacks the Table III anchor sites".to_string())
        })?;
        let mut out = Vec::new();
        for &(label, load) in &[("50 MW", 50.0), ("200 MW", 200.0)] {
            let mut loads = vec![load, 0.0, 0.0];
            loads.resize(profiles.len(), 0.0);
            // Forecast at a fixed summer hour; capacity scaled to the load
            // level as in the original §V-C experiment.
            let states: Vec<_> =
                rolling_states(&profiles, 4080, cfg.scheduler.window_hours, &loads)
                    .into_iter()
                    .map(|mut s| {
                        s.capacity_mw = load;
                        s
                    })
                    .collect();
            let sched = Scheduler::new(SchedulerConfig::default());
            sched.plan(&states)?; // warm-up
            let t0 = Stopwatch::start();
            let reps = 10;
            for _ in 0..reps {
                sched.plan(&states)?;
            }
            out.push((label.to_string(), t0.elapsed_ms() / reps as f64));
        }
        Ok(out)
    }

    /// The LP-substrate benchmark records: the single-site siting LP cold
    /// under each pricing mode, plus rolling hourly re-solves warm vs cold.
    fn lp_records(&self, fast: bool) -> Result<Vec<TimingRecord>, ApiError> {
        use greencloud_core::formulation::build_network_lp;
        use greencloud_core::framework::{PlacementInput, StorageMode, TechMix};

        let mut records = Vec::new();
        let cands = self.candidates(&ProfileConfig::coarse());
        if cands.is_empty() {
            return Err(ApiError::Engine("catalog has no candidates".to_string()));
        }
        let single = PlacementInput {
            total_capacity_mw: 25.0,
            min_green_fraction: 0.5,
            min_availability: 0.0,
            tech: TechMix::WindOnly,
            storage: StorageMode::NetMetering,
            ..PlacementInput::default()
        };
        let site = &cands[3.min(cands.len() - 1)];
        let lp = build_network_lp(&self.params, &single, &[(site, SizeClass::Large)]);
        for (label, pricing) in [
            ("single_site_cold/devex", PricingMode::Devex),
            ("single_site_cold/dantzig", PricingMode::Dantzig),
            ("single_site_cold/partial", PricingMode::Partial),
        ] {
            let reps = if fast { 1 } else { 3 };
            let mut best_ms = f64::INFINITY;
            let mut iterations = 0;
            for _ in 0..reps {
                let t0 = Stopwatch::start();
                let (d, _) = lp.solve_warm(
                    SimplexOptions {
                        pricing,
                        ..SimplexOptions::default()
                    },
                    None,
                )?;
                best_ms = best_ms.min(t0.elapsed_ms());
                iterations = d.iterations;
            }
            records.push(TimingRecord {
                name: label.to_string(),
                wall_ms: best_ms,
                iterations,
                warm_rate: 0.0,
            });
        }

        // Rolling hourly re-solves, warm vs cold, on the Table III network
        // (skipped when the catalog lacks the anchors).
        if let Some(profiles) = table3_profiles(&self.catalog) {
            let cfg = EmulationConfig::default();
            let window = cfg.scheduler.window_hours;
            let rounds = if fast { 12 } else { 96 };
            let start = 4080;

            let mut rolling = RollingScheduler::new(cfg.scheduler.clone());
            let mut loads = vec![cfg.total_load_mw, 0.0, 0.0];
            let t0 = Stopwatch::start();
            for t in start..start + rounds {
                let states = rolling_states(&profiles, t, window, &loads);
                loads = rolling.plan(&states)?.target_mw;
            }
            let warm_ms = t0.elapsed_ms();
            let stats = rolling.stats();
            records.push(TimingRecord {
                name: format!("hourly_resolve_{rounds}rounds/warm"),
                wall_ms: warm_ms,
                iterations: stats.iterations,
                warm_rate: stats.warm_rate(),
            });

            let cold = Scheduler::new(cfg.scheduler.clone());
            let mut loads = vec![cfg.total_load_mw, 0.0, 0.0];
            let t0 = Stopwatch::start();
            for t in start..start + rounds {
                let states = rolling_states(&profiles, t, window, &loads);
                loads = cold.plan(&states)?.target_mw;
            }
            // The one-shot scheduler exposes no iteration totals; the
            // record contract keeps the field 0 when not applicable.
            records.push(TimingRecord {
                name: format!("hourly_resolve_{rounds}rounds/cold"),
                wall_ms: t0.elapsed_ms(),
                iterations: 0,
                warm_rate: 0.0,
            });
        }
        Ok(records)
    }

    /// Times `rounds` consecutive hourly re-solves of the Table III
    /// network, warm (persistent rolling model) vs cold (rebuild +
    /// two-phase solve).
    fn warm_vs_cold(&self, rounds: usize) -> Result<WarmVsCold, ApiError> {
        let cfg = EmulationConfig::default();
        let profiles = table3_profiles(&self.catalog).ok_or_else(|| {
            ApiError::Engine("catalog lacks the Table III anchor sites".to_string())
        })?;
        let window = cfg.scheduler.window_hours;
        let start = 4080;

        let mut rolling = RollingScheduler::new(cfg.scheduler.clone());
        let mut loads = vec![cfg.total_load_mw, 0.0, 0.0];
        let t0 = Stopwatch::start();
        for t in start..start + rounds {
            let states = rolling_states(&profiles, t, window, &loads);
            loads = rolling.plan(&states)?.target_mw;
        }
        let warm_ms = t0.elapsed_ms();

        let cold = Scheduler::new(cfg.scheduler.clone());
        let mut loads = vec![cfg.total_load_mw, 0.0, 0.0];
        let t0 = Stopwatch::start();
        for t in start..start + rounds {
            let states = rolling_states(&profiles, t, window, &loads);
            loads = cold.plan(&states)?.target_mw;
        }
        Ok(WarmVsCold {
            rounds,
            warm_ms,
            cold_ms: t0.elapsed_ms(),
            warm_rate: rolling.stats().warm_rate(),
        })
    }
}
