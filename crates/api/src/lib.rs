//! The unified experiment API for the `greencloud` workspace: one typed,
//! serializable front door for siting, operation, and sweeps.
//!
//! Every stage of the paper's pipeline used to have its own ad-hoc entry
//! point (`PlacementTool`, `anneal`, `milp::solve_exact`, `emulation::run`,
//! `run_sweep`, a string-dispatching `repro` binary). This crate redesigns
//! the public surface around three concepts:
//!
//! * [`ExperimentSpec`] — a serde-shaped, JSON-round-trippable description
//!   of one experiment (`Siting`, `ExactSiting`, `Annual`, `Sweep`,
//!   `Timing`), versioned under [`spec::SPEC_SCHEMA`].
//! * [`Engine`] — a handle owning the `WorldCatalog` and `CostParams` that
//!   builds candidate sites once, caches them per profile clock, and runs
//!   specs (concurrently via [`Engine::run_all`]).
//! * [`Report`] — the structured result with uniform solver rollups and a
//!   stable JSON serialization, versioned under [`report::REPORT_SCHEMA`].
//!
//! ```no_run
//! use greencloud_api::{Engine, ExperimentSpec, SitingSpec, SearchSpec};
//! use greencloud_climate::catalog::WorldCatalog;
//! use greencloud_core::framework::PlacementInput;
//!
//! # fn main() -> Result<(), greencloud_api::ApiError> {
//! let engine = Engine::new(WorldCatalog::synthetic(120, 42));
//! let spec = ExperimentSpec::Siting(SitingSpec {
//!     input: PlacementInput::default(),
//!     search: SearchSpec::default(),
//! });
//! let report = engine.run(&spec)?;
//! println!("{}", report.render_text());
//! # Ok(())
//! # }
//! ```
//!
//! Specs and reports round-trip through [`json`], a dependency-free JSON
//! document model (the vendored crate set has no `serde_json`), so a spec
//! saved with [`ExperimentSpec::to_json_string`] and replayed via
//! `repro run spec.json` reproduces the equivalent programmatic run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod harness;
pub mod json;
pub mod report;
pub mod router;
pub mod serve;
pub mod spec;
pub mod store;
pub mod wallclock;

pub use engine::{CancelRegistry, Engine, Progress};
pub use error::{ApiError, SpecError, ERROR_SCHEMA};
pub use report::{
    AnnualReport, Report, ReportBody, SitingReport, SolverRollup, SweepReport, SweepRow,
    TimingRecord, TimingReport, WarmVsCold, REPORT_SCHEMA, RESILIENCE_SCHEMA,
};
pub use router::{Router, RouterConfig, RouterHandle, RouterSummary, ROUTER_STATS_SCHEMA};
pub use serve::{ServeConfig, ServeHandle, ServeSummary, Server, PROGRESS_SCHEMA};
pub use spec::{
    AnnualSpec, ExactSitingSpec, ExperimentSpec, SearchSpec, SitingSpec, SweepAxes, SweepMode,
    SweepSpec, TimingSpec, SPEC_SCHEMA,
};
pub use store::{
    job_id, ring_key, ring_key_of_job_id, JobStatus, JobStore, StoreError, StoreStats, JOB_SCHEMA,
};
