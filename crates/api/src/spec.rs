//! The declarative experiment specification: one typed, serializable value
//! per runnable experiment.
//!
//! An [`ExperimentSpec`] captures everything an [`crate::Engine`] needs to
//! reproduce a run except the world catalog and cost parameters (which the
//! engine owns): the placement input, search tuning, emulation config,
//! sweep axes, and seeds. Specs round-trip through a versioned JSON schema
//! ([`SPEC_SCHEMA`]) so experiments can be stored in files, shipped over a
//! wire, and replayed byte-identically — `repro run spec.json` is exactly
//! `Engine::run(ExperimentSpec::from_json_str(...))`.
//!
//! Seeds are carried as JSON numbers and therefore limited to 2^53; every
//! seed in the workspace is far below that.

use crate::error::SpecError;
use crate::json::Json;
use greencloud_climate::profiles::ProfileConfig;
use greencloud_core::anneal::AnnealOptions;
use greencloud_core::framework::{PlacementInput, StorageMode, TechMix};
use greencloud_core::tool::ToolOptions;
use greencloud_nebula::emulation::{EmulationConfig, EmulationSite};
use greencloud_nebula::faults::{FaultKind, FaultSpec, ScheduledFault};
use greencloud_nebula::predictor::PredictionMode;
use greencloud_nebula::scheduler::SchedulerConfig;
use greencloud_nebula::wan::WanModel;

/// Schema identifier written to (and required from) serialized specs.
pub const SPEC_SCHEMA: &str = "greencloud-spec/1";

/// One runnable experiment, fully described.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentSpec {
    /// Heuristic siting: filter → simulated annealing → per-siting LP.
    Siting(SitingSpec),
    /// Exact siting by subset enumeration (small candidate sets only).
    ExactSiting(ExactSitingSpec),
    /// Operational emulation: follow-the-renewables over N hours.
    Annual(AnnualSpec),
    /// A grid (or one-at-a-time) sweep of operational scenarios.
    Sweep(SweepSpec),
    /// LP-substrate and scheduler timing measurements.
    Timing(TimingSpec),
}

impl ExperimentSpec {
    /// The experiment kind tag used in JSON and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            ExperimentSpec::Siting(_) => "siting",
            ExperimentSpec::ExactSiting(_) => "exact_siting",
            ExperimentSpec::Annual(_) => "annual",
            ExperimentSpec::Sweep(_) => "sweep",
            ExperimentSpec::Timing(_) => "timing",
        }
    }

    /// Serializes the spec as a versioned JSON document.
    pub fn to_json_string(&self) -> String {
        let body = match self {
            ExperimentSpec::Siting(s) => s.to_json(),
            ExperimentSpec::ExactSiting(s) => s.to_json(),
            ExperimentSpec::Annual(s) => s.to_json(),
            ExperimentSpec::Sweep(s) => s.to_json(),
            ExperimentSpec::Timing(s) => s.to_json(),
        };
        let mut fields = vec![("kind".to_string(), Json::from(self.kind()))];
        if let Json::Object(body_fields) = body {
            fields.extend(body_fields);
        }
        Json::obj([
            ("schema", Json::from(SPEC_SCHEMA)),
            ("experiment", Json::Object(fields)),
        ])
        .render()
    }

    /// Parses a versioned JSON spec document.
    ///
    /// # Errors
    ///
    /// [`SpecError`] naming the offending field path for malformed JSON,
    /// wrong schema versions, unknown kinds, or missing/mistyped fields.
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        let doc = Json::parse(text).map_err(|e| SpecError::new("$", e))?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| SpecError::new("schema", "missing string field"))?;
        if schema != SPEC_SCHEMA {
            return Err(SpecError::new(
                "schema",
                format!("expected {SPEC_SCHEMA:?}, got {schema:?}"),
            ));
        }
        let exp = doc
            .get("experiment")
            .ok_or_else(|| SpecError::new("experiment", "missing object field"))?;
        let kind = exp
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| SpecError::new("experiment.kind", "missing string field"))?;
        let p = "experiment";
        match kind {
            "siting" => Ok(ExperimentSpec::Siting(SitingSpec::from_json(exp, p)?)),
            "exact_siting" => Ok(ExperimentSpec::ExactSiting(ExactSitingSpec::from_json(
                exp, p,
            )?)),
            "annual" => Ok(ExperimentSpec::Annual(AnnualSpec::from_json(exp, p)?)),
            "sweep" => Ok(ExperimentSpec::Sweep(SweepSpec::from_json(exp, p)?)),
            "timing" => Ok(ExperimentSpec::Timing(TimingSpec::from_json(exp, p)?)),
            other => Err(SpecError::new(
                "experiment.kind",
                format!("unknown experiment kind {other:?}"),
            )),
        }
    }
}

/// Tuning of the heuristic siting search (the serializable subset of
/// [`AnnealOptions`] plus the pre-filter and profile clock).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpec {
    /// Representative-day profile shared by all candidates.
    pub profile: ProfileConfig,
    /// How many locations survive the pre-filter.
    pub filter_keep: usize,
    /// Annealing iterations per chain.
    pub iterations: usize,
    /// Parallel annealing chains.
    pub chains: usize,
    /// Iterations without improvement before a chain stops.
    pub patience: usize,
    /// Largest number of datacenters to consider.
    pub max_sites: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SearchSpec {
    fn default() -> Self {
        let a = AnnealOptions::default();
        Self {
            profile: ProfileConfig::default(),
            filter_keep: 20,
            iterations: a.iterations,
            chains: a.chains,
            patience: a.patience,
            max_sites: a.max_sites,
            seed: a.seed,
        }
    }
}

impl SearchSpec {
    /// The equivalent [`AnnealOptions`] (LP options stay at their
    /// defaults).
    pub fn anneal_options(&self) -> AnnealOptions {
        AnnealOptions {
            iterations: self.iterations,
            chains: self.chains,
            patience: self.patience,
            max_sites: self.max_sites,
            seed: self.seed,
            ..AnnealOptions::default()
        }
    }

    /// The equivalent [`ToolOptions`] with the engine's thread knob.
    pub fn tool_options(&self, build_threads: usize) -> ToolOptions {
        ToolOptions {
            profile: self.profile,
            filter_keep: self.filter_keep,
            anneal: self.anneal_options(),
            build_threads,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("profile", profile_to_json(&self.profile)),
            ("filter_keep", Json::from(self.filter_keep)),
            ("iterations", Json::from(self.iterations)),
            ("chains", Json::from(self.chains)),
            ("patience", Json::from(self.patience)),
            ("max_sites", Json::from(self.max_sites)),
            ("seed", Json::from(self.seed)),
        ])
    }

    fn from_json(j: &Json, path: &str) -> Result<Self, SpecError> {
        Ok(Self {
            profile: profile_from_json(need(j, "profile", path)?, &sub(path, "profile"))?,
            filter_keep: int(j, "filter_keep", path)?,
            iterations: int(j, "iterations", path)?,
            chains: int(j, "chains", path)?,
            patience: int(j, "patience", path)?,
            max_sites: int(j, "max_sites", path)?,
            seed: seed(j, "seed", path)?,
        })
    }
}

/// Heuristic siting of a datacenter network.
#[derive(Debug, Clone, PartialEq)]
pub struct SitingSpec {
    /// The provider's placement problem.
    pub input: PlacementInput,
    /// Search tuning.
    pub search: SearchSpec,
}

impl SitingSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("input", input_to_json(&self.input)),
            ("search", self.search.to_json()),
        ])
    }

    fn from_json(j: &Json, path: &str) -> Result<Self, SpecError> {
        Ok(Self {
            input: input_from_json(need(j, "input", path)?, &sub(path, "input"))?,
            search: SearchSpec::from_json(need(j, "search", path)?, &sub(path, "search"))?,
        })
    }
}

/// Exact (enumerated) siting over a small filtered candidate set.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSitingSpec {
    /// The provider's placement problem.
    pub input: PlacementInput,
    /// Representative-day profile shared by all candidates.
    pub profile: ProfileConfig,
    /// Pre-filter keep count (the enumeration is exponential in this).
    pub filter_keep: usize,
    /// Hard cap on candidate-set size.
    pub max_candidates: usize,
    /// Largest siting cardinality to consider.
    pub max_sites: usize,
}

impl ExactSitingSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("input", input_to_json(&self.input)),
            ("profile", profile_to_json(&self.profile)),
            ("filter_keep", Json::from(self.filter_keep)),
            ("max_candidates", Json::from(self.max_candidates)),
            ("max_sites", Json::from(self.max_sites)),
        ])
    }

    fn from_json(j: &Json, path: &str) -> Result<Self, SpecError> {
        Ok(Self {
            input: input_from_json(need(j, "input", path)?, &sub(path, "input"))?,
            profile: profile_from_json(need(j, "profile", path)?, &sub(path, "profile"))?,
            filter_keep: int(j, "filter_keep", path)?,
            max_candidates: int(j, "max_candidates", path)?,
            max_sites: int(j, "max_sites", path)?,
        })
    }
}

/// One operational emulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnualSpec {
    /// The full emulation configuration.
    pub config: EmulationConfig,
    /// Include the per-datacenter-hour trace in the report (Fig. 15 needs
    /// it; year-scale runs usually should not pay for 26k rows).
    pub include_trace: bool,
}

impl AnnualSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("config", emulation_to_json(&self.config)),
            ("include_trace", Json::from(self.include_trace)),
        ])
    }

    fn from_json(j: &Json, path: &str) -> Result<Self, SpecError> {
        Ok(Self {
            config: emulation_from_json(need(j, "config", path)?, &sub(path, "config"))?,
            include_trace: boolean(j, "include_trace", path)?,
        })
    }
}

/// How sweep axes combine into scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Full cross product of every non-empty axis.
    Grid,
    /// The base config first, then one scenario per single axis value
    /// (sensitivity-study style).
    OneAtATime,
}

/// The scenario axes of a sweep. Empty axes keep the base value.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepAxes {
    /// First TMY hour of the run (season selection).
    pub start_hour: Vec<usize>,
    /// Per-site battery bank sizes, kWh.
    pub battery_kwh: Vec<f64>,
    /// Net-metering credit fractions; `None` disables net metering.
    pub net_meter_credit: Vec<Option<f64>>,
    /// Forecast noise σ (`0.0` = perfect prediction).
    pub forecast_sigma: Vec<f64>,
    /// WAN bandwidth, Mbit/s.
    pub wan_mbps: Vec<f64>,
}

/// A sweep of operational scenarios built from a base config and axes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// The base emulation configuration every scenario starts from.
    pub base: EmulationConfig,
    /// The scenario axes.
    pub axes: SweepAxes,
    /// Axis combination mode.
    pub mode: SweepMode,
    /// Seed for noisy-forecast scenarios.
    pub seed: u64,
}

impl SweepSpec {
    fn to_json(&self) -> Json {
        let opt = |v: &Option<f64>| match v {
            Some(x) => Json::from(*x),
            None => Json::Null,
        };
        Json::obj([
            ("base", emulation_to_json(&self.base)),
            (
                "axes",
                Json::obj([
                    (
                        "start_hour",
                        Json::Array(
                            self.axes
                                .start_hour
                                .iter()
                                .map(|&x| Json::from(x))
                                .collect(),
                        ),
                    ),
                    (
                        "battery_kwh",
                        Json::Array(
                            self.axes
                                .battery_kwh
                                .iter()
                                .map(|&x| Json::from(x))
                                .collect(),
                        ),
                    ),
                    (
                        "net_meter_credit",
                        Json::Array(self.axes.net_meter_credit.iter().map(opt).collect()),
                    ),
                    (
                        "forecast_sigma",
                        Json::Array(
                            self.axes
                                .forecast_sigma
                                .iter()
                                .map(|&x| Json::from(x))
                                .collect(),
                        ),
                    ),
                    (
                        "wan_mbps",
                        Json::Array(self.axes.wan_mbps.iter().map(|&x| Json::from(x)).collect()),
                    ),
                ]),
            ),
            (
                "mode",
                Json::from(match self.mode {
                    SweepMode::Grid => "grid",
                    SweepMode::OneAtATime => "one_at_a_time",
                }),
            ),
            ("seed", Json::from(self.seed)),
        ])
    }

    fn from_json(j: &Json, path: &str) -> Result<Self, SpecError> {
        let axes_j = need(j, "axes", path)?;
        let ap = sub(path, "axes");
        let nums = |key: &str| -> Result<Vec<f64>, SpecError> {
            array(axes_j, key, &ap)?
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    v.as_f64().ok_or_else(|| {
                        SpecError::new(format!("{ap}.{key}[{i}]"), "expected number")
                    })
                })
                .collect()
        };
        let axes = SweepAxes {
            start_hour: array(axes_j, "start_hour", &ap)?
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    v.as_usize().ok_or_else(|| {
                        SpecError::new(format!("{ap}.start_hour[{i}]"), "expected integer")
                    })
                })
                .collect::<Result<_, _>>()?,
            battery_kwh: nums("battery_kwh")?,
            net_meter_credit: array(axes_j, "net_meter_credit", &ap)?
                .iter()
                .enumerate()
                .map(|(i, v)| match v {
                    Json::Null => Ok(None),
                    other => other.as_f64().map(Some).ok_or_else(|| {
                        SpecError::new(
                            format!("{ap}.net_meter_credit[{i}]"),
                            "expected number or null",
                        )
                    }),
                })
                .collect::<Result<_, _>>()?,
            forecast_sigma: nums("forecast_sigma")?,
            wan_mbps: nums("wan_mbps")?,
        };
        let mode = match string(j, "mode", path)?.as_str() {
            "grid" => SweepMode::Grid,
            "one_at_a_time" => SweepMode::OneAtATime,
            other => {
                return Err(SpecError::new(
                    sub(path, "mode"),
                    format!("unknown sweep mode {other:?}"),
                ))
            }
        };
        Ok(Self {
            base: emulation_from_json(need(j, "base", path)?, &sub(path, "base"))?,
            axes,
            mode,
            seed: seed(j, "seed", path)?,
        })
    }

    /// Expands the axes into named scenarios per [`SweepMode`].
    pub fn scenarios(&self) -> Vec<greencloud_nebula::sweep::Scenario> {
        use greencloud_nebula::sweep::Scenario;
        let apply = |cfg: &EmulationConfig, tweak: &AxisValue| -> EmulationConfig {
            let mut c = cfg.clone();
            match *tweak {
                AxisValue::StartHour(h) => c.start_hour = h,
                AxisValue::BatteryKwh(kwh) => {
                    for s in &mut c.sites {
                        s.battery_kwh = kwh;
                    }
                }
                AxisValue::NetMeterCredit(credit) => c.net_meter_credit = credit,
                AxisValue::ForecastSigma(sigma) => {
                    c.prediction = if sigma == 0.0 {
                        PredictionMode::Perfect
                    } else {
                        PredictionMode::Noisy {
                            sigma,
                            seed: self.seed,
                        }
                    }
                }
                AxisValue::WanMbps(mbps) => c.wan = WanModel::leased(mbps),
            }
            c
        };
        let axes: Vec<Vec<AxisValue>> = [
            self.axes
                .start_hour
                .iter()
                .map(|&h| AxisValue::StartHour(h))
                .collect::<Vec<_>>(),
            self.axes
                .battery_kwh
                .iter()
                .map(|&k| AxisValue::BatteryKwh(k))
                .collect(),
            self.axes
                .net_meter_credit
                .iter()
                .map(|&c| AxisValue::NetMeterCredit(c))
                .collect(),
            self.axes
                .forecast_sigma
                .iter()
                .map(|&s| AxisValue::ForecastSigma(s))
                .collect(),
            self.axes
                .wan_mbps
                .iter()
                .map(|&m| AxisValue::WanMbps(m))
                .collect(),
        ]
        .into_iter()
        .filter(|axis| !axis.is_empty())
        .collect();

        match self.mode {
            SweepMode::OneAtATime => {
                let mut out = vec![Scenario::new("base", self.base.clone())];
                for axis in &axes {
                    for v in axis {
                        out.push(Scenario::new(v.label(), apply(&self.base, v)));
                    }
                }
                out
            }
            SweepMode::Grid => {
                let mut combos: Vec<(String, EmulationConfig)> =
                    vec![(String::new(), self.base.clone())];
                for axis in &axes {
                    combos = combos
                        .iter()
                        .flat_map(|(name, cfg)| {
                            axis.iter().map(move |v| {
                                let label = if name.is_empty() {
                                    v.label()
                                } else {
                                    format!("{name} {}", v.label())
                                };
                                (label, apply(cfg, v))
                            })
                        })
                        .collect();
                }
                combos
                    .into_iter()
                    .map(|(name, cfg)| {
                        Scenario::new(if name.is_empty() { "base".into() } else { name }, cfg)
                    })
                    .collect()
            }
        }
    }
}

/// One value on one sweep axis.
enum AxisValue {
    StartHour(usize),
    BatteryKwh(f64),
    NetMeterCredit(Option<f64>),
    ForecastSigma(f64),
    WanMbps(f64),
}

impl AxisValue {
    fn label(&self) -> String {
        match self {
            AxisValue::StartHour(h) => format!("start={h}h"),
            AxisValue::BatteryKwh(k) => format!("batt={k}kWh"),
            AxisValue::NetMeterCredit(Some(c)) => format!("netmeter={c}"),
            AxisValue::NetMeterCredit(None) => "netmeter=off".into(),
            AxisValue::ForecastSigma(s) => format!("sigma={s}"),
            AxisValue::WanMbps(m) => format!("wan={m}Mbps"),
        }
    }
}

/// LP-substrate and scheduler timing measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingSpec {
    /// Reduced workloads (CI smoke).
    pub fast: bool,
    /// Measure the paper's §V-C 48-hour schedule computation time.
    pub schedule_timing: bool,
    /// Run the single-site LP pricing suite and rolling-resolve records.
    pub lp_records: bool,
    /// Rounds for the warm-vs-cold hourly re-solve comparison (`0` skips
    /// it).
    pub warm_cold_rounds: usize,
}

impl TimingSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("fast", Json::from(self.fast)),
            ("schedule_timing", Json::from(self.schedule_timing)),
            ("lp_records", Json::from(self.lp_records)),
            ("warm_cold_rounds", Json::from(self.warm_cold_rounds)),
        ])
    }

    fn from_json(j: &Json, path: &str) -> Result<Self, SpecError> {
        Ok(Self {
            fast: boolean(j, "fast", path)?,
            schedule_timing: boolean(j, "schedule_timing", path)?,
            lp_records: boolean(j, "lp_records", path)?,
            warm_cold_rounds: int(j, "warm_cold_rounds", path)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Field-level codecs for the embedded config types.

fn sub(path: &str, key: &str) -> String {
    format!("{path}.{key}")
}

fn need<'a>(j: &'a Json, key: &str, path: &str) -> Result<&'a Json, SpecError> {
    j.get(key)
        .ok_or_else(|| SpecError::new(sub(path, key), "missing field"))
}

fn num(j: &Json, key: &str, path: &str) -> Result<f64, SpecError> {
    need(j, key, path)?
        .as_f64()
        .ok_or_else(|| SpecError::new(sub(path, key), "expected number"))
}

fn int(j: &Json, key: &str, path: &str) -> Result<usize, SpecError> {
    need(j, key, path)?
        .as_usize()
        .ok_or_else(|| SpecError::new(sub(path, key), "expected non-negative integer"))
}

fn int_u32(j: &Json, key: &str, path: &str) -> Result<u32, SpecError> {
    let v = int(j, key, path)?;
    u32::try_from(v).map_err(|_| SpecError::new(sub(path, key), "exceeds u32"))
}

fn seed(j: &Json, key: &str, path: &str) -> Result<u64, SpecError> {
    need(j, key, path)?
        .as_u64()
        .ok_or_else(|| SpecError::new(sub(path, key), "expected integer seed below 2^53"))
}

fn string(j: &Json, key: &str, path: &str) -> Result<String, SpecError> {
    Ok(need(j, key, path)?
        .as_str()
        .ok_or_else(|| SpecError::new(sub(path, key), "expected string"))?
        .to_string())
}

fn boolean(j: &Json, key: &str, path: &str) -> Result<bool, SpecError> {
    need(j, key, path)?
        .as_bool()
        .ok_or_else(|| SpecError::new(sub(path, key), "expected boolean"))
}

fn array<'a>(j: &'a Json, key: &str, path: &str) -> Result<&'a [Json], SpecError> {
    need(j, key, path)?
        .as_array()
        .ok_or_else(|| SpecError::new(sub(path, key), "expected array"))
}

fn tech_to_str(t: TechMix) -> &'static str {
    match t {
        TechMix::BrownOnly => "brown_only",
        TechMix::WindOnly => "wind_only",
        TechMix::SolarOnly => "solar_only",
        TechMix::Both => "both",
    }
}

fn tech_from_str(s: &str, path: &str) -> Result<TechMix, SpecError> {
    match s {
        "brown_only" => Ok(TechMix::BrownOnly),
        "wind_only" => Ok(TechMix::WindOnly),
        "solar_only" => Ok(TechMix::SolarOnly),
        "both" => Ok(TechMix::Both),
        other => Err(SpecError::new(path, format!("unknown tech mix {other:?}"))),
    }
}

fn storage_to_str(s: StorageMode) -> &'static str {
    match s {
        StorageMode::NetMetering => "net_metering",
        StorageMode::Batteries => "batteries",
        StorageMode::None => "none",
    }
}

fn storage_from_str(s: &str, path: &str) -> Result<StorageMode, SpecError> {
    match s {
        "net_metering" => Ok(StorageMode::NetMetering),
        "batteries" => Ok(StorageMode::Batteries),
        "none" => Ok(StorageMode::None),
        other => Err(SpecError::new(
            path,
            format!("unknown storage mode {other:?}"),
        )),
    }
}

/// Serializes a [`PlacementInput`].
pub fn input_to_json(input: &PlacementInput) -> Json {
    Json::obj([
        ("total_capacity_mw", Json::from(input.total_capacity_mw)),
        ("min_green_fraction", Json::from(input.min_green_fraction)),
        ("min_availability", Json::from(input.min_availability)),
        ("dc_availability", Json::from(input.dc_availability)),
        ("tech", Json::from(tech_to_str(input.tech))),
        ("storage", Json::from(storage_to_str(input.storage))),
        ("migration_fraction", Json::from(input.migration_fraction)),
        ("credit_net_meter", Json::from(input.credit_net_meter)),
    ])
}

/// Deserializes a [`PlacementInput`] (field errors name `path`).
pub fn input_from_json(j: &Json, path: &str) -> Result<PlacementInput, SpecError> {
    Ok(PlacementInput {
        total_capacity_mw: num(j, "total_capacity_mw", path)?,
        min_green_fraction: num(j, "min_green_fraction", path)?,
        min_availability: num(j, "min_availability", path)?,
        dc_availability: num(j, "dc_availability", path)?,
        tech: tech_from_str(&string(j, "tech", path)?, &sub(path, "tech"))?,
        storage: storage_from_str(&string(j, "storage", path)?, &sub(path, "storage"))?,
        migration_fraction: num(j, "migration_fraction", path)?,
        credit_net_meter: num(j, "credit_net_meter", path)?,
    })
}

fn profile_to_json(p: &ProfileConfig) -> Json {
    Json::obj([
        ("days_per_season", Json::from(p.days_per_season)),
        ("seed", Json::from(p.seed)),
    ])
}

fn profile_from_json(j: &Json, path: &str) -> Result<ProfileConfig, SpecError> {
    Ok(ProfileConfig {
        days_per_season: int(j, "days_per_season", path)?,
        seed: seed(j, "seed", path)?,
    })
}

fn emulation_to_json(c: &EmulationConfig) -> Json {
    let opt = |v: Option<f64>| match v {
        Some(x) => Json::from(x),
        None => Json::Null,
    };
    Json::obj([
        ("total_load_mw", Json::from(c.total_load_mw)),
        ("vm_count", Json::from(c.vm_count)),
        ("hours", Json::from(c.hours)),
        ("start_hour", Json::from(c.start_hour)),
        (
            "sites",
            Json::Array(
                c.sites
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("location_name", Json::from(s.location_name.as_str())),
                            ("solar_mw", Json::from(s.solar_mw)),
                            ("wind_mw", Json::from(s.wind_mw)),
                            ("capacity_mw", Json::from(s.capacity_mw)),
                            ("battery_kwh", Json::from(s.battery_kwh)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "scheduler",
            Json::obj([
                ("window_hours", Json::from(c.scheduler.window_hours)),
                (
                    "migration_fraction",
                    Json::from(c.scheduler.migration_fraction),
                ),
                (
                    "migration_penalty",
                    Json::from(c.scheduler.migration_penalty),
                ),
                (
                    "integral_vm_power_mw",
                    opt(c.scheduler.integral_vm_power_mw),
                ),
            ]),
        ),
        (
            "wan",
            Json::obj([
                ("bandwidth_mbps", Json::from(c.wan.bandwidth_mbps)),
                ("max_precopy_rounds", Json::from(c.wan.max_precopy_rounds)),
            ]),
        ),
        ("battery_efficiency", Json::from(c.battery_efficiency)),
        ("net_meter_credit", opt(c.net_meter_credit)),
        (
            "faults",
            match &c.faults {
                Some(f) => faults_to_json(f),
                None => Json::Null,
            },
        ),
        (
            "prediction",
            match c.prediction {
                PredictionMode::Perfect => Json::from("perfect"),
                PredictionMode::Noisy { sigma, seed } => {
                    Json::obj([("sigma", Json::from(sigma)), ("seed", Json::from(seed))])
                }
            },
        ),
    ])
}

fn opt_num(j: &Json, key: &str, path: &str) -> Result<Option<f64>, SpecError> {
    match need(j, key, path)? {
        Json::Null => Ok(None),
        other => other
            .as_f64()
            .map(Some)
            .ok_or_else(|| SpecError::new(sub(path, key), "expected number or null")),
    }
}

fn emulation_from_json(j: &Json, path: &str) -> Result<EmulationConfig, SpecError> {
    let sites_j = array(j, "sites", path)?;
    let mut sites = Vec::with_capacity(sites_j.len());
    for (i, s) in sites_j.iter().enumerate() {
        let sp = format!("{path}.sites[{i}]");
        sites.push(EmulationSite {
            location_name: string(s, "location_name", &sp)?,
            solar_mw: num(s, "solar_mw", &sp)?,
            wind_mw: num(s, "wind_mw", &sp)?,
            capacity_mw: num(s, "capacity_mw", &sp)?,
            battery_kwh: num(s, "battery_kwh", &sp)?,
        });
    }
    let sched_j = need(j, "scheduler", path)?;
    let sched_p = sub(path, "scheduler");
    let scheduler = SchedulerConfig {
        window_hours: int(sched_j, "window_hours", &sched_p)?,
        migration_fraction: num(sched_j, "migration_fraction", &sched_p)?,
        migration_penalty: num(sched_j, "migration_penalty", &sched_p)?,
        integral_vm_power_mw: opt_num(sched_j, "integral_vm_power_mw", &sched_p)?,
    };
    let wan_j = need(j, "wan", path)?;
    let wan_p = sub(path, "wan");
    let wan = WanModel {
        bandwidth_mbps: num(wan_j, "bandwidth_mbps", &wan_p)?,
        max_precopy_rounds: int_u32(wan_j, "max_precopy_rounds", &wan_p)?,
    };
    let prediction = match need(j, "prediction", path)? {
        Json::Str(s) if s == "perfect" => PredictionMode::Perfect,
        obj @ Json::Object(_) => {
            let pp = sub(path, "prediction");
            PredictionMode::Noisy {
                sigma: num(obj, "sigma", &pp)?,
                seed: seed(obj, "seed", &pp)?,
            }
        }
        _ => {
            return Err(SpecError::new(
                sub(path, "prediction"),
                "expected \"perfect\" or {sigma, seed}",
            ))
        }
    };
    Ok(EmulationConfig {
        total_load_mw: num(j, "total_load_mw", path)?,
        vm_count: int_u32(j, "vm_count", path)?,
        hours: int(j, "hours", path)?,
        start_hour: int(j, "start_hour", path)?,
        sites,
        scheduler,
        wan,
        battery_efficiency: num(j, "battery_efficiency", path)?,
        net_meter_credit: opt_num(j, "net_meter_credit", path)?,
        faults: match j.get("faults") {
            // Absent or null both mean "no fault injection": specs written
            // before greencloud-spec/1 grew this field keep parsing.
            None | Some(Json::Null) => None,
            Some(f) => Some(faults_from_json(f, &sub(path, "faults"))?),
        },
        prediction,
    })
}

fn faults_to_json(f: &FaultSpec) -> Json {
    Json::obj([
        ("seed", Json::from(f.seed)),
        (
            "site_availability",
            match f.site_availability {
                Some(a) => Json::from(a),
                None => Json::Null,
            },
        ),
        ("site_mttr_hours", Json::from(f.site_mttr_hours)),
        (
            "grid_outage_rate_per_khour",
            Json::from(f.grid_outage_rate_per_khour),
        ),
        ("grid_mttr_hours", Json::from(f.grid_mttr_hours)),
        ("grid_residual_factor", Json::from(f.grid_residual_factor)),
        (
            "wan_outage_rate_per_khour",
            Json::from(f.wan_outage_rate_per_khour),
        ),
        ("wan_mttr_hours", Json::from(f.wan_mttr_hours)),
        ("wan_residual_factor", Json::from(f.wan_residual_factor)),
        ("shock_rate_per_khour", Json::from(f.shock_rate_per_khour)),
        ("shock_mttr_hours", Json::from(f.shock_mttr_hours)),
        ("shock_green_factor", Json::from(f.shock_green_factor)),
        (
            "battery_fade_per_khour",
            Json::from(f.battery_fade_per_khour),
        ),
        (
            "scheduled",
            Json::Array(
                f.scheduled
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("kind", Json::from(s.kind.as_str())),
                            (
                                "site",
                                match s.site {
                                    Some(i) => Json::from(i),
                                    None => Json::Null,
                                },
                            ),
                            ("start_hour", Json::from(s.start_hour)),
                            ("duration_hours", Json::from(s.duration_hours)),
                            ("magnitude", Json::from(s.magnitude)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn faults_from_json(j: &Json, path: &str) -> Result<FaultSpec, SpecError> {
    let scheduled_j = array(j, "scheduled", path)?;
    let mut scheduled = Vec::with_capacity(scheduled_j.len());
    for (i, s) in scheduled_j.iter().enumerate() {
        let sp = format!("{path}.scheduled[{i}]");
        let kind_s = string(s, "kind", &sp)?;
        let kind = FaultKind::parse(&kind_s).ok_or_else(|| {
            SpecError::new(sub(&sp, "kind"), format!("unknown fault kind {kind_s:?}"))
        })?;
        let site =
            match need(s, "site", &sp)? {
                Json::Null => None,
                other => Some(other.as_usize().ok_or_else(|| {
                    SpecError::new(sub(&sp, "site"), "expected site index or null")
                })?),
            };
        scheduled.push(ScheduledFault {
            kind,
            site,
            start_hour: int(s, "start_hour", &sp)?,
            duration_hours: int(s, "duration_hours", &sp)?,
            magnitude: num(s, "magnitude", &sp)?,
        });
    }
    Ok(FaultSpec {
        seed: seed(j, "seed", path)?,
        site_availability: opt_num(j, "site_availability", path)?,
        site_mttr_hours: num(j, "site_mttr_hours", path)?,
        grid_outage_rate_per_khour: num(j, "grid_outage_rate_per_khour", path)?,
        grid_mttr_hours: num(j, "grid_mttr_hours", path)?,
        grid_residual_factor: num(j, "grid_residual_factor", path)?,
        wan_outage_rate_per_khour: num(j, "wan_outage_rate_per_khour", path)?,
        wan_mttr_hours: num(j, "wan_mttr_hours", path)?,
        wan_residual_factor: num(j, "wan_residual_factor", path)?,
        shock_rate_per_khour: num(j, "shock_rate_per_khour", path)?,
        shock_mttr_hours: num(j, "shock_mttr_hours", path)?,
        shock_green_factor: num(j, "shock_green_factor", path)?,
        battery_fade_per_khour: num(j, "battery_fade_per_khour", path)?,
        scheduled,
    })
}
