//! The crate's one sanctioned wall-clock access point (gclint's
//! `wall-clock` rule forbids `Instant::now` outside `wallclock.rs` files).
//!
//! Everything measured here flows only into `wall_ms`-style fields that
//! [`crate::Report::normalized`] zeroes before comparison, or into the
//! deadline watchdog — never into solver decisions or golden-pinned
//! report content.

use std::time::Instant;

/// Reads the monotonic clock; the watchdog stores these to age specs.
pub fn now() -> Instant {
    Instant::now()
}

/// A started timer for millisecond wall-time measurements.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Reads the monotonic clock and starts timing.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Fractional milliseconds since [`Stopwatch::start`].
    pub fn elapsed_ms(&self) -> f64 {
        self.0.elapsed().as_secs_f64() * 1e3
    }
}
