//! The unified error hierarchy of the experiment API.
//!
//! Collapses the per-crate error zoo — [`ValidationError`] from the
//! placement framework, [`SolveError`] from the LP substrate (into which
//! [`FactorizeError`] already folds at the `greencloud-lp` boundary), JSON
//! spec problems, and I/O — into one [`ApiError`] that every `Engine` entry
//! point returns. `From` conversions at each crate boundary keep `?`
//! working throughout.

use crate::json::Json;
use greencloud_core::framework::ValidationError;
use greencloud_lp::{FactorizeError, SolveError};
use greencloud_nebula::NebulaError;
use std::fmt;

/// Schema identifier of the machine-readable error body every failing
/// API surface emits (`repro run --json`, the `serve` HTTP endpoints).
pub const ERROR_SCHEMA: &str = "greencloud-error/1";

/// A problem with a serialized [`crate::spec::ExperimentSpec`] document.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// Dotted path of the offending field (`"experiment.input.tech"`), or
    /// `"$"` for document-level problems.
    pub path: String,
    /// What went wrong.
    pub message: String,
}

impl SpecError {
    /// Creates a spec error at `path`.
    pub fn new(path: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec error at {}: {}", self.path, self.message)
    }
}

impl std::error::Error for SpecError {}

/// Any failure of the experiment API.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiError {
    /// The experiment's [`greencloud_core::PlacementInput`] is out of range.
    Validation(ValidationError),
    /// The optimization itself failed (infeasible, unbounded, numerical).
    Solve(SolveError),
    /// A serialized spec could not be parsed or violates the schema.
    Spec(SpecError),
    /// The spec is well-formed but cannot run on this engine (e.g. it names
    /// a site the engine's catalog does not contain), or the experiment
    /// panicked and the panic was captured at the fan-out boundary.
    Engine(String),
    /// The experiment exceeded its per-spec deadline and was cancelled
    /// cooperatively.
    Deadline {
        /// The configured limit, milliseconds.
        limit_ms: u64,
    },
    /// The experiment was cancelled before completion for a reason other
    /// than a deadline (client disconnect, server drain, caller token).
    Cancelled(String),
    /// Reading or writing a spec/report file failed.
    Io(String),
    /// The durable job store failed: the write-ahead journal could not be
    /// opened, appended, or compacted (see [`crate::store`]).
    Store(String),
}

impl ApiError {
    /// The stable machine-readable code of this error, written into every
    /// [`ERROR_SCHEMA`] body. The match is exhaustive on purpose: adding a
    /// variant without a code is a compile error, not a silently generic
    /// HTTP 500.
    pub fn code(&self) -> &'static str {
        match self {
            ApiError::Validation(_) => "input_invalid",
            ApiError::Solve(_) => "solve_failed",
            ApiError::Spec(_) => "spec_invalid",
            ApiError::Engine(_) => "engine_error",
            ApiError::Deadline { .. } => "deadline_exceeded",
            ApiError::Cancelled(_) => "cancelled",
            ApiError::Io(_) => "io_error",
            ApiError::Store(_) => "store_error",
        }
    }

    /// The HTTP status the `serve` layer maps this error to. Client-caused
    /// problems are 4xx (bad spec, out-of-range input, an infeasible model
    /// the server solved correctly), server faults are 5xx, deadlines are
    /// 408, and a client-side cancellation is the nginx-style 499 (never
    /// actually written to a socket — the client is gone).
    pub fn http_status(&self) -> u16 {
        match self {
            ApiError::Validation(_) => 400,
            ApiError::Spec(_) => 400,
            ApiError::Solve(_) => 422,
            ApiError::Deadline { .. } => 408,
            ApiError::Cancelled(_) => 499,
            ApiError::Engine(_) => 500,
            ApiError::Io(_) => 500,
            ApiError::Store(_) => 500,
        }
    }

    /// The [`ERROR_SCHEMA`] JSON body for this error: `schema`, `code`,
    /// `message`, plus variant-specific detail fields (`path` for spec
    /// errors, `limit_ms` for deadlines).
    pub fn to_error_json(&self) -> String {
        let mut fields = vec![
            ("schema".to_string(), Json::from(ERROR_SCHEMA)),
            ("code".to_string(), Json::from(self.code())),
            ("message".to_string(), Json::from(self.to_string())),
        ];
        match self {
            ApiError::Spec(e) => {
                fields.push(("path".to_string(), Json::from(e.path.as_str())));
            }
            ApiError::Deadline { limit_ms } => {
                fields.push(("limit_ms".to_string(), Json::from(*limit_ms)));
            }
            ApiError::Validation(_)
            | ApiError::Solve(_)
            | ApiError::Engine(_)
            | ApiError::Cancelled(_)
            | ApiError::Io(_)
            | ApiError::Store(_) => {}
        }
        Json::Object(fields).render()
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::Validation(e) => write!(f, "invalid input: {e}"),
            ApiError::Solve(e) => write!(f, "solve failed: {e}"),
            ApiError::Spec(e) => write!(f, "{e}"),
            ApiError::Engine(msg) => write!(f, "engine error: {msg}"),
            ApiError::Deadline { limit_ms } => {
                write!(f, "deadline exceeded after {limit_ms} ms")
            }
            ApiError::Cancelled(reason) => write!(f, "cancelled: {reason}"),
            ApiError::Io(msg) => write!(f, "io error: {msg}"),
            ApiError::Store(msg) => write!(f, "job store error: {msg}"),
        }
    }
}

impl std::error::Error for ApiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApiError::Validation(e) => Some(e),
            ApiError::Solve(e) => Some(e),
            ApiError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidationError> for ApiError {
    fn from(e: ValidationError) -> Self {
        ApiError::Validation(e)
    }
}

impl From<SolveError> for ApiError {
    fn from(e: SolveError) -> Self {
        ApiError::Solve(e)
    }
}

impl From<FactorizeError> for ApiError {
    fn from(e: FactorizeError) -> Self {
        ApiError::Solve(e.into())
    }
}

impl From<SpecError> for ApiError {
    fn from(e: SpecError) -> Self {
        ApiError::Spec(e)
    }
}

impl From<NebulaError> for ApiError {
    fn from(e: NebulaError) -> Self {
        match e {
            // Solver failures keep their typed identity; the rest carry
            // the nebula error's rendered message.
            NebulaError::Solve(s) => ApiError::Solve(s),
            NebulaError::Cancelled => {
                ApiError::Cancelled("emulation cancelled before completion".into())
            }
            other => ApiError::Engine(other.to_string()),
        }
    }
}

impl From<std::io::Error> for ApiError {
    fn from(e: std::io::Error) -> Self {
        ApiError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_reach_api_error() {
        let v: ApiError = ValidationError::GreenFractionOutOfRange(1.5).into();
        assert!(matches!(v, ApiError::Validation(_)));
        assert!(v.to_string().contains("green fraction"));

        let s: ApiError = SolveError::Infeasible.into();
        assert_eq!(s, ApiError::Solve(SolveError::Infeasible));

        let f: ApiError = FactorizeError::NotSquare { rows: 2, cols: 3 }.into();
        assert!(matches!(f, ApiError::Solve(SolveError::Numerical(_))));

        let io: ApiError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(io, ApiError::Io(_)));

        let sp: ApiError = SpecError::new("experiment.kind", "unknown kind").into();
        assert!(sp.to_string().contains("experiment.kind"));

        let n: ApiError = NebulaError::UnknownSite("Atlantis".into()).into();
        assert_eq!(n, ApiError::Engine("unknown site Atlantis".into()));
        let ns: ApiError = NebulaError::Solve(SolveError::Infeasible).into();
        assert_eq!(ns, ApiError::Solve(SolveError::Infeasible));
        let nc: ApiError = NebulaError::Cancelled.into();
        assert!(matches!(nc, ApiError::Cancelled(_)));
    }

    #[test]
    fn deadline_display_names_the_limit() {
        let d = ApiError::Deadline { limit_ms: 250 };
        assert_eq!(d.to_string(), "deadline exceeded after 250 ms");
    }

    /// Every variant's code and status, pinned: these strings are the wire
    /// contract of `greencloud-error/1` consumers.
    #[test]
    fn codes_and_statuses_are_stable() {
        let cases: Vec<(ApiError, &str, u16)> = vec![
            (
                ApiError::Validation(ValidationError::GreenFractionOutOfRange(2.0)),
                "input_invalid",
                400,
            ),
            (ApiError::Solve(SolveError::Infeasible), "solve_failed", 422),
            (
                ApiError::Spec(SpecError::new("$", "nope")),
                "spec_invalid",
                400,
            ),
            (ApiError::Engine("boom".into()), "engine_error", 500),
            (ApiError::Deadline { limit_ms: 7 }, "deadline_exceeded", 408),
            (ApiError::Cancelled("drain".into()), "cancelled", 499),
            (ApiError::Io("disk".into()), "io_error", 500),
            (ApiError::Store("journal".into()), "store_error", 500),
        ];
        for (e, code, status) in cases {
            assert_eq!(e.code(), code, "{e:?}");
            assert_eq!(e.http_status(), status, "{e:?}");
        }
    }

    #[test]
    fn error_json_body_carries_schema_code_and_detail() {
        let body = ApiError::Deadline { limit_ms: 250 }.to_error_json();
        let doc = Json::parse(&body).expect("parses");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(ERROR_SCHEMA));
        assert_eq!(
            doc.get("code").and_then(Json::as_str),
            Some("deadline_exceeded")
        );
        assert_eq!(doc.get("limit_ms").and_then(Json::as_u64), Some(250));

        let body = ApiError::Spec(SpecError::new("experiment.kind", "unknown")).to_error_json();
        let doc = Json::parse(&body).expect("parses");
        assert_eq!(doc.get("code").and_then(Json::as_str), Some("spec_invalid"));
        assert_eq!(
            doc.get("path").and_then(Json::as_str),
            Some("experiment.kind")
        );
    }
}
