//! The unified error hierarchy of the experiment API.
//!
//! Collapses the per-crate error zoo — [`ValidationError`] from the
//! placement framework, [`SolveError`] from the LP substrate (into which
//! [`FactorizeError`] already folds at the `greencloud-lp` boundary), JSON
//! spec problems, and I/O — into one [`ApiError`] that every `Engine` entry
//! point returns. `From` conversions at each crate boundary keep `?`
//! working throughout.

use greencloud_core::framework::ValidationError;
use greencloud_lp::{FactorizeError, SolveError};
use greencloud_nebula::NebulaError;
use std::fmt;

/// A problem with a serialized [`crate::spec::ExperimentSpec`] document.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// Dotted path of the offending field (`"experiment.input.tech"`), or
    /// `"$"` for document-level problems.
    pub path: String,
    /// What went wrong.
    pub message: String,
}

impl SpecError {
    /// Creates a spec error at `path`.
    pub fn new(path: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec error at {}: {}", self.path, self.message)
    }
}

impl std::error::Error for SpecError {}

/// Any failure of the experiment API.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiError {
    /// The experiment's [`greencloud_core::PlacementInput`] is out of range.
    Validation(ValidationError),
    /// The optimization itself failed (infeasible, unbounded, numerical).
    Solve(SolveError),
    /// A serialized spec could not be parsed or violates the schema.
    Spec(SpecError),
    /// The spec is well-formed but cannot run on this engine (e.g. it names
    /// a site the engine's catalog does not contain), or the experiment
    /// panicked and the panic was captured at the fan-out boundary.
    Engine(String),
    /// The experiment exceeded its per-spec deadline and was cancelled
    /// cooperatively.
    Deadline {
        /// The configured limit, milliseconds.
        limit_ms: u64,
    },
    /// Reading or writing a spec/report file failed.
    Io(String),
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::Validation(e) => write!(f, "invalid input: {e}"),
            ApiError::Solve(e) => write!(f, "solve failed: {e}"),
            ApiError::Spec(e) => write!(f, "{e}"),
            ApiError::Engine(msg) => write!(f, "engine error: {msg}"),
            ApiError::Deadline { limit_ms } => {
                write!(f, "deadline exceeded after {limit_ms} ms")
            }
            ApiError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for ApiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApiError::Validation(e) => Some(e),
            ApiError::Solve(e) => Some(e),
            ApiError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidationError> for ApiError {
    fn from(e: ValidationError) -> Self {
        ApiError::Validation(e)
    }
}

impl From<SolveError> for ApiError {
    fn from(e: SolveError) -> Self {
        ApiError::Solve(e)
    }
}

impl From<FactorizeError> for ApiError {
    fn from(e: FactorizeError) -> Self {
        ApiError::Solve(e.into())
    }
}

impl From<SpecError> for ApiError {
    fn from(e: SpecError) -> Self {
        ApiError::Spec(e)
    }
}

impl From<NebulaError> for ApiError {
    fn from(e: NebulaError) -> Self {
        match e {
            // Solver failures keep their typed identity; the rest carry
            // the nebula error's rendered message.
            NebulaError::Solve(s) => ApiError::Solve(s),
            NebulaError::Cancelled => {
                ApiError::Engine("emulation cancelled before completion".into())
            }
            other => ApiError::Engine(other.to_string()),
        }
    }
}

impl From<std::io::Error> for ApiError {
    fn from(e: std::io::Error) -> Self {
        ApiError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_reach_api_error() {
        let v: ApiError = ValidationError::GreenFractionOutOfRange(1.5).into();
        assert!(matches!(v, ApiError::Validation(_)));
        assert!(v.to_string().contains("green fraction"));

        let s: ApiError = SolveError::Infeasible.into();
        assert_eq!(s, ApiError::Solve(SolveError::Infeasible));

        let f: ApiError = FactorizeError::NotSquare { rows: 2, cols: 3 }.into();
        assert!(matches!(f, ApiError::Solve(SolveError::Numerical(_))));

        let io: ApiError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(io, ApiError::Io(_)));

        let sp: ApiError = SpecError::new("experiment.kind", "unknown kind").into();
        assert!(sp.to_string().contains("experiment.kind"));

        let n: ApiError = NebulaError::UnknownSite("Atlantis".into()).into();
        assert_eq!(n, ApiError::Engine("unknown site Atlantis".into()));
        let ns: ApiError = NebulaError::Solve(SolveError::Infeasible).into();
        assert_eq!(ns, ApiError::Solve(SolveError::Infeasible));
        let nc: ApiError = NebulaError::Cancelled.into();
        assert!(matches!(nc, ApiError::Engine(_)));
    }

    #[test]
    fn deadline_display_names_the_limit() {
        let d = ApiError::Deadline { limit_ms: 250 };
        assert_eq!(d.to_string(), "deadline exceeded after 250 ms");
    }
}
