//! Shared fixtures for reproduction runs, benches, and the timing
//! experiment (moved here from `greencloud-bench` so the engine and the
//! harness agree on seeds and worlds).

use crate::spec::SearchSpec;
use greencloud_climate::catalog::WorldCatalog;
use greencloud_climate::profiles::ProfileConfig;
use greencloud_core::candidate::CandidateSite;

/// The workspace-wide deterministic seed for reproduction runs.
pub const REPRO_SEED: u64 = 20140701;

/// Builds the standard reproduction world.
pub fn world(locations: usize) -> WorldCatalog {
    WorldCatalog::synthetic(locations.max(8), REPRO_SEED)
}

/// Standard search tuning for reproduction runs (coarse but
/// deterministic); `fast` shrinks the search for smoke tests.
pub fn repro_search(fast: bool) -> SearchSpec {
    SearchSpec {
        profile: if fast {
            ProfileConfig::coarse()
        } else {
            ProfileConfig::default()
        },
        filter_keep: if fast { 7 } else { 14 },
        iterations: if fast { 18 } else { 60 },
        chains: if fast { 2 } else { 4 },
        patience: if fast { 14 } else { 45 },
        seed: REPRO_SEED,
        ..SearchSpec::default()
    }
}

/// Builds the candidates of the anchors-only world on the coarse clock
/// (used by benches).
pub fn anchor_candidates() -> Vec<CandidateSite> {
    let w = WorldCatalog::anchors_only(REPRO_SEED);
    CandidateSite::build_all(&w, &ProfileConfig::coarse())
}

/// One Table III site's hourly energy profile plus its plant/IT sizes:
/// `(profile, solar_mw, wind_mw, capacity_mw)`.
pub type SiteProfile = (greencloud_energy::profile::EnergyProfile, f64, f64, f64);

/// Hourly energy profiles of the Table III network in `catalog`, for the
/// rolling-scheduler benches and the timing experiment's warm-vs-cold
/// comparison. `None` when the catalog lacks one of the anchor sites.
pub fn table3_profiles(catalog: &WorldCatalog) -> Option<Vec<SiteProfile>> {
    let cfg = greencloud_nebula::emulation::EmulationConfig::default();
    cfg.sites
        .iter()
        .map(|site| {
            let loc = catalog.find(&site.location_name)?;
            let tmy = catalog.tmy(loc.id);
            let p = greencloud_energy::profile::EnergyProfile::from_tmy_hourly(
                &tmy,
                &Default::default(),
                &Default::default(),
                &greencloud_energy::pue::PueModel::new(),
            );
            Some((p, site.solar_mw, site.wind_mw, site.capacity_mw))
        })
        .collect()
}

/// The scheduler inputs for one rolling round: a `window`-hour forecast
/// slice starting at absolute hour `t`, with the given current loads.
pub fn rolling_states(
    profiles: &[SiteProfile],
    t: usize,
    window: usize,
    loads: &[f64],
) -> Vec<greencloud_nebula::scheduler::SiteState> {
    profiles
        .iter()
        .enumerate()
        .map(
            |(i, (p, solar, wind, capacity))| greencloud_nebula::scheduler::SiteState {
                green_forecast_mw: (0..window)
                    .map(|k| {
                        let idx = (t + k) % p.len();
                        p.alpha[idx] * solar + p.beta[idx] * wind
                    })
                    .collect(),
                pue_forecast: (0..window).map(|k| p.pue[(t + k) % p.len()]).collect(),
                current_load_mw: loads[i],
                capacity_mw: *capacity,
            },
        )
        .collect()
}
