//! `repro router` — a sharding, streaming front-end over N `repro serve`
//! backends.
//!
//! A hand-rolled HTTP/1.1 reverse proxy in the workspace's no-deps style
//! (cf. [`crate::serve`]): `std::net`, a thread per client connection, and
//! zero buffering of response bodies. One `repro serve` process already
//! degrades instead of dying; the router scales that envelope past one
//! process:
//!
//! * **Consistent-hash sharding.** Requests are placed on a ring of
//!   virtual nodes keyed by [`crate::store::ring_key`] — the first 64 bits
//!   of the SHA-256 over *normalized* spec bytes, exactly the prefix of
//!   the content-derived job ids from [`crate::store::job_id`]. Identical
//!   specs (however formatted) land on the same backend, so its report
//!   LRU stays hot, and `GET /v1/jobs/:id` recovers the same ring point
//!   from the id's hex prefix without reparsing anything. Adding a
//!   backend moves only ~1/N of the key space (see the ring tests).
//! * **Health and failover.** A prober hits every backend's `/v1/readyz`
//!   on an interval; relay failures mark a backend down passively. A
//!   request whose backend refuses connections or answers 5xx fails over
//!   to the next distinct ring node — safe because job submission is
//!   idempotent (content-derived ids) and experiment POSTs are pure
//!   computations. `429`/`Retry-After` pass through untouched: shedding
//!   is the *backend's* verdict and retrying elsewhere would defeat
//!   admission control. Only when every backend has failed does the
//!   router answer `503` itself.
//! * **Streaming relay.** Chunked responses (the `X-Progress: stream`
//!   progress frames of [`crate::serve`]) are relayed chunk by chunk as
//!   they arrive, flushed after every chunk, with the framing parsed only
//!   far enough to know where the response ends — the router never holds
//!   a full body in memory.
//! * **Fleet stats and drain.** `GET /v1/stats` fans out to every backend
//!   and returns a `greencloud-router-stats/1` document with per-backend
//!   snapshots plus a summed fleet view. SIGTERM (via
//!   [`RouterHandle::trigger_shutdown`]) stops the acceptor, lets
//!   in-flight relays flush within `drain_ms`, and [`Router::join`]
//!   returns the run's counters for a clean exit 0.

use crate::error::ApiError;
use crate::json::Json;
use crate::serve::{
    error_body, find_head_end, header, lock_ok, read_request, status_reason, write_response,
    HttpLimits, ReadOut, Request, MAX_HEAD_BYTES,
};
use crate::spec::ExperimentSpec;
use crate::store;
use crate::wallclock::Stopwatch;

use std::io::{self, Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Schema identifier of the `GET /v1/stats` aggregation document.
pub const ROUTER_STATS_SCHEMA: &str = "greencloud-router-stats/1";

/// Tuning knobs for [`Router::bind`]. `Default` fronts an empty backend
/// list (rejected by `bind`) — callers always set `backends`.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address, e.g. `127.0.0.1:7410` (`:0` picks a free port).
    pub addr: String,
    /// Backend `host:port` addresses of the `repro serve` fleet.
    pub backends: Vec<String>,
    /// Virtual nodes per backend on the hash ring. More nodes smooth the
    /// key distribution at the cost of a longer sorted-point array.
    pub virtual_nodes: usize,
    /// How often the health prober hits each backend's `/v1/readyz`.
    pub probe_interval_ms: u64,
    /// Budget for establishing one backend TCP connection.
    pub connect_timeout_ms: u64,
    /// Budget for reading a client request head or body (slow-loris
    /// guard, mirrors [`crate::serve::ServeConfig::read_timeout_ms`]).
    pub read_timeout_ms: u64,
    /// Budget for one backend read while relaying. Covers a full
    /// non-streamed solve, so it must exceed the fleet's deadline cap.
    pub relay_timeout_ms: u64,
    /// Socket write timeout toward clients and backends.
    pub write_timeout_ms: u64,
    /// Largest accepted client request body (413 beyond).
    pub max_body_bytes: usize,
    /// Simultaneous client connections; beyond this, refused with 503.
    pub max_connections: usize,
    /// How long [`Router::join`] lets in-flight relays flush.
    pub drain_ms: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:7410".to_string(),
            backends: Vec::new(),
            virtual_nodes: 64,
            probe_interval_ms: 500,
            connect_timeout_ms: 1_000,
            read_timeout_ms: 5_000,
            relay_timeout_ms: 150_000,
            write_timeout_ms: 5_000,
            max_body_bytes: 1024 * 1024,
            max_connections: 256,
            drain_ms: 10_000,
        }
    }
}

/// The consistent-hash ring: virtual-node points sorted by hash. A key
/// routes to the first point at or clockwise-after it; failover walks on
/// to the next *distinct* backend.
struct Ring {
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// `virtual_nodes` points per backend, hashed from `"{addr}#{v}"`
    /// with the same SHA-256 prefix the job ids use — deterministic
    /// across processes, so every router instance agrees on placement.
    fn build(backends: &[String], virtual_nodes: usize) -> Ring {
        let vnodes = virtual_nodes.max(1);
        let mut points = Vec::with_capacity(backends.len() * vnodes);
        for (i, name) in backends.iter().enumerate() {
            for v in 0..vnodes {
                points.push((store::ring_key(format!("{name}#{v}").as_bytes()), i));
            }
        }
        points.sort_unstable();
        Ring { points }
    }

    /// Every backend index in clockwise preference order for `key`: the
    /// owner first, then each failover target as the walk meets it.
    fn order(&self, key: u64, n_backends: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(n_backends);
        if self.points.is_empty() {
            return out;
        }
        let mut seen = vec![false; n_backends];
        let start = self.points.partition_point(|&(h, _)| h < key);
        for k in 0..self.points.len() {
            let at = (start + k) % self.points.len();
            let Some(&(_, b)) = self.points.get(at) else {
                break;
            };
            if let Some(flag) = seen.get_mut(b) {
                if !*flag {
                    *flag = true;
                    out.push(b);
                }
            }
            if out.len() == n_backends {
                break;
            }
        }
        out
    }
}

/// One backend of the fleet: its address, health bit, a pool of idle
/// keep-alive connections, and a relay counter.
struct Backend {
    addr: String,
    /// Set by the prober and by relay successes; cleared by probe or
    /// relay failures. A down backend is deprioritized, not excluded —
    /// a stale mark must never make a reachable fleet look dark.
    up: AtomicBool,
    /// Idle keep-alive connections, reused LIFO so the warmest socket
    /// goes first.
    pool: Mutex<Vec<TcpStream>>,
    relayed: AtomicU64,
}

/// Monotonic router counters, snapshotted into [`RouterSummary`].
#[derive(Default)]
struct RouterStats {
    received: AtomicU64,
    relayed: AtomicU64,
    failovers: AtomicU64,
    streamed: AtomicU64,
    all_dark: AtomicU64,
    client_errors: AtomicU64,
    aborted_relays: AtomicU64,
}

/// What one router run did, returned by [`Router::join`] and rendered by
/// `repro router` on exit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterSummary {
    /// Requests that reached routing (including locally answered ones).
    pub received: u64,
    /// Responses relayed from a backend, whatever their status.
    pub relayed: u64,
    /// Backend attempts that failed (connect error, unreadable head,
    /// 5xx), marked the backend down, and moved on along the ring.
    pub failovers: u64,
    /// Relayed responses that used chunked (streamed) framing.
    pub streamed: u64,
    /// Requests answered 503 because every backend attempt failed.
    pub all_dark: u64,
    /// Locally answered 4xx responses (bad specs, bad HTTP).
    pub client_errors: u64,
    /// Relays abandoned mid-body (client or backend vanished after the
    /// head was already on the wire — too late to fail over).
    pub aborted_relays: u64,
}

impl RouterSummary {
    /// Multi-line human-readable rendering, one counter per line.
    pub fn render_text(&self) -> String {
        format!(
            "received        {}\nrelayed         {}\nfailovers       {}\nstreamed        {}\n\
             all-dark (503)  {}\nclient errors   {}\naborted relays  {}\n",
            self.received,
            self.relayed,
            self.failovers,
            self.streamed,
            self.all_dark,
            self.client_errors,
            self.aborted_relays,
        )
    }
}

impl RouterStats {
    fn snapshot(&self) -> RouterSummary {
        RouterSummary {
            received: self.received.load(Ordering::SeqCst),
            relayed: self.relayed.load(Ordering::SeqCst),
            failovers: self.failovers.load(Ordering::SeqCst),
            streamed: self.streamed.load(Ordering::SeqCst),
            all_dark: self.all_dark.load(Ordering::SeqCst),
            client_errors: self.client_errors.load(Ordering::SeqCst),
            aborted_relays: self.aborted_relays.load(Ordering::SeqCst),
        }
    }
}

/// State shared by the acceptor, connection threads, and prober.
struct RouterInner {
    cfg: RouterConfig,
    ring: Ring,
    backends: Vec<Backend>,
    shutdown: AtomicBool,
    draining: AtomicBool,
    stop: AtomicBool,
    live_conns: AtomicUsize,
    stats: RouterStats,
}

/// A cloneable remote control for a running [`Router`].
#[derive(Clone)]
pub struct RouterHandle {
    inner: Arc<RouterInner>,
}

impl RouterHandle {
    /// Begins graceful shutdown: the acceptor stops, readyz starts
    /// failing, and [`Router::join`] proceeds to drain.
    pub fn trigger_shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.draining.store(true, Ordering::SeqCst);
    }

    /// True once shutdown has been triggered.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }
}

/// A running router. Construct with [`Router::bind`], stop with
/// [`RouterHandle::trigger_shutdown`] + [`Router::join`].
pub struct Router {
    inner: Arc<RouterInner>,
    addr: SocketAddr,
    acceptor: Option<thread::JoinHandle<()>>,
    prober: Option<thread::JoinHandle<()>>,
}

impl Router {
    /// Binds `cfg.addr`, builds the ring, and spawns the acceptor and
    /// health prober. Fails on an empty backend list — a router with
    /// nothing behind it can only answer 503.
    pub fn bind(mut cfg: RouterConfig) -> Result<Router, ApiError> {
        if cfg.backends.is_empty() {
            return Err(ApiError::Engine("router needs at least one backend".into()));
        }
        cfg.virtual_nodes = cfg.virtual_nodes.max(1);
        cfg.max_connections = cfg.max_connections.max(1);
        cfg.probe_interval_ms = cfg.probe_interval_ms.max(50);
        let ring = Ring::build(&cfg.backends, cfg.virtual_nodes);
        let backends = cfg
            .backends
            .iter()
            .map(|addr| Backend {
                addr: addr.clone(),
                // Optimistic until the first probe: a cold fleet must not
                // shed its first requests.
                up: AtomicBool::new(true),
                pool: Mutex::new(Vec::new()),
                relayed: AtomicU64::new(0),
            })
            .collect();
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(RouterInner {
            cfg,
            ring,
            backends,
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            live_conns: AtomicUsize::new(0),
            stats: RouterStats::default(),
        });
        let p = Arc::clone(&inner);
        let prober = thread::Builder::new()
            .name("gc-router-probe".to_string())
            .spawn(move || probe_loop(&p))?;
        let acc = Arc::clone(&inner);
        let acceptor = thread::Builder::new()
            .name("gc-router-accept".to_string())
            .spawn(move || acceptor_loop(&listener, &acc))?;
        Ok(Router {
            inner,
            addr,
            acceptor: Some(acceptor),
            prober: Some(prober),
        })
    }

    /// The bound address (useful with `:0` — the OS-picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable shutdown control for this router.
    pub fn handle(&self) -> RouterHandle {
        RouterHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Convenience for [`RouterHandle::trigger_shutdown`].
    pub fn trigger_shutdown(&self) {
        self.handle().trigger_shutdown();
    }

    /// Blocks until shutdown is triggered, then drains: live client
    /// connections get `drain_ms` to flush their in-flight relays, the
    /// prober is stopped, and the run's counters come back.
    pub fn join(mut self) -> RouterSummary {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.inner.draining.store(true, Ordering::SeqCst);
        let drain = Stopwatch::start();
        while (drain.elapsed_ms() as u64) < self.inner.cfg.drain_ms {
            if self.inner.live_conns.load(Ordering::SeqCst) == 0 {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(p) = self.prober.take() {
            let _ = p.join();
        }
        self.inner.stats.snapshot()
    }
}

/// Resolves `addr` to its first socket address.
fn resolve(addr: &str) -> Option<SocketAddr> {
    addr.to_socket_addrs().ok()?.next()
}

/// Health prober: hits every backend's `/v1/readyz` each interval with
/// short budgets and flips the `up` bit on the verdict. A draining
/// backend answers 503, so it goes dark here and stops receiving new
/// work ahead of its exit.
fn probe_loop(inner: &RouterInner) {
    while !inner.stop.load(Ordering::SeqCst) {
        for b in &inner.backends {
            let ok = probe_once(&b.addr, &inner.cfg);
            b.up.store(ok, Ordering::SeqCst);
            if !ok {
                // Idle pooled connections to a dark backend are stale.
                lock_ok(&b.pool).clear();
            }
        }
        let nap = Stopwatch::start();
        while (nap.elapsed_ms() as u64) < inner.cfg.probe_interval_ms {
            if inner.stop.load(Ordering::SeqCst) {
                return;
            }
            thread::sleep(Duration::from_millis(25));
        }
    }
}

/// One readiness probe: fresh connection, `GET /v1/readyz`, true iff the
/// backend answers 200 within the probe budgets.
fn probe_once(addr: &str, cfg: &RouterConfig) -> bool {
    let Some(sa) = resolve(addr) else {
        return false;
    };
    let Ok(mut conn) =
        TcpStream::connect_timeout(&sa, Duration::from_millis(cfg.connect_timeout_ms))
    else {
        return false;
    };
    let budget = cfg.connect_timeout_ms.max(250);
    let _ = conn.set_read_timeout(Some(Duration::from_millis(budget)));
    let _ = conn.set_write_timeout(Some(Duration::from_millis(budget)));
    let req = format!("GET /v1/readyz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    if conn.write_all(req.as_bytes()).is_err() {
        return false;
    }
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let clock = Stopwatch::start();
    loop {
        if find_head_end(&buf).is_some() || buf.len() > MAX_HEAD_BYTES {
            break;
        }
        if clock.elapsed_ms() as u64 > budget {
            return false;
        }
        match conn.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    parse_status_line(&buf).is_some_and(|s| s == 200)
}

/// The status code from a response head's first line, if parseable.
fn parse_status_line(buf: &[u8]) -> Option<u16> {
    let line_end = buf.windows(2).position(|w| w == b"\r\n")?;
    let line = std::str::from_utf8(buf.get(..line_end)?).ok()?;
    let mut parts = line.split(' ');
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    parts.next()?.parse::<u16>().ok()
}

/// Accepts connections until shutdown; each client gets its own thread,
/// capped at `max_connections` live at once.
fn acceptor_loop(listener: &TcpListener, inner: &Arc<RouterInner>) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if inner.live_conns.load(Ordering::SeqCst) >= inner.cfg.max_connections {
                    refuse_busy(stream, inner);
                    continue;
                }
                inner.live_conns.fetch_add(1, Ordering::SeqCst);
                let conn = Arc::clone(inner);
                let spawned = thread::Builder::new()
                    .name("gc-router-conn".to_string())
                    .spawn(move || {
                        handle_client(stream, &conn);
                        conn.live_conns.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    inner.live_conns.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Best-effort 503 for a connection over the `max_connections` cap.
fn refuse_busy(mut stream: TcpStream, inner: &RouterInner) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(inner.cfg.write_timeout_ms)));
    let body = error_body("overloaded", "router connection limit reached", Vec::new());
    let _ = write_response(
        &mut stream,
        503,
        &[("Retry-After", "1".to_string())],
        &body,
        true,
    );
}

/// Serves one client connection: requests are read with the same
/// slow-loris envelope as `serve` and routed until the peer hangs up,
/// sends `Connection: close`, errors, or the router drains.
fn handle_client(mut stream: TcpStream, inner: &RouterInner) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(inner.cfg.write_timeout_ms)));
    let limits = HttpLimits {
        max_body_bytes: inner.cfg.max_body_bytes,
        read_timeout_ms: inner.cfg.read_timeout_ms,
        draining: &inner.draining,
    };
    loop {
        match read_request(&mut stream, &limits) {
            ReadOut::Closed => break,
            ReadOut::Reject {
                status,
                code,
                message,
            } => {
                inner.stats.client_errors.fetch_add(1, Ordering::SeqCst);
                let body = error_body(code, &message, Vec::new());
                let _ = write_response(&mut stream, status, &[], &body, true);
                break;
            }
            ReadOut::Request(req) => {
                let close = req.close || inner.draining.load(Ordering::SeqCst);
                let keep = route_request(&mut stream, inner, &req, close);
                if close || !keep {
                    break;
                }
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Dispatch: local endpoints (healthz/readyz/stats) are answered here;
/// everything keyed by a spec or job id is relayed along the ring.
fn route_request(stream: &mut TcpStream, inner: &RouterInner, req: &Request, close: bool) -> bool {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/healthz") => {
            let body =
                Json::obj([("status", Json::from("ok")), ("role", Json::from("router"))]).render();
            write_response(stream, 200, &[], &body, close).is_ok()
        }
        ("GET", "/v1/readyz") => {
            let up = backends_up(inner);
            if inner.draining.load(Ordering::SeqCst) {
                let body = error_body("draining", "router is draining", Vec::new());
                let _ = write_response(
                    stream,
                    503,
                    &[("Retry-After", "1".to_string())],
                    &body,
                    true,
                );
                false
            } else if up == 0 {
                let body = error_body("no_backends", "every backend is dark", Vec::new());
                let _ = write_response(
                    stream,
                    503,
                    &[("Retry-After", "1".to_string())],
                    &body,
                    true,
                );
                false
            } else {
                let body = Json::obj([
                    ("status", Json::from("ready")),
                    ("backends_up", Json::from(up as u64)),
                ])
                .render();
                write_response(stream, 200, &[], &body, close).is_ok()
            }
        }
        ("GET", "/v1/stats") => {
            let body = aggregate_stats(inner);
            write_response(stream, 200, &[], &body, close).is_ok()
        }
        ("POST", "/v1/experiments" | "/v1/jobs") => {
            inner.stats.received.fetch_add(1, Ordering::SeqCst);
            if inner.draining.load(Ordering::SeqCst) {
                let body = error_body(
                    "draining",
                    "router is draining; not accepting work",
                    Vec::new(),
                );
                let _ = write_response(
                    stream,
                    503,
                    &[("Retry-After", "1".to_string())],
                    &body,
                    true,
                );
                return false;
            }
            let key = match spec_ring_key(&req.body) {
                Ok(k) => k,
                Err((status, body)) => {
                    // The router parses with the same crate the backends
                    // use, so a spec it rejects would be rejected there
                    // too — answer at the edge without burning a relay.
                    inner.stats.client_errors.fetch_add(1, Ordering::SeqCst);
                    return write_response(stream, status, &[], &body, close).is_ok();
                }
            };
            relay_keyed(stream, inner, req, close, key)
        }
        (_, p) if p.starts_with("/v1/jobs/") => {
            inner.stats.received.fetch_add(1, Ordering::SeqCst);
            let id = p.trim_start_matches("/v1/jobs/");
            // A content-derived id carries its ring key in its hex
            // prefix; anything else hashes as raw bytes so the (future)
            // 404 at least always comes from the same backend.
            let key =
                store::ring_key_of_job_id(id).unwrap_or_else(|| store::ring_key(id.as_bytes()));
            relay_keyed(stream, inner, req, close, key)
        }
        (_, "/v1/healthz" | "/v1/readyz" | "/v1/stats" | "/v1/experiments" | "/v1/jobs") => {
            inner.stats.client_errors.fetch_add(1, Ordering::SeqCst);
            let allow = if req.path == "/v1/experiments" || req.path == "/v1/jobs" {
                "POST"
            } else {
                "GET"
            };
            let body = error_body(
                "method_not_allowed",
                &format!("{} is not supported on {}", req.method, req.path),
                Vec::new(),
            );
            write_response(stream, 405, &[("Allow", allow.to_string())], &body, close).is_ok()
        }
        _ => {
            inner.stats.client_errors.fetch_add(1, Ordering::SeqCst);
            let body = error_body("not_found", &format!("no route {}", req.path), Vec::new());
            write_response(stream, 404, &[], &body, close).is_ok()
        }
    }
}

fn backends_up(inner: &RouterInner) -> usize {
    inner
        .backends
        .iter()
        .filter(|b| b.up.load(Ordering::SeqCst))
        .count()
}

/// The ring key for a `POST` body: parse, normalize, hash — the same
/// normalization the backend's cache and job ids use, so formatting
/// differences cannot split a spec across backends.
fn spec_ring_key(body: &[u8]) -> Result<u64, (u16, String)> {
    let text = std::str::from_utf8(body).map_err(|_| {
        (
            400,
            error_body("bad_request", "body is not valid UTF-8", Vec::new()),
        )
    })?;
    let spec = ExperimentSpec::from_json_str(text).map_err(|e| {
        let err = ApiError::from(e);
        (err.http_status(), err.to_error_json())
    })?;
    Ok(store::ring_key(spec.to_json_string().as_bytes()))
}

/// How one relay attempt ended.
enum RelayErr {
    /// The backend never produced a usable response head (connect/write
    /// failure, unreadable head, or 5xx) — safe to try the next backend.
    Backend,
    /// The response head was already on the wire toward the client when
    /// the relay died — the connection is poisoned, hang up.
    Abort,
    /// A job lookup answered 404 (only raised under `retry_not_found`):
    /// a job accepted during a failover window lives on a non-owner
    /// backend, so the next ring node may hold it. The backend is
    /// healthy — nothing is marked down.
    NotFound,
}

/// Relays `req` to the backends in ring-preference order for `key`,
/// failing over on backend errors until one answers or all have failed.
/// Up backends are tried before down ones (a stale down-mark must not
/// black-hole a key), and every failure re-marks the backend down.
fn relay_keyed(
    stream: &mut TcpStream,
    inner: &RouterInner,
    req: &Request,
    close: bool,
    key: u64,
) -> bool {
    let order = inner.ring.order(key, inner.backends.len());
    let mut plan: Vec<usize> = Vec::with_capacity(order.len());
    for &b in &order {
        if inner
            .backends
            .get(b)
            .is_some_and(|be| be.up.load(Ordering::SeqCst))
        {
            plan.push(b);
        }
    }
    for &b in &order {
        if !plan.contains(&b) {
            plan.push(b);
        }
    }
    // Job lookups retry 404s across the ring: a job accepted while its
    // owner was dark lives on the failover target instead.
    let retry_not_found = req.path.starts_with("/v1/jobs/");
    let mut not_found = 0usize;
    let mut backend_failures = 0usize;
    for &b in &plan {
        let Some(backend) = inner.backends.get(b) else {
            continue;
        };
        match relay_once(stream, inner, req, close, backend, retry_not_found) {
            Ok(keep) => {
                backend.up.store(true, Ordering::SeqCst);
                backend.relayed.fetch_add(1, Ordering::SeqCst);
                inner.stats.relayed.fetch_add(1, Ordering::SeqCst);
                return keep;
            }
            Err(RelayErr::NotFound) => not_found += 1,
            Err(RelayErr::Backend) => {
                backend_failures += 1;
                inner.stats.failovers.fetch_add(1, Ordering::SeqCst);
                backend.up.store(false, Ordering::SeqCst);
                lock_ok(&backend.pool).clear();
            }
            Err(RelayErr::Abort) => {
                inner.stats.aborted_relays.fetch_add(1, Ordering::SeqCst);
                return false;
            }
        }
    }
    if not_found > 0 && backend_failures == 0 {
        // Every live backend answered definitively: the job truly does
        // not exist anywhere in the fleet.
        inner.stats.client_errors.fetch_add(1, Ordering::SeqCst);
        let body = error_body("job_not_found", "no backend holds this job", Vec::new());
        return write_response(stream, 404, &[], &body, close).is_ok() && !close;
    }
    inner.stats.all_dark.fetch_add(1, Ordering::SeqCst);
    let body = error_body(
        "no_backends",
        &format!("all {} backends failed for this request", plan.len()),
        Vec::new(),
    );
    let _ = write_response(
        stream,
        503,
        &[("Retry-After", "1".to_string())],
        &body,
        true,
    );
    false
}

/// One relay attempt against one backend: send the request (reusing a
/// pooled keep-alive connection when one exists, with a single fresh
/// retry if the pooled socket turns out stale), read the response head,
/// then stream the body through without buffering it.
fn relay_once(
    stream: &mut TcpStream,
    inner: &RouterInner,
    req: &Request,
    close: bool,
    backend: &Backend,
    retry_not_found: bool,
) -> Result<bool, RelayErr> {
    let pooled = lock_ok(&backend.pool).pop();
    let had_pooled = pooled.is_some();
    let conn = match pooled {
        Some(c) => c,
        None => fresh_conn(backend, &inner.cfg).ok_or(RelayErr::Backend)?,
    };
    match relay_on_conn(stream, inner, req, close, backend, conn, retry_not_found) {
        Ok(keep) => Ok(keep),
        // A stale pooled socket fails before any response bytes exist;
        // one fresh connection gets the verdict instead.
        Err(RelayErr::Backend) if had_pooled => {
            let conn = fresh_conn(backend, &inner.cfg).ok_or(RelayErr::Backend)?;
            relay_on_conn(stream, inner, req, close, backend, conn, retry_not_found)
        }
        Err(e) => Err(e),
    }
}

/// Connects to `backend` within the configured budgets.
fn fresh_conn(backend: &Backend, cfg: &RouterConfig) -> Option<TcpStream> {
    let sa = resolve(&backend.addr)?;
    let conn =
        TcpStream::connect_timeout(&sa, Duration::from_millis(cfg.connect_timeout_ms)).ok()?;
    let _ = conn.set_nodelay(true);
    let _ = conn.set_read_timeout(Some(Duration::from_millis(cfg.relay_timeout_ms)));
    let _ = conn.set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_ms)));
    Some(conn)
}

/// The relay proper, on an established backend connection.
fn relay_on_conn(
    stream: &mut TcpStream,
    inner: &RouterInner,
    req: &Request,
    close: bool,
    backend: &Backend,
    mut conn: TcpStream,
    retry_not_found: bool,
) -> Result<bool, RelayErr> {
    // Rebuild the request head: hop-by-hop headers are the router's
    // business (`connection`), `expect` must not trigger an interim 100
    // (the body is already fully read), and length framing is restated
    // from the bytes actually held.
    let mut head = format!("{} {} HTTP/1.1\r\n", req.method, req.path);
    for (k, v) in &req.headers {
        if matches!(
            k.as_str(),
            "connection" | "content-length" | "host" | "expect"
        ) {
            continue;
        }
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!("Host: {}\r\n", backend.addr));
    if req.method == "POST" || req.method == "PUT" || !req.body.is_empty() {
        head.push_str(&format!("Content-Length: {}\r\n", req.body.len()));
    }
    head.push_str("Connection: keep-alive\r\n\r\n");
    if conn.write_all(head.as_bytes()).is_err()
        || conn.write_all(&req.body).is_err()
        || conn.flush().is_err()
    {
        return Err(RelayErr::Backend);
    }

    // Read the backend's response head.
    let (status, resp_headers, leftover) =
        read_backend_head(&mut conn, inner.cfg.relay_timeout_ms).ok_or(RelayErr::Backend)?;
    if status >= 500 {
        // The backend is misbehaving: drop the connection (no draining of
        // the body — it may be arbitrarily large) and let the next ring
        // node serve the request. 4xx including 429 passes through: that
        // verdict is about the *request*, not the backend.
        return Err(RelayErr::Backend);
    }
    if retry_not_found && status == 404 {
        // The job may live on the next ring node; consume the small error
        // body so the connection stays reusable, then move on.
        let len = header(&resp_headers, "content-length").and_then(|v| v.parse::<u64>().ok());
        let backend_close =
            header(&resp_headers, "connection").is_some_and(|v| v.eq_ignore_ascii_case("close"));
        if let Some(len) = len.filter(|&l| l <= 64 * 1024) {
            if drain_exact(&mut conn, leftover, len).is_ok() && !backend_close {
                lock_ok(&backend.pool).push(conn);
            }
        }
        return Err(RelayErr::NotFound);
    }

    // Forward the head to the client.
    let mut out = format!("HTTP/1.1 {status} {}\r\n", status_reason(status));
    for (k, v) in &resp_headers {
        if k == "connection" {
            continue;
        }
        out.push_str(&format!("{k}: {v}\r\n"));
    }
    out.push_str(if close {
        "Connection: close\r\n\r\n"
    } else {
        "Connection: keep-alive\r\n\r\n"
    });
    if stream.write_all(out.as_bytes()).is_err() {
        return Err(RelayErr::Abort);
    }

    let chunked = header(&resp_headers, "transfer-encoding")
        .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"));
    let content_length =
        header(&resp_headers, "content-length").and_then(|v| v.parse::<u64>().ok());
    let backend_close =
        header(&resp_headers, "connection").is_some_and(|v| v.eq_ignore_ascii_case("close"));

    let reusable = if chunked {
        inner.stats.streamed.fetch_add(1, Ordering::SeqCst);
        relay_chunked(&mut conn, stream, leftover).map_err(|_| RelayErr::Abort)?
    } else if let Some(len) = content_length {
        relay_exact(&mut conn, stream, leftover, len).map_err(|_| RelayErr::Abort)?
    } else {
        // No framing: copy until EOF; the connection cannot be reused.
        relay_to_eof(&mut conn, stream, leftover).map_err(|_| RelayErr::Abort)?;
        false
    };
    if stream.flush().is_err() {
        return Err(RelayErr::Abort);
    }
    if reusable && !backend_close {
        lock_ok(&backend.pool).push(conn);
    }
    Ok(!close)
}

/// Reads a backend response head under a time budget. Returns the status,
/// headers, and any body bytes read past the head.
#[allow(clippy::type_complexity)]
fn read_backend_head(
    conn: &mut TcpStream,
    budget_ms: u64,
) -> Option<(u16, Vec<(String, String)>, Vec<u8>)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let clock = Stopwatch::start();
    let head_end = loop {
        if let Some(end) = find_head_end(&buf) {
            break end;
        }
        if buf.len() > MAX_HEAD_BYTES || clock.elapsed_ms() as u64 > budget_ms {
            return None;
        }
        match conn.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return None,
        }
    };
    let status = parse_status_line(&buf)?;
    let head_text = std::str::from_utf8(buf.get(..head_end.saturating_sub(4))?).ok()?;
    let mut headers = Vec::new();
    for line in head_text.split("\r\n").skip(1) {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line.split_once(':')?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    let leftover = buf.split_off(head_end);
    Some((status, headers, leftover))
}

/// Streams exactly `len` body bytes from `conn` to `client`, starting
/// with `leftover`. Returns whether the backend connection is reusable.
fn relay_exact(
    conn: &mut TcpStream,
    client: &mut TcpStream,
    leftover: Vec<u8>,
    len: u64,
) -> io::Result<bool> {
    let mut remaining = len;
    let take = leftover.len().min(remaining as usize);
    if take > 0 {
        client.write_all(leftover.get(..take).unwrap_or_default())?;
        remaining -= take as u64;
    }
    let mut chunk = [0u8; 8192];
    while remaining > 0 {
        let want = chunk.len().min(remaining as usize);
        let slot = chunk.get_mut(..want).unwrap_or_default();
        match conn.read(slot) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => {
                client.write_all(slot.get(..n).unwrap_or_default())?;
                remaining -= n as u64;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads and discards exactly `len` body bytes (beyond `leftover`).
fn drain_exact(conn: &mut TcpStream, leftover: Vec<u8>, len: u64) -> io::Result<()> {
    let mut remaining = len.saturating_sub(leftover.len() as u64);
    let mut chunk = [0u8; 4096];
    while remaining > 0 {
        let want = chunk.len().min(remaining as usize);
        match conn.read(chunk.get_mut(..want).unwrap_or_default()) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => remaining -= n as u64,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Copies from `conn` to `client` until the backend closes.
fn relay_to_eof(conn: &mut TcpStream, client: &mut TcpStream, leftover: Vec<u8>) -> io::Result<()> {
    client.write_all(&leftover)?;
    let mut chunk = [0u8; 8192];
    loop {
        match conn.read(&mut chunk) {
            Ok(0) => return Ok(()),
            Ok(n) => client.write_all(chunk.get(..n).unwrap_or_default())?,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Relays a chunked body verbatim, flushing after every chunk so progress
/// frames reach the client as they are produced, parsing the framing only
/// to find the terminating zero chunk. Returns whether the backend
/// connection is reusable (true — chunked framing is self-delimiting).
fn relay_chunked(
    conn: &mut TcpStream,
    client: &mut TcpStream,
    leftover: Vec<u8>,
) -> io::Result<bool> {
    // `buf` holds bytes read from the backend but not yet forwarded.
    let mut buf = leftover;
    let mut chunk = [0u8; 8192];
    loop {
        // Chunk-size line.
        let line_end = loop {
            if let Some(p) = buf.windows(2).position(|w| w == b"\r\n") {
                break p;
            }
            if buf.len() > 128 {
                return Err(io::ErrorKind::InvalidData.into());
            }
            let n = read_some(conn, &mut chunk)?;
            buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
        };
        let line = std::str::from_utf8(buf.get(..line_end).unwrap_or_default())
            .map_err(|_| io::Error::from(io::ErrorKind::InvalidData))?;
        let size_text = line.split(';').next().unwrap_or("").trim();
        let size = u64::from_str_radix(size_text, 16)
            .map_err(|_| io::Error::from(io::ErrorKind::InvalidData))?;
        // Forward the size line + payload + trailing CRLF.
        let mut need = line_end as u64 + 2 + size + 2;
        loop {
            let have = (buf.len() as u64).min(need) as usize;
            if have > 0 {
                client.write_all(buf.get(..have).unwrap_or_default())?;
                buf.drain(..have);
                need -= have as u64;
            }
            if need == 0 {
                break;
            }
            let n = read_some(conn, &mut chunk)?;
            buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
        }
        client.flush()?;
        if size == 0 {
            // The zero chunk's trailing CRLF was already forwarded above;
            // `serve` sends no trailers, and any unread trailer bytes
            // would poison the pooled connection — so only an empty
            // buffer leaves the socket reusable.
            return Ok(buf.is_empty());
        }
    }
}

/// One blocking read that treats EOF as an error (chunked bodies end with
/// the zero chunk, never the socket).
fn read_some(conn: &mut TcpStream, chunk: &mut [u8; 8192]) -> io::Result<usize> {
    loop {
        match conn.read(chunk) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => return Ok(n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// `GET /v1/stats`: fetches every backend's stats document, sums the
/// numeric top-level fields into a fleet view, and wraps it all in a
/// `greencloud-router-stats/1` document with the router's own counters.
fn aggregate_stats(inner: &RouterInner) -> String {
    let mut fleet: Vec<(String, u64)> = Vec::new();
    let mut backend_docs = Vec::new();
    for b in &inner.backends {
        let doc = fetch_backend_stats(b, &inner.cfg).and_then(|text| Json::parse(&text).ok());
        let mut fields = vec![
            ("addr".to_string(), Json::from(b.addr.as_str())),
            ("up".to_string(), Json::from(doc.is_some())),
            (
                "relayed".to_string(),
                Json::from(b.relayed.load(Ordering::SeqCst)),
            ),
        ];
        if let Some(doc) = doc {
            if let Json::Object(stat_fields) = &doc {
                for (k, v) in stat_fields {
                    if let Some(n) = v.as_u64() {
                        match fleet.iter_mut().find(|(fk, _)| fk == k) {
                            Some((_, sum)) => *sum = sum.saturating_add(n),
                            None => fleet.push((k.clone(), n)),
                        }
                    }
                }
            }
            fields.push(("stats".to_string(), doc));
        }
        backend_docs.push(Json::Object(fields));
    }
    let s = inner.stats.snapshot();
    Json::obj([
        ("schema", Json::from(ROUTER_STATS_SCHEMA)),
        ("received", Json::from(s.received)),
        ("relayed", Json::from(s.relayed)),
        ("failovers", Json::from(s.failovers)),
        ("streamed", Json::from(s.streamed)),
        ("all_dark", Json::from(s.all_dark)),
        ("client_errors", Json::from(s.client_errors)),
        ("aborted_relays", Json::from(s.aborted_relays)),
        ("backends_up", Json::from(backends_up(inner) as u64)),
        (
            "draining",
            Json::from(inner.draining.load(Ordering::SeqCst)),
        ),
        ("backends", Json::Array(backend_docs)),
        (
            "fleet",
            Json::Object(fleet.into_iter().map(|(k, v)| (k, Json::from(v))).collect()),
        ),
    ])
    .render()
}

/// One backend's `/v1/stats` body via a short-budget fresh connection,
/// `None` when the backend is unreachable or answers anything but 200.
fn fetch_backend_stats(backend: &Backend, cfg: &RouterConfig) -> Option<String> {
    let sa = resolve(&backend.addr)?;
    let mut conn =
        TcpStream::connect_timeout(&sa, Duration::from_millis(cfg.connect_timeout_ms)).ok()?;
    let budget = cfg.connect_timeout_ms.max(1_000);
    let _ = conn.set_read_timeout(Some(Duration::from_millis(budget)));
    let _ = conn.set_write_timeout(Some(Duration::from_millis(budget)));
    let req = format!(
        "GET /v1/stats HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
        backend.addr
    );
    conn.write_all(req.as_bytes()).ok()?;
    let (status, headers, mut body) = read_backend_head(&mut conn, budget)?;
    if status != 200 {
        return None;
    }
    let len = header(&headers, "content-length").and_then(|v| v.parse::<usize>().ok())?;
    let clock = Stopwatch::start();
    let mut chunk = [0u8; 4096];
    while body.len() < len {
        if clock.elapsed_ms() as u64 > budget {
            return None;
        }
        match conn.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(chunk.get(..n).unwrap_or_default()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
    body.truncate(len);
    String::from_utf8(body).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn ring_key_matches_job_id_prefix() {
        for spec in [&b"{\"a\":1}"[..], b"hello", b"", b"another spec body"] {
            let id = store::job_id(spec);
            assert_eq!(
                store::ring_key_of_job_id(&id),
                Some(store::ring_key(spec)),
                "POSTs and GET /v1/jobs/:id must agree on the ring point"
            );
        }
        assert_eq!(store::ring_key_of_job_id("short"), None);
        assert_eq!(store::ring_key_of_job_id("zzzzzzzzzzzzzzzz"), None);
    }

    #[test]
    fn ring_order_starts_with_owner_and_covers_all_distinct_backends() {
        let backends = addrs(4);
        let ring = Ring::build(&backends, 64);
        for k in [0u64, 1, u64::MAX / 2, u64::MAX] {
            let order = ring.order(k, backends.len());
            assert_eq!(order.len(), 4, "every backend appears once");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "no duplicates in {order:?}");
        }
    }

    #[test]
    fn ring_routing_is_deterministic_across_builds() {
        let backends = addrs(5);
        let a = Ring::build(&backends, 32);
        let b = Ring::build(&backends, 32);
        for i in 0..512u64 {
            let key = store::ring_key(format!("spec-{i}").as_bytes());
            assert_eq!(a.order(key, 5), b.order(key, 5));
        }
    }

    #[test]
    fn adding_a_backend_moves_about_one_in_n_keys() {
        let old = addrs(4);
        let mut grown = old.clone();
        grown.push("127.0.0.1:9100".to_string());
        let before = Ring::build(&old, 64);
        let after = Ring::build(&grown, 64);
        let total = 4_000usize;
        let mut moved = 0usize;
        for i in 0..total {
            let key = store::ring_key(format!("spec-{i}").as_bytes());
            let was = before.order(key, old.len()).first().copied();
            let now = after.order(key, grown.len()).first().copied();
            // Keys that now land on the new backend moved by design;
            // anything else must stay put.
            if now == Some(4) {
                moved += 1;
            } else {
                assert_eq!(was, now, "key {i} moved between surviving backends");
            }
        }
        let frac = moved as f64 / total as f64;
        assert!(
            frac > 0.08 && frac < 0.40,
            "expected ~1/5 of keys to move, got {frac:.3}"
        );
    }

    #[test]
    fn ring_spreads_keys_roughly_evenly() {
        let backends = addrs(3);
        let ring = Ring::build(&backends, 64);
        let mut counts = [0usize; 3];
        let total = 3_000usize;
        for i in 0..total {
            let key = store::ring_key(format!("spec-{i}").as_bytes());
            if let Some(&owner) = ring.order(key, 3).first() {
                if let Some(c) = counts.get_mut(owner) {
                    *c += 1;
                }
            }
        }
        for (b, &c) in counts.iter().enumerate() {
            let share = c as f64 / total as f64;
            assert!(
                share > 0.15 && share < 0.55,
                "backend {b} owns {share:.3} of the key space"
            );
        }
    }

    #[test]
    fn status_line_parser_accepts_and_rejects() {
        assert_eq!(parse_status_line(b"HTTP/1.1 200 OK\r\n"), Some(200));
        assert_eq!(
            parse_status_line(b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 3\r\n\r\n"),
            Some(429)
        );
        assert_eq!(parse_status_line(b"SPDY/9 200 OK\r\n"), None);
        assert_eq!(parse_status_line(b"HTTP/1.1 abc\r\n"), None);
        assert_eq!(parse_status_line(b"no crlf yet"), None);
    }

    #[test]
    fn bind_rejects_empty_backend_list() {
        let cfg = RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            ..RouterConfig::default()
        };
        assert!(Router::bind(cfg).is_err());
    }

    #[test]
    fn summary_renders_every_counter() {
        let text = RouterSummary {
            received: 1,
            relayed: 2,
            failovers: 3,
            streamed: 4,
            all_dark: 5,
            client_errors: 6,
            aborted_relays: 7,
        }
        .render_text();
        for label in [
            "received",
            "relayed",
            "failovers",
            "streamed",
            "all-dark",
            "client errors",
            "aborted relays",
        ] {
            assert!(text.contains(label), "missing {label} in {text}");
        }
    }
}
