//! The paper's Table I cost model: CAPEX, OPEX, financing, amortization.
//!
//! Every cost the siting optimization minimizes is computed here, expressed
//! as **$/month**, the unit the paper reports:
//!
//! * [`finance`] — annuity mathematics: each CAPEX component is financed at
//!   a fixed annual rate over a financing period and attributed over its
//!   amortization (asset-lifetime) period; land is financing-cost-only
//!   because the paper assumes it is fully recoverable.
//! * [`params::CostParams`] — the Table I defaults (prices, areas, power
//!   draws, lifetimes).
//! * [`breakdown`] — `CAP_ind`, `CAP_dep`, and `OP` for a provisioned
//!   datacenter, itemized exactly as the paper's Fig. 7 stacks them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breakdown;
pub mod finance;
pub mod params;

pub use breakdown::{CostBreakdown, Provisioning};
pub use params::CostParams;
