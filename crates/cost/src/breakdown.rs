//! Itemized monthly cost of a provisioned datacenter (Table I / Fig. 7).

use crate::finance::{land_monthly_cost, monthly_cost};
use crate::params::CostParams;
use greencloud_climate::economics::Economics;
use serde::{Deserialize, Serialize};

/// Physical sizing of one datacenter and its on-site plants.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Provisioning {
    /// IT compute capacity, kW (the paper's `capacity(d)`).
    pub capacity_kw: f64,
    /// Maximum PUE at the site (sizes power/cooling: `maxPUE(d)`).
    pub max_pue: f64,
    /// Installed solar capacity, kW.
    pub solar_kw: f64,
    /// Installed wind capacity, kW.
    pub wind_kw: f64,
    /// Battery bank size, kWh.
    pub batt_kwh: f64,
}

impl Provisioning {
    /// Maximum electrical power of the datacenter, kW (capacity × maxPUE).
    pub fn max_power_kw(&self) -> f64 {
        self.capacity_kw * self.max_pue
    }
}

/// Monthly cost components of one sited datacenter, in $/month.
///
/// The component split matches the paper's Fig. 7 stack: datacenter
/// building, IT equipment, grid/network connections, land, green plants,
/// batteries, network bandwidth, and brown energy.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Datacenter construction (power + cooling infrastructure).
    pub building_dc: f64,
    /// Servers and switches (4-year refresh).
    pub it_equipment: f64,
    /// Land financing (datacenter + plant footprints).
    pub land: f64,
    /// Solar plant construction.
    pub building_solar: f64,
    /// Wind plant construction.
    pub building_wind: f64,
    /// Battery banks (4-year replacement).
    pub batteries: f64,
    /// Power line + optical fiber layout (`CAP_ind`).
    pub connections: f64,
    /// External network bandwidth.
    pub bandwidth: f64,
    /// Net brown (grid) energy after net-metering settlement.
    pub energy: f64,
}

impl CostBreakdown {
    /// Computes all CAPEX-derived monthly components for a provisioned
    /// datacenter at a location with the given economics. The `energy`
    /// component starts at zero: it depends on the dispatch and is filled
    /// by the optimizer via [`CostBreakdown::with_energy`].
    pub fn capex(params: &CostParams, econ: &Economics, prov: &Provisioning) -> Self {
        let rate = params.interest_rate;
        let dc_years = params.dc_lifetime_years;

        let building_dc = monthly_cost(
            prov.max_power_kw() * 1000.0 * params.price_build_dc_per_w(prov.max_power_kw()),
            rate,
            dc_years,
            dc_years,
        );

        let servers = params.num_servers(prov.capacity_kw);
        let switches = servers / params.servers_per_switch;
        let it_equipment = monthly_cost(
            servers * params.price_server + switches * params.price_switch,
            rate,
            params.it_lifetime_years,
            params.it_lifetime_years,
        );

        let land_m2 = prov.capacity_kw * params.area_dc_m2_per_kw
            + prov.solar_kw * params.area_solar_m2_per_kw
            + prov.wind_kw * params.area_wind_m2_per_kw;
        let land = land_monthly_cost(land_m2 * econ.land_usd_per_m2, rate, dc_years);

        let building_solar = monthly_cost(
            prov.solar_kw * 1000.0 * params.price_build_solar_per_w,
            rate,
            dc_years,
            params.plant_amortization_years,
        );
        let building_wind = monthly_cost(
            prov.wind_kw * 1000.0 * params.price_build_wind_per_w,
            rate,
            dc_years,
            params.plant_amortization_years,
        );

        let batteries = monthly_cost(
            prov.batt_kwh * params.price_batt_per_kwh,
            rate,
            params.batt_lifetime_years,
            params.batt_lifetime_years,
        );

        let connections = monthly_cost(
            econ.dist_power_km * params.cost_line_pow_per_km
                + econ.dist_network_km * params.cost_line_net_per_km,
            rate,
            dc_years,
            dc_years,
        );

        let bandwidth = servers * params.price_bw_per_server_month;

        CostBreakdown {
            building_dc,
            it_equipment,
            land,
            building_solar,
            building_wind,
            batteries,
            connections,
            bandwidth,
            energy: 0.0,
        }
    }

    /// Returns a copy with the monthly net energy cost set.
    pub fn with_energy(mut self, energy_usd_per_month: f64) -> Self {
        self.energy = energy_usd_per_month;
        self
    }

    /// Total monthly cost, $/month.
    pub fn total(&self) -> f64 {
        self.building_dc
            + self.it_equipment
            + self.land
            + self.building_solar
            + self.building_wind
            + self.batteries
            + self.connections
            + self.bandwidth
            + self.energy
    }

    /// Component-wise sum of two breakdowns (for network totals).
    pub fn combined(&self, other: &CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            building_dc: self.building_dc + other.building_dc,
            it_equipment: self.it_equipment + other.it_equipment,
            land: self.land + other.land,
            building_solar: self.building_solar + other.building_solar,
            building_wind: self.building_wind + other.building_wind,
            batteries: self.batteries + other.batteries,
            connections: self.connections + other.connections,
            bandwidth: self.bandwidth + other.bandwidth,
            energy: self.energy + other.energy,
        }
    }

    /// The monthly cost per kW of provisioned capacity that is *independent
    /// of dispatch* — used by the heuristic's location filter.
    pub fn capex_total(&self) -> f64 {
        self.total() - self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typical_econ() -> Economics {
        Economics {
            land_usd_per_m2: 50.0,
            elec_usd_per_kwh: 0.09,
            dist_power_km: 100.0,
            dist_network_km: 50.0,
            near_plant_cap_kw: 1_000_000.0,
        }
    }

    fn brown_25mw() -> Provisioning {
        Provisioning {
            capacity_kw: 25_000.0,
            max_pue: 1.07,
            solar_kw: 0.0,
            wind_kw: 0.0,
            batt_kwh: 0.0,
        }
    }

    #[test]
    fn brown_dc_lands_in_paper_cost_band() {
        // Fig. 6: at 80% of locations a brown 25 MW DC costs $8.7–12.8M per
        // month. CAPEX + bandwidth here, plus ~$1.7M energy, must land in
        // that band.
        let params = CostParams::default();
        let b = CostBreakdown::capex(&params, &typical_econ(), &brown_25mw());
        let energy = 25_000.0 * 1.07 * 720.0 * 0.09; // kW·h/mo·$/kWh ≈ $1.73M
        let total = b.with_energy(energy).total();
        assert!(
            (8.0e6..13.5e6).contains(&total),
            "monthly total ${:.2}M",
            total / 1e6
        );
    }

    #[test]
    fn component_magnitudes_match_hand_calculation() {
        let params = CostParams::default();
        let b = CostBreakdown::capex(&params, &typical_econ(), &brown_25mw());
        // Building: 26.75 MW × $12/W = $321M → ≈ $2.69M/month at 3.25%/12y.
        assert!(
            (b.building_dc - 2.69e6).abs() < 0.1e6,
            "building {}",
            b.building_dc
        );
        // IT: 86 207 servers × $2000 + 2694 switches × $20k ≈ $226M → 4y.
        assert!(
            (b.it_equipment - 5.0e6).abs() < 0.3e6,
            "it {}",
            b.it_equipment
        );
        // Connections: 100km×$310k + 50km×$300k = $46M → ≈ $0.39M/month.
        assert!(
            (b.connections - 0.385e6).abs() < 0.02e6,
            "conn {}",
            b.connections
        );
        // Bandwidth: ~$86k/month.
        assert!((b.bandwidth - 86_207.0).abs() < 10.0);
        assert!(b.land > 0.0 && b.land < 50_000.0, "land {}", b.land);
        assert_eq!(b.building_solar, 0.0);
        assert_eq!(b.batteries, 0.0);
    }

    #[test]
    fn wind_is_cheaper_than_solar_per_average_watt() {
        // Table I: wind $2.1/W vs solar $5.25/W installed. For equal
        // *average* production the gap narrows with capacity factors but
        // wind at a good site stays cheaper — the paper's key observation.
        let params = CostParams::default();
        let econ = typical_econ();
        let wind = CostBreakdown::capex(
            &params,
            &econ,
            &Provisioning {
                wind_kw: 27_000.0, // 50% CF site → 13.5 MW average
                ..brown_25mw()
            },
        );
        let solar = CostBreakdown::capex(
            &params,
            &econ,
            &Provisioning {
                solar_kw: 64_000.0, // 21% CF site → 13.4 MW average
                ..brown_25mw()
            },
        );
        assert!(
            wind.building_wind < solar.building_solar / 3.0,
            "wind {} vs solar {}",
            wind.building_wind,
            solar.building_solar
        );
    }

    #[test]
    fn small_dc_class_is_pricier_per_watt() {
        let params = CostParams::default();
        let econ = typical_econ();
        let small = CostBreakdown::capex(
            &params,
            &econ,
            &Provisioning {
                capacity_kw: 5_000.0,
                max_pue: 1.07,
                ..Default::default()
            },
        );
        let large = CostBreakdown::capex(
            &params,
            &econ,
            &Provisioning {
                capacity_kw: 50_000.0,
                max_pue: 1.07,
                ..Default::default()
            },
        );
        let small_per_kw = small.building_dc / 5_000.0;
        let large_per_kw = large.building_dc / 50_000.0;
        assert!((small_per_kw / large_per_kw - 15.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn combined_adds_componentwise() {
        let params = CostParams::default();
        let econ = typical_econ();
        let a = CostBreakdown::capex(&params, &econ, &brown_25mw()).with_energy(1e6);
        let b = a;
        let c = a.combined(&b);
        assert!((c.total() - 2.0 * a.total()).abs() < 1e-6);
        assert_eq!(c.energy, 2e6);
    }

    #[test]
    fn batteries_are_expensive() {
        // The paper: at 100% green with batteries, storage dominates.
        let params = CostParams::default();
        let econ = typical_econ();
        let b = CostBreakdown::capex(
            &params,
            &econ,
            &Provisioning {
                batt_kwh: 500_000.0, // ~half a day of a 25 MW DC
                ..brown_25mw()
            },
        );
        // $100M every 4 years → ≈ $2.3M/month.
        assert!(b.batteries > 2e6, "batteries {}", b.batteries);
    }
}
