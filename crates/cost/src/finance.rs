//! Annuity financing and amortized cost attribution.
//!
//! The paper finances every CAPEX component with a fixed-rate loan (3.25%
//! annual in all studies) over a *financing period*, and attributes the cost
//! over an *amortization period* equal to the component's useful life:
//!
//! | component          | financed | amortized |
//! |--------------------|----------|-----------|
//! | datacenter build   | 12 y     | 12 y      |
//! | solar / wind plant | 12 y     | 24 y      |
//! | batteries          | 4 y      | 4 y       |
//! | servers / switches | 4 y      | 4 y       |
//! | transmission/fiber | 12 y     | 12 y      |
//! | land               | financing cost only (fully recoverable) |

/// Monthly payment of a fixed-rate annuity loan.
///
/// # Panics
///
/// Panics if `years <= 0` or the rate is negative.
pub fn monthly_payment(principal: f64, annual_rate: f64, years: f64) -> f64 {
    assert!(years > 0.0, "financing period must be positive");
    assert!(annual_rate >= 0.0, "negative interest rate");
    let n = years * 12.0;
    if principal == 0.0 {
        return 0.0;
    }
    if annual_rate == 0.0 {
        return principal / n;
    }
    let r = annual_rate / 12.0;
    principal * r / (1.0 - (1.0 + r).powf(-n))
}

/// Monthly cost of a component financed over `financing_years` but
/// attributed over `amortization_years` of useful life.
///
/// When the two periods match this is the plain annuity payment; when the
/// asset outlives the loan (solar/wind plants: 12-year loan, 24-year life),
/// the total loan cost is spread over the longer life, halving the monthly
/// attribution exactly as the paper describes.
pub fn monthly_cost(
    principal: f64,
    annual_rate: f64,
    financing_years: f64,
    amortization_years: f64,
) -> f64 {
    assert!(
        amortization_years > 0.0,
        "amortization period must be positive"
    );
    let total_paid =
        monthly_payment(principal, annual_rate, financing_years) * financing_years * 12.0;
    total_paid / (amortization_years * 12.0)
}

/// Monthly financing cost of fully-recoverable land: the interest portion of
/// a `financing_years` loan, spread evenly (the principal comes back when
/// the land is sold).
pub fn land_monthly_cost(principal: f64, annual_rate: f64, financing_years: f64) -> f64 {
    let total_paid =
        monthly_payment(principal, annual_rate, financing_years) * financing_years * 12.0;
    (total_paid - principal).max(0.0) / (financing_years * 12.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_is_straight_line() {
        assert!((monthly_payment(1200.0, 0.0, 10.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_principal_costs_nothing() {
        assert_eq!(monthly_payment(0.0, 0.0325, 12.0), 0.0);
        assert_eq!(monthly_cost(0.0, 0.0325, 12.0, 24.0), 0.0);
        assert_eq!(land_monthly_cost(0.0, 0.0325, 12.0), 0.0);
    }

    #[test]
    fn known_annuity_value() {
        // $318M at 3.25% over 12 years ≈ $2.67M/month (checked against a
        // standard amortization table).
        let p = monthly_payment(318e6, 0.0325, 12.0);
        assert!((p - 2.667e6).abs() < 2e4, "payment {p}");
    }

    #[test]
    fn longer_amortization_halves_attribution() {
        let financed = monthly_cost(100e6, 0.0325, 12.0, 12.0);
        let spread = monthly_cost(100e6, 0.0325, 12.0, 24.0);
        assert!((spread - financed / 2.0).abs() < 1e-6);
    }

    #[test]
    fn land_cost_is_interest_only() {
        // Total interest on a 12-year 3.25% loan is ~21% of principal.
        let land = land_monthly_cost(1e6, 0.0325, 12.0);
        let full = monthly_payment(1e6, 0.0325, 12.0);
        assert!(land < full * 0.25, "land {land} vs full {full}");
        assert!(land > 0.0);
        // Reconstruction: interest spread = payment - principal/144.
        let expected = full - 1e6 / 144.0;
        assert!((land - expected).abs() < 1e-6);
    }

    #[test]
    fn payment_increases_with_rate() {
        let lo = monthly_payment(1e6, 0.01, 12.0);
        let hi = monthly_payment(1e6, 0.08, 12.0);
        assert!(hi > lo);
    }

    #[test]
    #[should_panic(expected = "financing period")]
    fn rejects_zero_period() {
        monthly_payment(1.0, 0.03, 0.0);
    }
}
