//! Table I framework parameters (2011 price levels, as in the paper).

use serde::{Deserialize, Serialize};

/// All provider-level framework defaults of the paper's Table I.
///
/// Per-location parameters (land price, electricity price, distances,
/// capacity factors) live on `greencloud_climate::Location`; this struct
/// holds everything that is location-independent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Annual interest rate used to finance all CAPEX.
    pub interest_rate: f64,
    /// Datacenter lifetime = financing period of long-lived CAPEX, years.
    pub dc_lifetime_years: f64,
    /// Land needed per kW of datacenter capacity, m²/kW (`areaDC`).
    pub area_dc_m2_per_kw: f64,
    /// Land per kW of solar plant, m²/kW (`areaSolar`).
    pub area_solar_m2_per_kw: f64,
    /// Land per kW of wind plant, m²/kW (`areaWind`).
    pub area_wind_m2_per_kw: f64,
    /// Build price for small (≤ 10 MW max power) datacenters, $/W.
    pub price_build_dc_small_per_w: f64,
    /// Build price for large (> 10 MW) datacenters, $/W.
    pub price_build_dc_large_per_w: f64,
    /// Threshold between the small and large build-price classes, kW of
    /// maximum datacenter power (capacity × maxPUE).
    pub dc_class_threshold_kw: f64,
    /// Installed solar plant price, $/W (`priceBuildSolar`).
    pub price_build_solar_per_w: f64,
    /// Installed wind plant price, $/W (`priceBuildWind`).
    pub price_build_wind_per_w: f64,
    /// Green plant amortization period (panels/turbines outlive the DC), years.
    pub plant_amortization_years: f64,
    /// Server price, $ (`priceServer`).
    pub price_server: f64,
    /// Server peak power, W (`serverPower`).
    pub server_power_w: f64,
    /// Switch price, $ (`priceSwitch`).
    pub price_switch: f64,
    /// Switch power, W (`switchPower`).
    pub switch_power_w: f64,
    /// Servers connected per switch (`serversSwitch`).
    pub servers_per_switch: f64,
    /// IT refresh period, years.
    pub it_lifetime_years: f64,
    /// Battery price, $/kWh (`priceBatt`).
    pub price_batt_per_kwh: f64,
    /// Battery replacement period, years.
    pub batt_lifetime_years: f64,
    /// Battery charge efficiency (`battEff`).
    pub batt_efficiency: f64,
    /// External bandwidth price, $/server/month (`priceBWServer`).
    pub price_bw_per_server_month: f64,
    /// Optical fiber layout cost, $/km (`costLineNet`).
    pub cost_line_net_per_km: f64,
    /// Power line layout cost, $/km (`costLinePow`).
    pub cost_line_pow_per_km: f64,
    /// Net metering revenue as a fraction of retail price (`creditNetMeter`).
    pub credit_net_meter: f64,
    /// Fraction of the nearest brown plant a DC may draw (Fig. 1's `F`).
    pub brown_cap_fraction: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        Self {
            interest_rate: 0.0325,
            dc_lifetime_years: 12.0,
            area_dc_m2_per_kw: 0.557,
            area_solar_m2_per_kw: 9.41,
            area_wind_m2_per_kw: 18.21,
            price_build_dc_small_per_w: 15.0,
            price_build_dc_large_per_w: 12.0,
            dc_class_threshold_kw: 10_000.0,
            price_build_solar_per_w: 5.25,
            price_build_wind_per_w: 2.1,
            plant_amortization_years: 24.0,
            price_server: 2_000.0,
            server_power_w: 275.0,
            price_switch: 20_000.0,
            switch_power_w: 480.0,
            servers_per_switch: 32.0,
            it_lifetime_years: 4.0,
            price_batt_per_kwh: 200.0,
            batt_lifetime_years: 4.0,
            batt_efficiency: 0.75,
            price_bw_per_server_month: 1.0,
            cost_line_net_per_km: 300_000.0,
            cost_line_pow_per_km: 310_000.0,
            credit_net_meter: 1.0,
            brown_cap_fraction: 0.25,
        }
    }
}

impl CostParams {
    /// Build price ($/W) for a datacenter whose maximum power is
    /// `max_power_kw` (capacity × maxPUE): the paper's size-class rule.
    pub fn price_build_dc_per_w(&self, max_power_kw: f64) -> f64 {
        if max_power_kw > self.dc_class_threshold_kw {
            self.price_build_dc_large_per_w
        } else {
            self.price_build_dc_small_per_w
        }
    }

    /// Effective IT power per server including its share of a switch, W
    /// (the divisor of the paper's `numServers`).
    pub fn power_per_server_w(&self) -> f64 {
        self.server_power_w + self.switch_power_w / self.servers_per_switch
    }

    /// Number of servers hosted by `capacity_kw` of compute power.
    pub fn num_servers(&self, capacity_kw: f64) -> f64 {
        capacity_kw * 1000.0 / self.power_per_server_w()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_class_rule() {
        let p = CostParams::default();
        assert_eq!(p.price_build_dc_per_w(9_999.0), 15.0);
        assert_eq!(p.price_build_dc_per_w(10_000.0), 15.0);
        assert_eq!(p.price_build_dc_per_w(10_001.0), 12.0);
    }

    #[test]
    fn power_per_server_matches_paper() {
        let p = CostParams::default();
        // 275 + 480/32 = 290 W.
        assert!((p.power_per_server_w() - 290.0).abs() < 1e-12);
    }

    #[test]
    fn server_count_at_25mw() {
        let p = CostParams::default();
        // The paper's 25 MW datacenter hosts ≈ 86 000 servers
        // (the 50 MW network hosts ~91 000 per its Fig. 7 text at 26.5 MW
        // total power; our 25 MW of *compute* gives 86 206).
        let n = p.num_servers(25_000.0);
        assert!((n - 86_206.9).abs() < 1.0, "servers {n}");
    }
}
