//! One test per rule against a seeded-violation fixture, plus the
//! allow-comment and clean-file cases, plus the meta-test that the real
//! workspace itself lints clean inside its allow budget.

use gclint::{find_workspace_root, lint_source, lint_workspace, ALLOW_BUDGET};
use std::path::Path;

/// Reads a fixture and lints it under a pretend workspace-relative path
/// (the path picks which rule scopes apply).
fn lint_fixture(
    fixture: &str,
    rel_path: &str,
) -> (Vec<gclint::FileDiagnostic>, Vec<gclint::Allow>) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let source = std::fs::read_to_string(dir.join(fixture))
        .unwrap_or_else(|e| panic!("fixture {fixture}: {e}"));
    lint_source(rel_path, &source)
}

fn rules_fired(diags: &[gclint::FileDiagnostic]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = diags.iter().map(|d| d.diag.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn hash_iter_fires() {
    let (diags, _) = lint_fixture("hash_iter.rs", "crates/api/src/fixture.rs");
    assert_eq!(rules_fired(&diags), ["hash-iter"], "{diags:?}");
    // The binding is report-scoped only: the same file in an unscoped
    // crate is legal.
    let (diags, _) = lint_fixture("hash_iter.rs", "crates/energy/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn wall_clock_fires() {
    let (diags, _) = lint_fixture("wall_clock.rs", "crates/nebula/src/fixture.rs");
    assert_eq!(rules_fired(&diags), ["wall-clock"], "{diags:?}");
    // The same source inside a wallclock.rs module is the sanctioned spot.
    let (diags, _) = lint_fixture("wall_clock.rs", "crates/nebula/src/wallclock.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unseeded_rng_fires() {
    let (diags, _) = lint_fixture("unseeded_rng.rs", "crates/core/src/fixture.rs");
    assert_eq!(rules_fired(&diags), ["unseeded-rng"], "{diags:?}");
}

#[test]
fn panic_path_fires() {
    let (diags, _) = lint_fixture("panic_path.rs", "crates/lp/src/fixture.rs");
    assert_eq!(rules_fired(&diags), ["panic-path"], "{diags:?}");
    assert_eq!(diags.len(), 3, "unwrap + expect + panic!: {diags:?}");
    // Outside the hot-path scope the same code is legal.
    let (diags, _) = lint_fixture("panic_path.rs", "crates/climate/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn index_literal_fires_but_not_on_macros() {
    let (diags, _) = lint_fixture("index_literal.rs", "crates/nebula/src/fixture.rs");
    assert_eq!(rules_fired(&diags), ["index-literal"], "{diags:?}");
    assert_eq!(diags.len(), 1, "vec![0] must not count: {diags:?}");
}

#[test]
fn float_eq_fires_but_exempts_exact_zero() {
    let (diags, _) = lint_fixture("float_eq.rs", "crates/lp/src/fixture.rs");
    assert_eq!(rules_fired(&diags), ["float-eq"], "{diags:?}");
    assert_eq!(diags.len(), 1, "`!= 0.0` must stay exempt: {diags:?}");
    // The rule is lp-scoped.
    let (diags, _) = lint_fixture("float_eq.rs", "crates/core/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unsafe_without_safety_comment_fires() {
    let (diags, _) = lint_fixture("unsafe_safety.rs", "crates/simkernel/src/fixture.rs");
    assert_eq!(rules_fired(&diags), ["unsafe-safety"], "{diags:?}");
}

#[test]
fn allow_comment_suppresses_and_is_counted() {
    let (diags, allows) = lint_fixture("allowed.rs", "crates/lp/src/fixture.rs");
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(allows.len(), 1);
    assert_eq!(allows[0].rule, "panic-path");
    assert!(allows[0].reason.contains("escape hatch"));
}

#[test]
fn clean_file_is_clean_everywhere() {
    for scope in [
        "crates/lp/src/fixture.rs",
        "crates/nebula/src/fixture.rs",
        "crates/api/src/fixture.rs",
    ] {
        let (diags, allows) = lint_fixture("clean.rs", scope);
        assert!(diags.is_empty(), "{scope}: {diags:?}");
        assert!(allows.is_empty(), "{scope}: {allows:?}");
    }
}

#[test]
fn workspace_is_clean_within_allow_budget() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above gclint");
    let report = lint_workspace(&root).expect("lint run");
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint violations:\n{}",
        report.render()
    );
    assert!(
        report.allows.len() < ALLOW_BUDGET,
        "allow budget exhausted:\n{}",
        report.render()
    );
    assert!(report.files_scanned > 50, "walker lost the workspace");
}
