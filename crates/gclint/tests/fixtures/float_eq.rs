// Seeded violation: bare float equality against a non-zero literal.
pub fn converged(step: f64, residual: f64) -> bool {
    // Exact-zero sparsity tests are exempt; this one is not.
    let exact_zero_ok = residual != 0.0;
    exact_zero_ok && step == 1.0
}
