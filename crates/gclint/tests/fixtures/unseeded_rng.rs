// Seeded violation: OS-entropy RNG breaks byte-identical replay.
pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0.0..1.0)
}
