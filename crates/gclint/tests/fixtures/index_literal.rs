// Seeded violation: indexing by integer literal panics on short input.
pub fn head(xs: &[f64]) -> f64 {
    let v = vec![0.0];
    xs[0] + v.len() as f64
}
