// Clean file: the violation carries an allow directive with a reason.
pub fn hot(xs: &[f64]) -> f64 {
    // gclint: allow(panic-path) — fixture demonstrating the escape hatch
    let first = xs.first().unwrap();
    *first
}
