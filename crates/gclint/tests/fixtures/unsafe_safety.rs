// Seeded violation: an unjustified unsafe block.
//
// (Padding so the header comment sits outside the three-line
// justification window the rule searches.)
//
pub fn reinterpret(x: &u64) -> &i64 {
    unsafe { &*(x as *const u64 as *const i64) }
}
