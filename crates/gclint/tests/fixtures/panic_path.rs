// Seeded violations: implicit panics in a hot path.
pub fn hot(xs: &[f64]) -> f64 {
    let first = xs.first().unwrap();
    let last = xs.last().expect("non-empty");
    if *first > *last {
        panic!("unsorted");
    }
    *first
}
