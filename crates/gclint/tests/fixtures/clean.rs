// Clean file: ordered maps, seeded randomness, typed errors, tolerances.
use std::collections::BTreeMap;

pub fn report(rows: &BTreeMap<String, f64>) -> Vec<String> {
    rows.iter().map(|(k, v)| format!("{k}: {v}")).collect()
}

pub fn head(xs: &[f64]) -> Option<f64> {
    xs.first().copied()
}

pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}
