// Seeded violation: iterating a HashMap in a determinism-scoped crate.
use std::collections::HashMap;

pub struct SweepState {
    rows: HashMap<String, f64>,
}

impl SweepState {
    pub fn report_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (name, value) in self.rows.iter() {
            out.push(format!("{name}: {value}"));
        }
        out
    }
}
