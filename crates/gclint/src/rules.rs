//! The rule catalog. Every rule pattern-matches on [`ScannedLine::code`](crate::lexer::ScannedLine::code)
//! (string/char literals blanked, comments stripped), so a `"panic!"`
//! inside a string never trips a rule and a rule name inside a comment
//! never self-flags.
//!
//! Rules are *scoped by path* — gclint is a repo-specific lint, not a
//! general one. The scopes mirror the determinism and panic-freedom
//! guarantees the test suite pins (byte-identical fault replay, golden
//! report bodies, warm/cold LP agreement):
//!
//! | rule | scope | forbids |
//! |------|-------|---------|
//! | `hash-iter` | `crates/{nebula,core,api}/src` | iterating a `HashMap`/`HashSet` binding |
//! | `wall-clock` | all crate `src/` except `wallclock.rs` | `Instant::now` / `SystemTime::now` |
//! | `unseeded-rng` | all crate `src/` | `thread_rng` / `from_entropy` / `rand::random` |
//! | `panic-path` | `crates/lp/src`, `crates/nebula/src`, `core/src/formulation.rs`, `api/src/{serve,store,router}.rs` | `.unwrap()` / `.expect(` / `panic!` / `todo!` / `unimplemented!` |
//! | `index-literal` | same as `panic-path` | postfix indexing by an integer literal |
//! | `float-eq` | `crates/lp/src` | `==`/`!=` against a non-zero float literal or NAN |
//! | `unsafe-safety` | everywhere scanned | `unsafe` without a `// SAFETY:` comment within 3 lines |
//!
//! Two deliberate carve-outs, documented here because they are policy:
//! `assert!`/`assert_eq!`/`unreachable!` are *explicit* invariant
//! assertions and stay legal in hot paths (the rules target panics hiding
//! inside ordinary-looking data access), and `== 0.0`/`!= 0.0` stays legal
//! in `crates/lp` because exact-zero tests are *structural* sparsity
//! checks (is this entry stored?), not magnitude comparisons — giving
//! them a tolerance would change the nonzero pattern and the numerics.

use crate::lexer::ScannedFile;

/// One finding: a rule fired at a line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier, e.g. `panic-path`.
    pub rule: &'static str,
    /// Human-readable explanation with the offending fragment.
    pub message: String,
}

/// `(id, summary)` for every line-scoped rule, in report order.
pub const RULES: &[(&str, &str)] = &[
    (
        "hash-iter",
        "no HashMap/HashSet iteration in report/simulation paths (order is nondeterministic)",
    ),
    (
        "wall-clock",
        "no Instant::now/SystemTime::now outside a wallclock.rs module",
    ),
    ("unseeded-rng", "no thread_rng/from_entropy/rand::random"),
    (
        "panic-path",
        "no unwrap()/expect()/panic! in LP, scheduler, and serve hot paths",
    ),
    (
        "index-literal",
        "no indexing by integer literal in LP, scheduler, and serve hot paths",
    ),
    (
        "float-eq",
        "no ==/!= against non-zero float literals in crates/lp (use a tolerance)",
    ),
    (
        "unsafe-safety",
        "every unsafe block needs a // SAFETY: comment within 3 lines",
    ),
];

fn det_scope(p: &str) -> bool {
    p.starts_with("crates/nebula/src/")
        || p.starts_with("crates/core/src/")
        || p.starts_with("crates/api/src/")
}

fn panic_scope(p: &str) -> bool {
    p.starts_with("crates/lp/src/")
        || p.starts_with("crates/nebula/src/")
        || p == "crates/core/src/formulation.rs"
        || p == "crates/api/src/serve.rs"
        || p == "crates/api/src/store.rs"
        || p == "crates/api/src/router.rs"
}

fn lp_scope(p: &str) -> bool {
    p.starts_with("crates/lp/src/")
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// True when `hay[pos..]` starts with `needle` as a whole word (the chars
/// on both sides are not identifier chars).
fn word_at(hay: &[char], pos: usize, needle: &str) -> bool {
    let nd: Vec<char> = needle.chars().collect();
    if pos + nd.len() > hay.len() || hay[pos..pos + nd.len()] != nd[..] {
        return false;
    }
    let before_ok = pos == 0 || !is_ident_char(hay[pos - 1]);
    let after_ok = pos + nd.len() == hay.len() || !is_ident_char(hay[pos + nd.len()]);
    before_ok && after_ok
}

fn find_word(line: &str, needle: &str) -> Option<usize> {
    let chars: Vec<char> = line.chars().collect();
    (0..chars.len()).find(|&i| word_at(&chars, i, needle))
}

/// Runs every line rule against `file` (path-scoped by `rel_path`, which
/// must be workspace-relative with `/` separators) and returns raw
/// findings; allow-directive filtering happens in the caller.
pub fn check_file(rel_path: &str, file: &ScannedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let hash_names = if det_scope(rel_path) {
        collect_hash_bindings(file)
    } else {
        Vec::new()
    };
    let wallclock_file = rel_path.ends_with("wallclock.rs");

    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.as_str();
        if line.in_test {
            continue;
        }

        if det_scope(rel_path) {
            check_hash_iter(code, &hash_names, lineno, &mut out);
        }
        if !wallclock_file {
            for pat in ["Instant::now", "SystemTime::now"] {
                if code.contains(pat) {
                    out.push(Diagnostic {
                        line: lineno,
                        rule: "wall-clock",
                        message: format!(
                            "`{pat}` outside a wallclock module — wall-clock reads poison \
                             deterministic replay; route through the crate's wallclock.rs"
                        ),
                    });
                }
            }
        }
        for pat in ["thread_rng", "from_entropy", "rand::random"] {
            if code.contains(pat) {
                out.push(Diagnostic {
                    line: lineno,
                    rule: "unseeded-rng",
                    message: format!(
                        "`{pat}` draws OS entropy — every RNG must be seeded (ChaCha8 + \
                         explicit seed) so runs replay byte-identically"
                    ),
                });
            }
        }
        if panic_scope(rel_path) {
            for pat in [".unwrap()", ".expect(", "panic!", "todo!", "unimplemented!"] {
                if let Some(p) = code.find(pat) {
                    // `should_panic` has no `!`; `.expect(` cannot match
                    // `.expect_err(`. Guard `panic!` et al. against being
                    // a suffix of a longer macro name.
                    let chars: Vec<char> = code.chars().collect();
                    let boundary = p == 0
                        || pat.starts_with('.')
                        || !is_ident_char(chars[p.min(chars.len()) - 1]);
                    if boundary {
                        out.push(Diagnostic {
                            line: lineno,
                            rule: "panic-path",
                            message: format!(
                                "`{pat}` in a hot path — return a typed error \
                                 (SolveError/NebulaError) or assert the invariant explicitly"
                            ),
                        });
                    }
                }
            }
            check_index_literal(code, lineno, &mut out);
        }
        if lp_scope(rel_path) {
            check_float_eq(code, lineno, &mut out);
        }
        if let Some(p) = find_word(code, "unsafe") {
            let _ = p;
            let nearby_safety =
                (idx.saturating_sub(3)..=idx).any(|k| file.lines[k].comment.contains("SAFETY:"));
            if !nearby_safety {
                out.push(Diagnostic {
                    line: lineno,
                    rule: "unsafe-safety",
                    message: "`unsafe` without a `// SAFETY:` comment within 3 lines above"
                        .to_string(),
                });
            }
        }
    }
    out
}

/// True if any line of the file contains the `unsafe` keyword (used by the
/// crate-level `forbid-unsafe` check).
pub fn has_unsafe(file: &ScannedFile) -> bool {
    file.lines
        .iter()
        .any(|l| find_word(&l.code, "unsafe").is_some())
}

/// Finds identifiers bound to `HashMap`/`HashSet` anywhere in the file:
/// `name: HashMap<…>` (fields, params, struct literals, typed lets) and
/// `name = HashMap::new()` (assignments). Path prefixes
/// (`std::collections::HashMap`) do not bind a name and are skipped.
fn collect_hash_bindings(file: &ScannedFile) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for line in &file.lines {
        let chars: Vec<char> = line.code.chars().collect();
        for i in 0..chars.len() {
            if !(word_at(&chars, i, "HashMap") || word_at(&chars, i, "HashSet")) {
                continue;
            }
            // Walk left through type syntax to the binding `:` or `=`.
            let mut j = i;
            let mut binder: Option<usize> = None;
            while j > 0 {
                j -= 1;
                let c = chars[j];
                if c == ':' {
                    if j > 0 && chars[j - 1] == ':' {
                        // `::` path separator — skip both and keep walking.
                        j -= 1;
                        continue;
                    }
                    binder = Some(j);
                    break;
                }
                if c == '=' {
                    // `=` (not `==`, `<=`, …) binds; comparison never has
                    // a bare HashMap type on its right.
                    binder = Some(j);
                    break;
                }
                if is_ident_char(c) || " <>(),&".contains(c) {
                    continue;
                }
                break;
            }
            let Some(b) = binder else { continue };
            // Identifier immediately before the binder.
            let mut e = b;
            while e > 0 && chars[e - 1] == ' ' {
                e -= 1;
            }
            let mut s = e;
            while s > 0 && is_ident_char(chars[s - 1]) {
                s -= 1;
            }
            if s < e {
                let name: String = chars[s..e].iter().collect();
                if name != "mut" && !names.contains(&name) {
                    names.push(name);
                }
            }
        }
    }
    names
}

const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
    ".retain(",
];

fn check_hash_iter(code: &str, names: &[String], lineno: usize, out: &mut Vec<Diagnostic>) {
    let chars: Vec<char> = code.chars().collect();
    for name in names {
        // `name.iter()` and friends, with a word boundary before `name`.
        for i in 0..chars.len() {
            if !word_at(&chars, i, name) {
                continue;
            }
            let after: String = chars[i + name.chars().count()..].iter().collect();
            if let Some(m) = ITER_METHODS.iter().find(|m| after.starts_with(*m)) {
                out.push(Diagnostic {
                    line: lineno,
                    rule: "hash-iter",
                    message: format!(
                        "`{name}{m}` iterates a HashMap/HashSet — order varies run to run; \
                         use BTreeMap/BTreeSet or collect-and-sort before anything ordered"
                    ),
                });
            }
        }
        // `for x in name` / `for x in &name` / `for x in name.…` — only
        // direct loops over the container itself.
        if let Some(inpos) = find_word(code, "in") {
            let rest: String = chars[inpos + 2..].iter().collect();
            let rest = rest.trim_start().trim_start_matches('&');
            let rest = rest.trim_start_matches("mut ").trim_start();
            let matches_name = rest.starts_with(name.as_str())
                && rest[name.len()..]
                    .chars()
                    .next()
                    .map(|c| !is_ident_char(c) && c != '(')
                    .unwrap_or(true);
            if code.trim_start().starts_with("for ") && matches_name {
                out.push(Diagnostic {
                    line: lineno,
                    rule: "hash-iter",
                    message: format!(
                        "`for … in {name}` iterates a HashMap/HashSet — order varies run \
                         to run; use BTreeMap/BTreeSet or sort first"
                    ),
                });
            }
        }
    }
}

fn check_index_literal(code: &str, lineno: usize, out: &mut Vec<Diagnostic>) {
    let chars: Vec<char> = code.chars().collect();
    for i in 0..chars.len() {
        if chars[i] != '[' {
            continue;
        }
        // Postfix position: previous non-space char ends an expression.
        let mut p = i;
        let prev = loop {
            if p == 0 {
                break None;
            }
            p -= 1;
            if chars[p] != ' ' {
                break Some(chars[p]);
            }
        };
        let postfix = matches!(prev, Some(c) if is_ident_char(c) || c == ')' || c == ']');
        if !postfix {
            continue;
        }
        // `vec![0]` and other macros are construction, not indexing.
        if prev == Some('!') {
            continue;
        }
        let close = match chars[i + 1..].iter().position(|&c| c == ']') {
            Some(k) => i + 1 + k,
            None => continue,
        };
        let inner: String = chars[i + 1..close].iter().collect();
        let inner = inner.trim();
        if !inner.is_empty()
            && inner.chars().all(|c| c.is_ascii_digit() || c == '_')
            && inner.chars().any(|c| c.is_ascii_digit())
        {
            out.push(Diagnostic {
                line: lineno,
                rule: "index-literal",
                message: format!(
                    "indexing by literal `[{inner}]` panics when the container is shorter — \
                     use .first()/.get({inner}) or restructure"
                ),
            });
        }
    }
}

/// Heuristic float-literal scanner: returns true if `s` contains a float
/// literal (digits with a `.` or exponent, or an `f64`/`f32` suffix) that
/// is not exactly zero, or references `NAN`.
fn has_nonzero_float_literal(s: &str) -> bool {
    if s.contains("NAN") {
        return true;
    }
    let chars: Vec<char> = s.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i].is_ascii_digit() && (i == 0 || !is_ident_char(chars[i - 1])) {
            let start = i;
            let mut saw_dot = false;
            let mut saw_exp = false;
            while i < chars.len() {
                let c = chars[i];
                if c.is_ascii_digit() || c == '_' {
                    i += 1;
                } else if c == '.' && !saw_dot && !saw_exp {
                    // `1..n` ranges and method calls like `0.max(x)` are
                    // not float literals.
                    match chars.get(i + 1) {
                        Some(&n2) if n2.is_ascii_digit() => {
                            saw_dot = true;
                            i += 1;
                        }
                        Some(&n2) if n2 == '.' || is_ident_char(n2) => break,
                        _ => {
                            saw_dot = true;
                            i += 1;
                        }
                    }
                } else if (c == 'e' || c == 'E') && !saw_exp {
                    let k = i + 1;
                    let k2 = if matches!(chars.get(k), Some('+') | Some('-')) {
                        k + 1
                    } else {
                        k
                    };
                    if matches!(chars.get(k2), Some(d) if d.is_ascii_digit()) {
                        saw_exp = true;
                        i = k2;
                    } else {
                        break;
                    }
                } else {
                    break;
                }
            }
            let lit: String = chars[start..i].iter().collect();
            let suffixed = matches!(
                chars.get(i..i + 3).map(|w| w.iter().collect::<String>()),
                Some(ref s3) if s3 == "f64" || s3 == "f32"
            );
            if saw_dot || saw_exp || suffixed {
                let nonzero = lit.chars().any(|c| c.is_ascii_digit() && c != '0')
                    || (saw_exp
                        && lit
                            .split(['e', 'E'])
                            .next()
                            .is_some_and(|m| m.chars().any(|c| c.is_ascii_digit() && c != '0')));
                if nonzero {
                    return true;
                }
            }
        } else {
            i += 1;
        }
    }
    false
}

fn check_float_eq(code: &str, lineno: usize, out: &mut Vec<Diagnostic>) {
    let chars: Vec<char> = code.chars().collect();
    let n = chars.len();
    for i in 0..n.saturating_sub(1) {
        let two: String = chars[i..i + 2].iter().collect();
        let is_eq = two == "==" && (i == 0 || !"=!<>".contains(chars[i - 1]));
        let is_ne = two == "!=";
        if !(is_eq || is_ne) || matches!(chars.get(i + 2), Some('=')) {
            continue;
        }
        let delim = |c: char| ",;{}()[]".contains(c) || c == '&' || c == '|';
        let lstart = (0..i).rev().find(|&k| delim(chars[k])).map_or(0, |k| k + 1);
        let rend = (i + 2..n).find(|&k| delim(chars[k])).unwrap_or(n);
        let left: String = chars[lstart..i].iter().collect();
        let right: String = chars[i + 2..rend].iter().collect();
        if has_nonzero_float_literal(&left) || has_nonzero_float_literal(&right) {
            out.push(Diagnostic {
                line: lineno,
                rule: "float-eq",
                message: format!(
                    "float equality `{}{two}{}` — magnitude comparisons need a tolerance \
                     (cf. validate::check_feasible); exact `== 0.0` sparsity tests are exempt",
                    left.trim(),
                    right.trim()
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn diag(path: &str, src: &str) -> Vec<Diagnostic> {
        check_file(path, &scan(src))
    }

    #[test]
    fn hash_binding_and_iteration() {
        let src = "struct S { map: HashMap<K, V> }\nfn f(s: &S) { for k in s.map.keys() {} }\n";
        let d = diag("crates/core/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == "hash-iter"), "{d:?}");
    }

    #[test]
    fn hash_get_is_fine() {
        let src = "struct S { map: HashMap<K, V> }\nfn f(s: &S) { s.map.get(&k); }\n";
        assert!(diag("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn float_eq_zero_exempt() {
        let d = diag("crates/lp/src/x.rs", "fn f(v: f64) -> bool { v != 0.0 }\n");
        assert!(d.is_empty(), "{d:?}");
        let d = diag("crates/lp/src/x.rs", "fn f(v: f64) -> bool { v == 1.5 }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "float-eq");
    }

    #[test]
    fn index_literal_but_not_macros() {
        let d = diag("crates/lp/src/x.rs", "let a = vec![0]; let b = xs[0];\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "index-literal");
    }

    #[test]
    fn unwrap_or_not_flagged() {
        let d = diag(
            "crates/lp/src/x.rs",
            "let a = m.get(k).unwrap_or_default(); let b = o.expect_err(\"x\");\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn serve_is_in_the_panic_scope() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
        let d = diag("crates/api/src/serve.rs", src);
        assert!(d.iter().any(|d| d.rule == "panic-path"), "{d:?}");
        let d = diag("crates/api/src/store.rs", src);
        assert!(d.iter().any(|d| d.rule == "panic-path"), "{d:?}");
        let d = diag("crates/api/src/router.rs", src);
        assert!(d.iter().any(|d| d.rule == "panic-path"), "{d:?}");
        // ...but the rest of the api crate is not.
        assert!(diag("crates/api/src/engine.rs", src).is_empty());
    }
}
