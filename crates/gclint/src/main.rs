//! CLI for [`gclint`]: `cargo run -p gclint [ROOT]`.
//!
//! With no argument the workspace root is located by walking up from the
//! current directory. Exits 0 on a clean workspace, 1 on any violation or
//! an exhausted allow budget, 2 on usage/IO errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: gclint [ROOT]\n\nRules:");
        for (id, summary) in gclint::RULES {
            println!("  {id:<14} {summary}");
        }
        println!(
            "\nEscape hatch (counts toward a budget of {}):\n  \
             // gclint: allow(<rule>) — <reason>",
            gclint::ALLOW_BUDGET
        );
        return ExitCode::SUCCESS;
    }

    let root = match args.first() {
        Some(p) => PathBuf::from(p),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match gclint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("gclint: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    match gclint::lint_workspace(&root) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("gclint: {e}");
            ExitCode::from(2)
        }
    }
}
