//! A minimal Rust lexer for lint purposes: it does not tokenize, it
//! *classifies* — every byte of a source file is attributed to code,
//! string/char literal, or comment, line by line, so the rule engine can
//! pattern-match on code with literals blanked out and read comments for
//! `gclint: allow(...)` directives and `// SAFETY:` justifications.
//!
//! Handled: line comments, nested block comments, doc comments, string
//! literals with escapes, raw strings (`r"…"`, `r#"…"#`, any `#` count),
//! byte strings, char literals, and the char-literal/lifetime ambiguity
//! (`'a'` vs `<'a>`). `#[cfg(test)]` items (mods or fns) are detected by
//! brace matching and their lines flagged so hot-path rules can skip test
//! code.

/// One source line, split into its code text and its comment text.
///
/// `code` has the same length as the original line with every string and
/// char literal's interior replaced by spaces and every comment character
/// replaced by a space, so column positions still line up with the file.
#[derive(Debug, Clone)]
pub struct ScannedLine {
    /// Code text with literals blanked and comments removed.
    pub code: String,
    /// Concatenated comment text that appeared on this line.
    pub comment: String,
    /// True if this line sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A whole file run through the classifier.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Lines in file order; line numbers are `index + 1`.
    pub lines: Vec<ScannedLine>,
}

#[derive(PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32> },
    Char,
}

/// Classifies `source` into per-line code and comment streams.
pub fn scan(source: &str) -> ScannedFile {
    let mut lines: Vec<ScannedLine> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;

    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let n = chars.len();

    macro_rules! end_line {
        () => {{
            lines.push(ScannedLine {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
        }};
    }

    while i < n {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            end_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                // Comment openers.
                if c == '/' && i + 1 < n && chars[i + 1] == '/' {
                    state = State::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && i + 1 < n && chars[i + 1] == '*' {
                    state = State::BlockComment(1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                // Raw strings: r"…", r#"…"#, br"…", br#"…"# — but not raw
                // identifiers like r#fn.
                if c == 'r' || (c == 'b' && i + 1 < n && chars[i + 1] == 'r') {
                    let start = if c == 'b' { i + 2 } else { i + 1 };
                    let mut j = start;
                    while j < n && chars[j] == '#' {
                        j += 1;
                    }
                    if j < n && chars[j] == '"' {
                        for _ in i..start {
                            code.push('r');
                        }
                        let hashes = (j - start) as u32;
                        for _ in start..j {
                            code.push('#');
                        }
                        code.push('"');
                        state = State::Str {
                            raw_hashes: Some(hashes),
                        };
                        i = j + 1;
                        continue;
                    }
                }
                // Ordinary and byte strings.
                if c == '"' || (c == 'b' && i + 1 < n && chars[i + 1] == '"') {
                    if c == 'b' {
                        code.push('b');
                        i += 1;
                    }
                    code.push('"');
                    state = State::Str { raw_hashes: None };
                    i += 1;
                    continue;
                }
                // Char literal vs lifetime: 'x' or '\…' is a literal,
                // anything else ('a in <'a>, 'static) is a lifetime.
                if c == '\'' || (c == 'b' && i + 1 < n && chars[i + 1] == '\'') {
                    let q = if c == 'b' { i + 1 } else { i };
                    let is_literal =
                        q + 1 < n && (chars[q + 1] == '\\' || (q + 2 < n && chars[q + 2] == '\''));
                    if is_literal {
                        if c == 'b' {
                            code.push('b');
                        }
                        code.push('\'');
                        state = State::Char;
                        i = q + 1;
                        continue;
                    }
                }
                code.push(c);
                i += 1;
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && i + 1 < n && chars[i + 1] == '/' {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str { raw_hashes } => match raw_hashes {
                None => {
                    if c == '\\' && i + 1 < n && chars[i + 1] != '\n' {
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        state = State::Code;
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Some(hashes) => {
                    let h = hashes as usize;
                    if c == '"' && i + h < n && chars[i + 1..].iter().take(h).all(|&x| x == '#') {
                        code.push('"');
                        for _ in 0..h {
                            code.push('#');
                        }
                        state = State::Code;
                        i += 1 + h;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
            },
            State::Char => {
                if c == '\\' && i + 1 < n && chars[i + 1] != '\n' {
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if c == '\'' {
                    code.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    end_line!();

    let mut file = ScannedFile { lines };
    mark_test_regions(&mut file);
    file
}

/// Marks every line belonging to a `#[cfg(test)]` item (the attribute line
/// through the item's closing brace) so rules can skip test code.
fn mark_test_regions(file: &mut ScannedFile) {
    #[derive(Clone, Copy, PartialEq)]
    enum Arm {
        Idle,
        /// Saw `cfg(test)`; waiting for the item's opening brace.
        Armed {
            attr_line: usize,
            depth: i32,
        },
        /// Inside the braces of a test item.
        Skipping {
            from_line: usize,
            depth: i32,
        },
    }
    let mut arm = Arm::Idle;
    let mut depth: i32 = 0;
    let mut regions: Vec<(usize, usize)> = Vec::new();

    for li in 0..file.lines.len() {
        let line = file.lines[li].code.clone();
        if arm == Arm::Idle && line.contains("cfg(test)") {
            arm = Arm::Armed {
                attr_line: li,
                depth,
            };
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if let Arm::Armed { attr_line, .. } = arm {
                        arm = Arm::Skipping {
                            from_line: attr_line,
                            depth,
                        };
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Arm::Skipping {
                        from_line,
                        depth: d,
                    } = arm
                    {
                        if depth == d {
                            regions.push((from_line, li));
                            arm = Arm::Idle;
                        }
                    }
                }
                ';' => {
                    // `#[cfg(test)] use …;` — attribute applied to a
                    // braceless item; disarm.
                    if let Arm::Armed { depth: d, .. } = arm {
                        if depth == d {
                            arm = Arm::Idle;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    if let Arm::Skipping { from_line, .. } = arm {
        regions.push((from_line, file.lines.len().saturating_sub(1)));
    }
    for (a, b) in regions {
        for line in &mut file.lines[a..=b] {
            line.in_test = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = scan("let x = \"HashMap.iter()\"; // Instant::now\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.contains("Instant::now"));
        assert!(!f.lines[0].code.contains("Instant"));
    }

    #[test]
    fn raw_strings_and_chars() {
        let f = scan("let s = r#\"panic!(\"x\")\"#; let c = 'a'; let l: &'static str = \"\";\n");
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(f.lines[0].code.contains("'static"), "{}", f.lines[0].code);
    }

    #[test]
    fn nested_block_comments() {
        let f = scan("a /* outer /* inner */ still */ b\n");
        assert!(f.lines[0].code.contains('a') && f.lines[0].code.contains('b'));
        assert!(!f.lines[0].code.contains("inner"));
    }

    #[test]
    fn cfg_test_region_marked() {
        let src = "fn hot() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn hot2() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test && f.lines[2].in_test && f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }
}
