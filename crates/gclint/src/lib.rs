//! `gclint` — repo-specific static analysis for the greencloud workspace.
//!
//! The repo's headline guarantees (byte-identical fault replay under a
//! pinned `GC_FAULT_SEED`, golden-file-pinned `greencloud-report/1`
//! bodies, warm/cold LP agreement) hold only as long as nobody iterates a
//! `HashMap` into a report, reads the wall clock into a compared field, or
//! hides a panic in an LP hot path. This crate machine-checks those
//! invariants with a hand-rolled lexer + rule engine ([`rules::RULES`]) in
//! the workspace's no-external-deps style — no `syn`, no `regex`, just
//! [`lexer::scan`] classifying every byte and path-scoped pattern rules.
//!
//! Run it as `cargo run -p gclint` (or `repro lint`); it walks
//! `src/` and `crates/*/src/`, prints `file:line: [rule] message`
//! diagnostics, and exits nonzero on any finding.
//!
//! # Escape hatch
//!
//! A violation that is genuinely intended carries an inline directive on
//! its own line or the line above:
//!
//! ```text
//! // gclint: allow(panic-path) — opt-in GC_LP_PARANOID crash-on-drift mode
//! ```
//!
//! The reason after the dash is mandatory, unused allows are themselves
//! violations, and the total allow count across the workspace is capped at
//! [`ALLOW_BUDGET`] so the hatch cannot quietly become a door.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

pub use rules::{Diagnostic, RULES};

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Workspace-wide cap on `gclint: allow(...)` directives. Reaching the cap
/// is an error: either fix the code or argue (in the PR) for a higher one.
pub const ALLOW_BUDGET: usize = 10;

/// A used `gclint: allow(rule)` directive and its mandatory reason.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the directive.
    pub line: usize,
    /// Rule the directive suppresses.
    pub rule: String,
    /// Justification text after the rule id.
    pub reason: String,
}

/// A finding bound to a file.
#[derive(Debug, Clone)]
pub struct FileDiagnostic {
    /// Workspace-relative file path.
    pub file: String,
    /// The underlying rule finding.
    pub diag: Diagnostic,
}

impl fmt::Display for FileDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.diag.line, self.diag.rule, self.diag.message
        )
    }
}

/// Everything one lint run produced.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations that survived allow-filtering (nonzero exit if any).
    pub diagnostics: Vec<FileDiagnostic>,
    /// Allow directives that suppressed a finding.
    pub allows: Vec<Allow>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when the workspace is clean and the allow budget holds.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.allows.len() < ALLOW_BUDGET
    }

    /// Renders the human-readable report (diagnostics, allow inventory,
    /// summary line) exactly as the CLI prints it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n"));
        }
        if !self.allows.is_empty() {
            out.push_str(&format!(
                "\n{} inline allow{} (budget {}):\n",
                self.allows.len(),
                if self.allows.len() == 1 { "" } else { "s" },
                ALLOW_BUDGET
            ));
            for a in &self.allows {
                out.push_str(&format!(
                    "  {}:{}: allow({}) — {}\n",
                    a.file, a.line, a.rule, a.reason
                ));
            }
        }
        if self.allows.len() >= ALLOW_BUDGET {
            out.push_str(&format!(
                "error: {} allows meets or exceeds the budget of {}\n",
                self.allows.len(),
                ALLOW_BUDGET
            ));
        }
        out.push_str(&format!(
            "gclint: {} file{} scanned, {} violation{}, {} allow{}\n",
            self.files_scanned,
            if self.files_scanned == 1 { "" } else { "s" },
            self.diagnostics.len(),
            if self.diagnostics.len() == 1 { "" } else { "s" },
            self.allows.len(),
            if self.allows.len() == 1 { "" } else { "s" },
        ));
        out
    }
}

/// One parsed allow directive before matching against findings.
#[derive(Debug, Clone)]
struct AllowDirective {
    line: usize,
    rule: String,
    reason: String,
    used: bool,
}

fn parse_allows(file: &lexer::ScannedFile) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        // Only plain `//` comments are directives; doc comments (whose
        // text starts with the third `/` or a `!`) merely *talk about*
        // directives.
        let c = line.comment.trim_start();
        if c.starts_with('/') || c.starts_with('!') {
            continue;
        }
        let Some(p) = c.find("gclint: allow(") else {
            continue;
        };
        if c[..p].contains(|ch: char| ch.is_ascii_alphanumeric()) {
            continue;
        }
        let rest = &c[p + "gclint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':'])
            .trim()
            .to_string();
        out.push(AllowDirective {
            line: idx + 1,
            rule,
            reason,
            used: false,
        });
    }
    out
}

/// Lints one already-read source file. `rel_path` scopes the rules (see
/// [`rules::check_file`]); allow directives in the file are applied, and
/// directive misuse (missing reason, suppressing nothing) is reported as a
/// violation in its own right.
pub fn lint_source(rel_path: &str, source: &str) -> (Vec<FileDiagnostic>, Vec<Allow>) {
    let scanned = lexer::scan(source);
    let raw = rules::check_file(rel_path, &scanned);
    let mut allows = parse_allows(&scanned);
    let mut diags: Vec<FileDiagnostic> = Vec::new();

    for d in raw {
        let suppressed = allows
            .iter_mut()
            .find(|a| a.rule == d.rule && (a.line == d.line || a.line + 1 == d.line));
        match suppressed {
            Some(a) => a.used = true,
            None => diags.push(FileDiagnostic {
                file: rel_path.to_string(),
                diag: d,
            }),
        }
    }

    let mut used = Vec::new();
    for a in allows {
        if !a.used {
            diags.push(FileDiagnostic {
                file: rel_path.to_string(),
                diag: Diagnostic {
                    line: a.line,
                    rule: "unused-allow",
                    message: format!(
                        "allow({}) suppresses nothing — remove it or move it next to the \
                         violation",
                        a.rule
                    ),
                },
            });
        } else if a.reason.is_empty() {
            diags.push(FileDiagnostic {
                file: rel_path.to_string(),
                diag: Diagnostic {
                    line: a.line,
                    rule: "allow-missing-reason",
                    message: format!(
                        "allow({}) carries no reason — write `// gclint: allow({}) — why`",
                        a.rule, a.rule
                    ),
                },
            });
        } else {
            used.push(Allow {
                file: rel_path.to_string(),
                line: a.line,
                rule: a.rule,
                reason: a.reason,
            });
        }
    }
    (diags, used)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`: `src/` plus every
/// `crates/*/src/` (vendored stubs under `vendor/` are third-party API
/// shims and out of scope). Also enforces the crate-level rule that a
/// crate containing no `unsafe` must carry `#![forbid(unsafe_code)]` in
/// its `lib.rs`.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();

    let mut crate_dirs: Vec<PathBuf> = vec![root.to_path_buf()];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut subdirs: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        subdirs.sort();
        crate_dirs.extend(subdirs);
    }

    for crate_dir in &crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        let mut crate_has_unsafe = false;
        let mut lib_rs: Option<(String, String)> = None;
        for path in &files {
            let source = fs::read_to_string(path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(path)
                .to_string_lossy()
                .replace('\\', "/");
            let scanned = lexer::scan(&source);
            crate_has_unsafe |= rules::has_unsafe(&scanned);
            if path.file_name().is_some_and(|f| f == "lib.rs") {
                lib_rs = Some((rel.clone(), source.clone()));
            }
            let (diags, allows) = lint_source(&rel, &source);
            report.diagnostics.extend(diags);
            report.allows.extend(allows);
            report.files_scanned += 1;
        }
        if let Some((rel, source)) = lib_rs {
            if !crate_has_unsafe && !source.contains("#![forbid(unsafe_code)]") {
                report.diagnostics.push(FileDiagnostic {
                    file: rel,
                    diag: Diagnostic {
                        line: 1,
                        rule: "forbid-unsafe",
                        message: "crate has no unsafe code — add #![forbid(unsafe_code)] so \
                                  it stays that way"
                            .to_string(),
                    },
                });
            }
        }
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.diag.line).cmp(&(&b.file, b.diag.line)));
    Ok(report)
}

/// Walks upward from `start` to the workspace root (the first directory
/// whose `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_suppresses_and_is_counted() {
        let src = "fn f() {\n    // gclint: allow(panic-path) — structurally impossible\n    x.unwrap();\n}\n";
        let (diags, allows) = lint_source("crates/lp/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].reason, "structurally impossible");
    }

    #[test]
    fn allow_without_reason_is_a_violation() {
        let src = "fn f() {\n    x.unwrap(); // gclint: allow(panic-path)\n}\n";
        let (diags, _) = lint_source("crates/lp/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].diag.rule, "allow-missing-reason");
    }

    #[test]
    fn unused_allow_is_a_violation() {
        let src = "// gclint: allow(panic-path) — nothing here\nfn f() {}\n";
        let (diags, _) = lint_source("crates/lp/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].diag.rule, "unused-allow");
    }
}
