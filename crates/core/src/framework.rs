//! The provider-facing problem statement.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which renewable technologies the provider may build on-site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TechMix {
    /// No on-site plants at all (the paper's "Brown" baseline).
    BrownOnly,
    /// Wind farms only.
    WindOnly,
    /// Solar farms only.
    SolarOnly,
    /// Either or both per site (the paper's "Wind and/or solar").
    Both,
}

impl TechMix {
    /// May this mix build solar plants?
    pub fn allows_solar(self) -> bool {
        matches!(self, TechMix::SolarOnly | TechMix::Both)
    }

    /// May this mix build wind plants?
    pub fn allows_wind(self) -> bool {
        matches!(self, TechMix::WindOnly | TechMix::Both)
    }
}

/// How surplus green energy may be stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageMode {
    /// Bank energy in the grid with an annual true-up (the paper's default).
    NetMetering,
    /// On-site batteries (75% charge efficiency, day-cyclic dispatch).
    Batteries,
    /// No storage: green energy must be used the hour it is produced.
    None,
}

/// The construction-cost size class of a datacenter (Table I:
/// `priceBuildDC(c)` is $15/W below 10 MW of maximum power, $12/W above).
///
/// The heuristic solver fixes the class per candidate — exactly the paper's
/// "specify whether each datacenter should be small or large" device that
/// keeps the subproblem linear.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SizeClass {
    /// Maximum power ≤ 10 MW, $15/W.
    Small,
    /// Maximum power > 10 MW, $12/W.
    Large,
}

/// Everything the cloud provider specifies when siting a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementInput {
    /// Minimum total compute power the network must always provide, MW
    /// (the paper's `totalCapacity`).
    pub total_capacity_mw: f64,
    /// Minimum fraction of consumed energy from on-site green sources
    /// (`minGreen`), in `[0, 1]`.
    pub min_green_fraction: f64,
    /// Minimum availability of the network (`minAvailability`).
    pub min_availability: f64,
    /// Availability of each individual datacenter (tier-dependent; the
    /// paper uses 99.827% for near-Tier-III).
    pub dc_availability: f64,
    /// Allowed renewable technologies.
    pub tech: TechMix,
    /// Green-energy storage mode.
    pub storage: StorageMode,
    /// Fraction of an epoch during which migrated load consumes energy at
    /// both ends (Fig. 13's sweep variable; 1.0 = the paper's conservative
    /// default).
    pub migration_fraction: f64,
    /// Net-metering revenue as a fraction of retail price
    /// (`creditNetMeter`).
    pub credit_net_meter: f64,
}

impl Default for PlacementInput {
    /// The paper's base case: 50 MW, 50% green, five-nines network
    /// availability out of 99.827%-available datacenters, wind and/or
    /// solar, net metering, full migration overhead.
    fn default() -> Self {
        Self {
            total_capacity_mw: 50.0,
            min_green_fraction: 0.5,
            min_availability: 0.99999,
            dc_availability: 0.99827,
            tech: TechMix::Both,
            storage: StorageMode::NetMetering,
            migration_fraction: 1.0,
            credit_net_meter: 1.0,
        }
    }
}

/// A structured reason why a [`PlacementInput`] is rejected.
///
/// Replaces the former stringly-typed validation: every variant names the
/// offending field and carries the offending value, so callers (and the
/// `greencloud-api` error hierarchy) can match on the failure instead of
/// parsing a message.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ValidationError {
    /// `total_capacity_mw` must be positive and finite.
    NonPositiveCapacity(f64),
    /// `min_green_fraction` must be in `[0, 1]`.
    GreenFractionOutOfRange(f64),
    /// `min_availability` must be in `[0, 1)`.
    AvailabilityOutOfRange(f64),
    /// `dc_availability` must be in `[0, 1)`.
    DcAvailabilityOutOfRange(f64),
    /// `migration_fraction` must be in `[0, 1]`.
    MigrationFractionOutOfRange(f64),
    /// `credit_net_meter` must be in `[0, 1]`.
    NetMeterCreditOutOfRange(f64),
    /// A positive green requirement is incompatible with
    /// [`TechMix::BrownOnly`].
    GreenWithBrownOnly {
        /// The requested `min_green_fraction`.
        min_green_fraction: f64,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NonPositiveCapacity(v) => {
                write!(f, "total capacity must be positive and finite, got {v}")
            }
            ValidationError::GreenFractionOutOfRange(v) => {
                write!(f, "green fraction must be in [0,1], got {v}")
            }
            ValidationError::AvailabilityOutOfRange(v) => {
                write!(f, "min availability must be in [0,1), got {v}")
            }
            ValidationError::DcAvailabilityOutOfRange(v) => {
                write!(f, "dc availability must be in [0,1), got {v}")
            }
            ValidationError::MigrationFractionOutOfRange(v) => {
                write!(f, "migration fraction must be in [0,1], got {v}")
            }
            ValidationError::NetMeterCreditOutOfRange(v) => {
                write!(f, "net meter credit must be in [0,1], got {v}")
            }
            ValidationError::GreenWithBrownOnly { min_green_fraction } => write!(
                f,
                "cannot require {:.0}% green energy with TechMix::BrownOnly",
                min_green_fraction * 100.0
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

impl PlacementInput {
    /// Validates ranges; returns the first problem found.
    ///
    /// # Errors
    ///
    /// The [`ValidationError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), ValidationError> {
        if !self.total_capacity_mw.is_finite() || self.total_capacity_mw <= 0.0 {
            return Err(ValidationError::NonPositiveCapacity(self.total_capacity_mw));
        }
        if !(0.0..=1.0).contains(&self.min_green_fraction) {
            return Err(ValidationError::GreenFractionOutOfRange(
                self.min_green_fraction,
            ));
        }
        if !(0.0..1.0).contains(&self.min_availability) {
            return Err(ValidationError::AvailabilityOutOfRange(
                self.min_availability,
            ));
        }
        if !(0.0..1.0).contains(&self.dc_availability) {
            return Err(ValidationError::DcAvailabilityOutOfRange(
                self.dc_availability,
            ));
        }
        if !(0.0..=1.0).contains(&self.migration_fraction) {
            return Err(ValidationError::MigrationFractionOutOfRange(
                self.migration_fraction,
            ));
        }
        if !(0.0..=1.0).contains(&self.credit_net_meter) {
            return Err(ValidationError::NetMeterCreditOutOfRange(
                self.credit_net_meter,
            ));
        }
        if self.min_green_fraction > 0.0 && self.tech == TechMix::BrownOnly {
            return Err(ValidationError::GreenWithBrownOnly {
                min_green_fraction: self.min_green_fraction,
            });
        }
        Ok(())
    }

    /// Convenience: the same input with a different green requirement,
    /// switching to `BrownOnly` at 0% (the paper's sweep convention).
    pub fn with_green(&self, fraction: f64, tech: TechMix) -> Self {
        Self {
            min_green_fraction: fraction,
            tech: if fraction == 0.0 {
                TechMix::BrownOnly
            } else {
                tech
            },
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_base_case() {
        let input = PlacementInput::default();
        assert!(input.validate().is_ok());
        assert_eq!(input.total_capacity_mw, 50.0);
        assert_eq!(input.min_green_fraction, 0.5);
    }

    #[test]
    fn tech_mix_permissions() {
        assert!(!TechMix::BrownOnly.allows_solar());
        assert!(!TechMix::BrownOnly.allows_wind());
        assert!(TechMix::WindOnly.allows_wind() && !TechMix::WindOnly.allows_solar());
        assert!(TechMix::SolarOnly.allows_solar() && !TechMix::SolarOnly.allows_wind());
        assert!(TechMix::Both.allows_solar() && TechMix::Both.allows_wind());
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let bad = PlacementInput {
            tech: TechMix::BrownOnly,
            ..PlacementInput::default()
        };
        assert!(bad.validate().is_err());

        let bad = PlacementInput {
            min_green_fraction: 1.5,
            ..PlacementInput::default()
        };
        assert!(bad.validate().is_err());

        let bad = PlacementInput {
            total_capacity_mw: 0.0,
            ..PlacementInput::default()
        };
        assert!(bad.validate().is_err());

        let bad = PlacementInput {
            migration_fraction: -0.1,
            ..PlacementInput::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn with_green_switches_to_brown_at_zero() {
        let base = PlacementInput::default();
        let g0 = base.with_green(0.0, TechMix::WindOnly);
        assert_eq!(g0.tech, TechMix::BrownOnly);
        assert!(g0.validate().is_ok());
        let g75 = base.with_green(0.75, TechMix::WindOnly);
        assert_eq!(g75.tech, TechMix::WindOnly);
        assert_eq!(g75.min_green_fraction, 0.75);
    }
}
