//! Parallel simulated-annealing search over sitings (paper §II-C, step 3).
//!
//! A *siting* is a set of `(candidate index, size class)` pairs. Each siting
//! is evaluated by compiling and solving its LP ([`crate::formulation`]);
//! the SA explores neighbours by adding, removing, swapping, and resizing
//! datacenters. Multiple chains run on separate threads with different
//! move-weight profiles and periodically synchronize on the shared
//! incumbent, as the paper describes. Evaluations are memoized: distinct
//! chains frequently propose the same siting.

use crate::availability::min_datacenters;
use crate::candidate::CandidateSite;
use crate::formulation::{build_network_lp, NetworkDispatch};
use crate::framework::{PlacementInput, SizeClass};
use greencloud_cost::params::CostParams;
use greencloud_lp::{SimplexOptions, SolveError};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// One siting: sorted, de-duplicated `(candidate index, size class)` pairs.
pub type Siting = Vec<(usize, SizeClass)>;

/// Tuning of the simulated-annealing search.
#[derive(Debug, Clone)]
pub struct AnnealOptions {
    /// Iterations per chain.
    pub iterations: usize,
    /// Number of parallel chains.
    pub chains: usize,
    /// Initial temperature as a fraction of the initial cost.
    pub initial_temp_frac: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// Stop a chain after this many iterations without global improvement.
    pub patience: usize,
    /// Largest number of datacenters to consider.
    pub max_sites: usize,
    /// RNG seed.
    pub seed: u64,
    /// Options for the LP subproblems.
    pub lp: SimplexOptions,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        Self {
            iterations: 120,
            chains: 4,
            initial_temp_frac: 0.05,
            cooling: 0.96,
            patience: 50,
            max_sites: 16,
            seed: 0xA11EA1,
            lp: SimplexOptions::default(),
        }
    }
}

/// Result of the annealing search.
#[derive(Debug, Clone)]
pub struct AnnealResult {
    /// The best siting found.
    pub siting: Siting,
    /// Its LP optimum (sizing, dispatch, cost).
    pub dispatch: NetworkDispatch,
    /// Total LP evaluations across all chains (cache misses).
    pub evaluations: usize,
}

struct Shared {
    best: Mutex<Option<(f64, Siting, NetworkDispatch)>>,
    cache: Mutex<HashMap<Siting, Option<f64>>>,
    evals: Mutex<usize>,
}

/// Runs the search. `candidates` should already be pre-filtered (cheapest
/// first — the first `n_min` seed the initial siting).
///
/// # Errors
///
/// Returns [`SolveError::Infeasible`] when no explored siting satisfies the
/// constraints.
pub fn anneal(
    params: &CostParams,
    input: &PlacementInput,
    candidates: &[CandidateSite],
    options: &AnnealOptions,
) -> Result<AnnealResult, SolveError> {
    input.validate().map_err(SolveError::InvalidModel)?;
    let n_min = min_datacenters(input.min_availability, input.dc_availability);
    if candidates.len() < n_min {
        return Err(SolveError::InvalidModel(format!(
            "need at least {n_min} candidates for the availability target"
        )));
    }
    let shared = Shared {
        best: Mutex::new(None),
        cache: Mutex::new(HashMap::new()),
        evals: Mutex::new(0),
    };

    let class_for = |count: usize| -> SizeClass {
        // A network split across `count` sites: large class whenever the
        // per-site max power crosses the 10 MW threshold.
        let per_site = input.total_capacity_mw / count as f64 * 1.1;
        if per_site > 9.0 {
            SizeClass::Large
        } else {
            SizeClass::Small
        }
    };
    let initial: Siting = (0..n_min).map(|i| (i, class_for(n_min))).collect();

    let chains = options.chains.max(1);
    crossbeam::thread::scope(|scope| {
        for chain in 0..chains {
            let shared = &shared;
            let initial = initial.clone();
            scope.spawn(move |_| {
                run_chain(
                    params,
                    input,
                    candidates,
                    options,
                    chain,
                    initial,
                    shared,
                    n_min,
                );
            });
        }
    })
    .expect("annealing threads never panic");

    let best = shared.best.into_inner();
    let evaluations = *shared.evals.lock();
    match best {
        Some((_, siting, dispatch)) => Ok(AnnealResult {
            siting,
            dispatch,
            evaluations,
        }),
        None => Err(SolveError::Infeasible),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_chain(
    params: &CostParams,
    input: &PlacementInput,
    candidates: &[CandidateSite],
    options: &AnnealOptions,
    chain: usize,
    initial: Siting,
    shared: &Shared,
    n_min: usize,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(options.seed.wrapping_add(chain as u64 * 0x9E37));
    let mut current = initial;
    let mut current_cost = match evaluate(params, input, candidates, &current, options, shared) {
        Some(c) => c,
        None => f64::INFINITY,
    };
    let mut temp = if current_cost.is_finite() {
        current_cost * options.initial_temp_frac
    } else {
        1e6
    };
    let max_sites = options.max_sites.min(candidates.len());
    let mut since_improvement = 0usize;

    // Chains differ in how eagerly they add/remove/swap (the paper's
    // "different neighbor generation approaches").
    let (w_add, w_remove, w_swap) = match chain % 4 {
        0 => (0.3, 0.2, 0.3),
        1 => (0.1, 0.35, 0.35),
        2 => (0.35, 0.1, 0.35),
        _ => (0.2, 0.2, 0.4),
    };

    for iter in 0..options.iterations {
        // Periodic synchronization: adopt the global best.
        if iter % 8 == 7 {
            if let Some((bc, bs, _)) = shared.best.lock().as_ref() {
                if *bc < current_cost {
                    current_cost = *bc;
                    current = bs.clone();
                }
            }
        }

        let mut neighbour = current.clone();
        let roll: f64 = rng.gen();
        if roll < w_add && neighbour.len() < max_sites {
            // Add a random unsited candidate.
            let unsited: Vec<usize> = (0..candidates.len())
                .filter(|i| !neighbour.iter().any(|(c, _)| c == i))
                .collect();
            if let Some(&pick) = pick_random(&mut rng, &unsited) {
                let class = if rng.gen_bool(0.5) {
                    SizeClass::Large
                } else {
                    SizeClass::Small
                };
                neighbour.push((pick, class));
            }
        } else if roll < w_add + w_remove && neighbour.len() > n_min {
            let k = rng.gen_range(0..neighbour.len());
            neighbour.remove(k);
        } else if roll < w_add + w_remove + w_swap {
            // Swap a sited candidate for an unsited one (keeps the class).
            let unsited: Vec<usize> = (0..candidates.len())
                .filter(|i| !neighbour.iter().any(|(c, _)| c == i))
                .collect();
            if let (Some(&pick), true) = (pick_random(&mut rng, &unsited), !neighbour.is_empty()) {
                let k = rng.gen_range(0..neighbour.len());
                neighbour[k].0 = pick;
            }
        } else if !neighbour.is_empty() {
            // Resize: toggle the size class of one datacenter.
            let k = rng.gen_range(0..neighbour.len());
            neighbour[k].1 = match neighbour[k].1 {
                SizeClass::Small => SizeClass::Large,
                SizeClass::Large => SizeClass::Small,
            };
        }
        neighbour.sort_unstable();
        neighbour.dedup_by_key(|p| p.0);
        if neighbour.len() < n_min || neighbour == current {
            continue;
        }

        let cost = match evaluate(params, input, candidates, &neighbour, options, shared) {
            Some(c) => c,
            None => continue,
        };
        let accept = cost < current_cost || {
            let delta = cost - current_cost;
            temp > 0.0 && rng.gen::<f64>() < (-delta / temp).exp()
        };
        if accept {
            current = neighbour;
            current_cost = cost;
        }
        temp *= options.cooling;

        let improved = shared
            .best
            .lock()
            .as_ref()
            .map_or(false, |(bc, _, _)| cost < *bc);
        if improved {
            since_improvement = 0;
        } else {
            since_improvement += 1;
            if since_improvement > options.patience {
                break;
            }
        }
    }
}

fn pick_random<'a, R: Rng>(rng: &mut R, xs: &'a [usize]) -> Option<&'a usize> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.gen_range(0..xs.len())])
    }
}

/// Evaluates a siting (memoized); updates the shared best on improvement.
fn evaluate(
    params: &CostParams,
    input: &PlacementInput,
    candidates: &[CandidateSite],
    siting: &Siting,
    options: &AnnealOptions,
    shared: &Shared,
) -> Option<f64> {
    if let Some(hit) = shared.cache.lock().get(siting) {
        return *hit;
    }
    let sites: Vec<(&CandidateSite, SizeClass)> = siting
        .iter()
        .map(|&(i, class)| (&candidates[i], class))
        .collect();
    let lp = build_network_lp(params, input, &sites);
    *shared.evals.lock() += 1;
    let outcome = match lp.solve_with(options.lp.clone()) {
        Ok(dispatch) => {
            let cost = dispatch.monthly_cost;
            let mut best = shared.best.lock();
            let better = best.as_ref().map_or(true, |(bc, _, _)| cost < *bc);
            if better {
                *best = Some((cost, siting.clone(), dispatch));
            }
            Some(cost)
        }
        Err(_) => None,
    };
    shared.cache.lock().insert(siting.clone(), outcome);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::filter_candidates;
    use crate::framework::{StorageMode, TechMix};
    use greencloud_climate::catalog::WorldCatalog;
    use greencloud_climate::profiles::ProfileConfig;

    fn quick_options() -> AnnealOptions {
        AnnealOptions {
            iterations: 25,
            chains: 2,
            patience: 20,
            seed: 7,
            ..AnnealOptions::default()
        }
    }

    #[test]
    fn finds_a_feasible_brown_network() {
        let w = WorldCatalog::anchors_only(5);
        let cands = CandidateSite::build_all(&w, &ProfileConfig::coarse());
        let input = PlacementInput {
            total_capacity_mw: 20.0,
            min_green_fraction: 0.0,
            tech: TechMix::BrownOnly,
            ..PlacementInput::default()
        };
        let kept = filter_candidates(&CostParams::default(), &input, &cands, 5);
        let filtered: Vec<CandidateSite> = kept.iter().map(|&i| cands[i].clone()).collect();
        let r = anneal(&CostParams::default(), &input, &filtered, &quick_options()).expect("finds");
        assert!(r.siting.len() >= 2, "availability demands ≥2 DCs");
        assert!(r.dispatch.monthly_cost > 1e6);
        assert!(r.dispatch.total_capacity_mw >= 20.0 - 1e-6);
        assert!(r.evaluations > 0);
    }

    #[test]
    fn green_requirement_finds_windy_site() {
        let w = WorldCatalog::anchors_only(5);
        let cands = CandidateSite::build_all(&w, &ProfileConfig::coarse());
        let input = PlacementInput {
            total_capacity_mw: 20.0,
            min_green_fraction: 0.5,
            tech: TechMix::Both,
            storage: StorageMode::NetMetering,
            ..PlacementInput::default()
        };
        let r = anneal(&CostParams::default(), &input, &cands, &quick_options()).expect("finds");
        assert!(r.dispatch.green_fraction >= 0.5 - 1e-6);
        // Some green plant must exist.
        let plant: f64 = r
            .dispatch
            .sites
            .iter()
            .map(|s| s.solar_mw + s.wind_mw)
            .sum();
        assert!(plant > 1.0, "plants {plant}");
    }

    #[test]
    fn infeasible_when_capacity_unreachable() {
        let w = WorldCatalog::anchors_only(5);
        let mut cands = CandidateSite::build_all(&w, &ProfileConfig::coarse());
        for c in &mut cands {
            c.econ.near_plant_cap_kw = 100.0; // 25 kW of brown available
        }
        let input = PlacementInput {
            total_capacity_mw: 500.0,
            min_green_fraction: 0.0,
            tech: TechMix::BrownOnly,
            ..PlacementInput::default()
        };
        let err = anneal(&CostParams::default(), &input, &cands, &quick_options()).unwrap_err();
        assert_eq!(err, SolveError::Infeasible);
    }

    #[test]
    fn deterministic_given_seed() {
        let w = WorldCatalog::anchors_only(5);
        let cands = CandidateSite::build_all(&w, &ProfileConfig::coarse());
        let input = PlacementInput {
            total_capacity_mw: 20.0,
            min_green_fraction: 0.0,
            tech: TechMix::BrownOnly,
            ..PlacementInput::default()
        };
        let mut opts = quick_options();
        opts.chains = 1;
        let a = anneal(&CostParams::default(), &input, &cands, &opts).unwrap();
        let b = anneal(&CostParams::default(), &input, &cands, &opts).unwrap();
        assert_eq!(a.siting, b.siting);
        assert!((a.dispatch.monthly_cost - b.dispatch.monthly_cost).abs() < 1e-6);
    }
}
