//! Parallel simulated-annealing search over sitings (paper §II-C, step 3).
//!
//! A *siting* is a set of `(candidate index, size class)` pairs. Each siting
//! is evaluated by compiling and solving its LP ([`crate::formulation`]);
//! the SA explores neighbours by adding, removing, swapping, and resizing
//! datacenters. Multiple chains run on separate threads with different
//! move-weight profiles and periodically synchronize on the shared
//! incumbent, as the paper describes. Evaluations are memoized: distinct
//! chains frequently propose the same siting.

use crate::availability::min_datacenters;
use crate::candidate::CandidateSite;
use crate::formulation::{build_network_lp_cached, NetworkDispatch};
use crate::framework::{PlacementInput, SizeClass};
use crate::siteblock::SiteBlockCache;
use greencloud_cost::params::CostParams;
use greencloud_lp::{Basis, SimplexOptions, SolveError};
use parking_lot::{Mutex, RwLock};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One siting: sorted, de-duplicated `(candidate index, size class)` pairs.
pub type Siting = Vec<(usize, SizeClass)>;

/// Tuning of the simulated-annealing search.
#[derive(Debug, Clone)]
pub struct AnnealOptions {
    /// Iterations per chain.
    pub iterations: usize,
    /// Number of parallel chains.
    pub chains: usize,
    /// Initial temperature as a fraction of the initial cost.
    pub initial_temp_frac: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// Stop a chain after this many iterations without global improvement.
    pub patience: usize,
    /// Largest number of datacenters to consider.
    pub max_sites: usize,
    /// RNG seed.
    pub seed: u64,
    /// Options for the LP subproblems.
    pub lp: SimplexOptions,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        Self {
            iterations: 120,
            chains: 4,
            initial_temp_frac: 0.05,
            cooling: 0.96,
            patience: 50,
            max_sites: 16,
            seed: 0xA11EA1,
            lp: SimplexOptions::default(),
        }
    }
}

/// Counters describing how the search spent its LP budget.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SearchStats {
    /// LP solves actually performed (eval-cache misses).
    pub evaluations: usize,
    /// Sitings answered from the eval cache without solving.
    pub cache_hits: usize,
    /// Solves given a warm basis to try.
    pub warm_attempts: usize,
    /// Solves that actually started from the warm basis (skipped phase 1).
    pub warm_hits: usize,
    /// Site blocks reused from the block cache.
    pub block_hits: usize,
    /// Site blocks compiled (block-cache misses).
    pub block_misses: usize,
    /// Simplex iterations across all LP solves.
    pub simplex_iterations: usize,
    /// Basis refactorizations across all LP solves.
    pub refactorizations: usize,
    /// FTRAN solves across all LP solves.
    pub ftrans: usize,
    /// BTRAN solves across all LP solves.
    pub btrans: usize,
    /// Wall time the LP solver spent pricing, nanoseconds.
    pub pricing_ns: u64,
}

impl SearchStats {
    /// Warm-start success rate over attempts, in `[0, 1]`.
    pub fn warm_rate(&self) -> f64 {
        if self.warm_attempts == 0 {
            0.0
        } else {
            self.warm_hits as f64 / self.warm_attempts as f64
        }
    }

    /// Eval-cache hit rate over all eval requests, in `[0, 1]`.
    pub fn cache_rate(&self) -> f64 {
        let total = self.evaluations + self.cache_hits;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Wall time the LP solver spent pricing, in milliseconds.
    pub fn pricing_ms(&self) -> f64 {
        self.pricing_ns as f64 / 1e6
    }
}

/// Result of the annealing search.
#[derive(Debug, Clone)]
pub struct AnnealResult {
    /// The best siting found.
    pub siting: Siting,
    /// Its LP optimum (sizing, dispatch, cost).
    pub dispatch: NetworkDispatch,
    /// Total LP evaluations across all chains (cache misses).
    pub evaluations: usize,
    /// Cache and warm-start accounting for this run.
    pub stats: SearchStats,
}

/// What the eval cache remembers per siting: the LP outcome (`None` cost =
/// infeasible) and, for solvable sitings, the optimal basis so later
/// same-shape evaluations can warm-start from it.
#[derive(Clone, Default)]
struct CachedEval {
    cost: Option<f64>,
    basis: Option<Arc<Basis>>,
}

/// Sharded siting → outcome map. Chains mostly touch different shards, so
/// the old single global `Mutex<HashMap>` bottleneck disappears.
///
/// Costs are memoized forever (they are one `f64` each), but basis
/// snapshots are kilobytes apiece and only useful as warm-start seeds, so
/// each shard keeps at most [`EvalCache::BASIS_CAP_PER_SHARD`] of them —
/// a dropped basis merely costs one cold solve on a revisit.
struct EvalCache {
    shards: Vec<Mutex<EvalShard>>,
}

#[derive(Default)]
struct EvalShard {
    map: HashMap<Siting, CachedEval>,
    bases_held: usize,
}

impl EvalCache {
    const BASIS_CAP_PER_SHARD: usize = 64;

    fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(EvalShard::default()))
                .collect(),
        }
    }

    fn shard(&self, siting: &Siting) -> &Mutex<EvalShard> {
        let mut h = DefaultHasher::new();
        siting.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    fn get(&self, siting: &Siting) -> Option<CachedEval> {
        self.shard(siting).lock().map.get(siting).cloned()
    }

    fn insert(&self, siting: Siting, mut entry: CachedEval) {
        let mut shard = self.shard(&siting).lock();
        if entry.basis.is_some() {
            if shard.bases_held >= Self::BASIS_CAP_PER_SHARD {
                entry.basis = None;
            } else {
                shard.bases_held += 1;
            }
        }
        shard.map.insert(siting, entry);
    }
}

struct Shared {
    best: RwLock<Option<(f64, Siting, NetworkDispatch)>>,
    cache: EvalCache,
    blocks: SiteBlockCache,
    evals: AtomicUsize,
    cache_hits: AtomicUsize,
    warm_attempts: AtomicUsize,
    warm_hits: AtomicUsize,
    simplex_iterations: AtomicUsize,
    refactorizations: AtomicUsize,
    ftrans: AtomicUsize,
    btrans: AtomicUsize,
    pricing_ns: AtomicU64,
}

/// Runs the search. `candidates` should already be pre-filtered (cheapest
/// first — the first `n_min` seed the initial siting).
///
/// # Errors
///
/// Returns [`SolveError::Infeasible`] when no explored siting satisfies the
/// constraints.
pub fn anneal(
    params: &CostParams,
    input: &PlacementInput,
    candidates: &[CandidateSite],
    options: &AnnealOptions,
) -> Result<AnnealResult, SolveError> {
    input
        .validate()
        .map_err(|e| SolveError::InvalidModel(e.to_string()))?;
    let n_min = min_datacenters(input.min_availability, input.dc_availability);
    if candidates.len() < n_min {
        return Err(SolveError::InvalidModel(format!(
            "need at least {n_min} candidates for the availability target"
        )));
    }
    let shared = Shared {
        best: RwLock::new(None),
        cache: EvalCache::new(16),
        blocks: SiteBlockCache::new(),
        evals: AtomicUsize::new(0),
        cache_hits: AtomicUsize::new(0),
        warm_attempts: AtomicUsize::new(0),
        warm_hits: AtomicUsize::new(0),
        simplex_iterations: AtomicUsize::new(0),
        refactorizations: AtomicUsize::new(0),
        ftrans: AtomicUsize::new(0),
        btrans: AtomicUsize::new(0),
        pricing_ns: AtomicU64::new(0),
    };

    let class_for = |count: usize| -> SizeClass {
        // A network split across `count` sites: large class whenever the
        // per-site max power crosses the 10 MW threshold.
        let per_site = input.total_capacity_mw / count as f64 * 1.1;
        if per_site > 9.0 {
            SizeClass::Large
        } else {
            SizeClass::Small
        }
    };
    let initial: Siting = (0..n_min).map(|i| (i, class_for(n_min))).collect();

    let chains = options.chains.max(1);
    crossbeam::thread::scope(|scope| {
        for chain in 0..chains {
            let shared = &shared;
            let initial = initial.clone();
            scope.spawn(move |_| {
                run_chain(
                    params, input, candidates, options, chain, initial, shared, n_min,
                );
            });
        }
    })
    .expect("annealing threads never panic");

    let stats = SearchStats {
        evaluations: shared.evals.load(Ordering::Relaxed),
        cache_hits: shared.cache_hits.load(Ordering::Relaxed),
        warm_attempts: shared.warm_attempts.load(Ordering::Relaxed),
        warm_hits: shared.warm_hits.load(Ordering::Relaxed),
        block_hits: shared.blocks.hits(),
        block_misses: shared.blocks.misses(),
        simplex_iterations: shared.simplex_iterations.load(Ordering::Relaxed),
        refactorizations: shared.refactorizations.load(Ordering::Relaxed),
        ftrans: shared.ftrans.load(Ordering::Relaxed),
        btrans: shared.btrans.load(Ordering::Relaxed),
        pricing_ns: shared.pricing_ns.load(Ordering::Relaxed),
    };
    let best = shared.best.into_inner();
    match best {
        Some((_, siting, dispatch)) => Ok(AnnealResult {
            siting,
            dispatch,
            evaluations: stats.evaluations,
            stats,
        }),
        None => Err(SolveError::Infeasible),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_chain(
    params: &CostParams,
    input: &PlacementInput,
    candidates: &[CandidateSite],
    options: &AnnealOptions,
    chain: usize,
    initial: Siting,
    shared: &Shared,
    n_min: usize,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(options.seed.wrapping_add(chain as u64 * 0x9E37));
    let mut current = initial;
    // The basis of the chain's current siting; neighbour evaluations of the
    // same shape warm-start from it (the LP layer falls back to a cold
    // solve whenever the transfer is unusable).
    let mut current_basis: Option<Arc<Basis>> = None;
    let mut current_cost =
        match evaluate(params, input, candidates, &current, options, shared, None) {
            Some((c, basis)) => {
                current_basis = basis;
                c
            }
            None => f64::INFINITY,
        };
    let mut temp = if current_cost.is_finite() {
        current_cost * options.initial_temp_frac
    } else {
        1e6
    };
    let max_sites = options.max_sites.min(candidates.len());
    let mut since_improvement = 0usize;

    // Chains differ in how eagerly they add/remove/swap (the paper's
    // "different neighbor generation approaches").
    let (w_add, w_remove, w_swap) = match chain % 4 {
        0 => (0.3, 0.2, 0.3),
        1 => (0.1, 0.35, 0.35),
        2 => (0.35, 0.1, 0.35),
        _ => (0.2, 0.2, 0.4),
    };

    for iter in 0..options.iterations {
        // Periodic synchronization: adopt the global best.
        if iter % 8 == 7 {
            let adopted = {
                let best = shared.best.read();
                match best.as_ref() {
                    Some((bc, bs, _)) if *bc < current_cost => Some((*bc, bs.clone())),
                    _ => None,
                }
            };
            if let Some((bc, bs)) = adopted {
                current_cost = bc;
                current_basis = shared.cache.get(&bs).and_then(|e| e.basis);
                current = bs;
            }
        }

        let mut neighbour = current.clone();
        let roll: f64 = rng.gen();
        if roll < w_add && neighbour.len() < max_sites {
            // Add a random unsited candidate.
            let unsited: Vec<usize> = (0..candidates.len())
                .filter(|i| !neighbour.iter().any(|(c, _)| c == i))
                .collect();
            if let Some(&pick) = pick_random(&mut rng, &unsited) {
                let class = if rng.gen_bool(0.5) {
                    SizeClass::Large
                } else {
                    SizeClass::Small
                };
                neighbour.push((pick, class));
            }
        } else if roll < w_add + w_remove && neighbour.len() > n_min {
            let k = rng.gen_range(0..neighbour.len());
            neighbour.remove(k);
        } else if roll < w_add + w_remove + w_swap {
            // Swap a sited candidate for an unsited one (keeps the class).
            let unsited: Vec<usize> = (0..candidates.len())
                .filter(|i| !neighbour.iter().any(|(c, _)| c == i))
                .collect();
            if let (Some(&pick), true) = (pick_random(&mut rng, &unsited), !neighbour.is_empty()) {
                let k = rng.gen_range(0..neighbour.len());
                neighbour[k].0 = pick;
            }
        } else if !neighbour.is_empty() {
            // Resize: toggle the size class of one datacenter.
            let k = rng.gen_range(0..neighbour.len());
            neighbour[k].1 = match neighbour[k].1 {
                SizeClass::Small => SizeClass::Large,
                SizeClass::Large => SizeClass::Small,
            };
        }
        neighbour.sort_unstable();
        neighbour.dedup_by_key(|p| p.0);
        if neighbour.len() < n_min || neighbour == current {
            continue;
        }

        // A same-length neighbour keeps the LP shape, so the current basis
        // is a candidate warm start; add/remove moves change dimensions and
        // always solve cold.
        let warm = if neighbour.len() == current.len() {
            current_basis.as_deref()
        } else {
            None
        };
        let (cost, basis) =
            match evaluate(params, input, candidates, &neighbour, options, shared, warm) {
                Some(r) => r,
                None => continue,
            };
        let accept = cost < current_cost || {
            let delta = cost - current_cost;
            temp > 0.0 && rng.gen::<f64>() < (-delta / temp).exp()
        };
        if accept {
            current = neighbour;
            current_cost = cost;
            current_basis = basis;
        }
        temp *= options.cooling;

        let improved = shared
            .best
            .read()
            .as_ref()
            .is_some_and(|(bc, _, _)| cost < *bc);
        if improved {
            since_improvement = 0;
        } else {
            since_improvement += 1;
            if since_improvement > options.patience {
                break;
            }
        }
    }
}

fn pick_random<'a, R: Rng>(rng: &mut R, xs: &'a [usize]) -> Option<&'a usize> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.gen_range(0..xs.len())])
    }
}

/// Evaluates a siting (memoized); updates the shared best on improvement.
///
/// Returns the siting's cost together with its optimal basis (for the
/// chain to warm-start neighbour evaluations), or `None` for infeasible
/// sitings. `warm` is a basis from a same-shape siting to seed the solve.
#[allow(clippy::too_many_arguments)]
fn evaluate(
    params: &CostParams,
    input: &PlacementInput,
    candidates: &[CandidateSite],
    siting: &Siting,
    options: &AnnealOptions,
    shared: &Shared,
    warm: Option<&Basis>,
) -> Option<(f64, Option<Arc<Basis>>)> {
    if let Some(hit) = shared.cache.get(siting) {
        shared.cache_hits.fetch_add(1, Ordering::Relaxed);
        return hit.cost.map(|c| (c, hit.basis));
    }
    let lp = build_network_lp_cached(params, input, candidates, siting, &shared.blocks);
    shared.evals.fetch_add(1, Ordering::Relaxed);
    if warm.is_some() {
        shared.warm_attempts.fetch_add(1, Ordering::Relaxed);
    }
    let outcome = match lp.solve_warm(options.lp.clone(), warm) {
        Ok((dispatch, basis)) => {
            if dispatch.warm_started {
                shared.warm_hits.fetch_add(1, Ordering::Relaxed);
            }
            let st = &dispatch.lp_stats;
            shared
                .simplex_iterations
                .fetch_add(st.iterations, Ordering::Relaxed);
            shared
                .refactorizations
                .fetch_add(st.refactorizations, Ordering::Relaxed);
            shared.ftrans.fetch_add(st.ftrans, Ordering::Relaxed);
            shared.btrans.fetch_add(st.btrans, Ordering::Relaxed);
            shared
                .pricing_ns
                .fetch_add(st.pricing_ns, Ordering::Relaxed);
            let cost = dispatch.monthly_cost;
            let basis = basis.map(Arc::new);
            let better = shared
                .best
                .read()
                .as_ref()
                .is_none_or(|(bc, _, _)| cost < *bc);
            if better {
                // Re-check under the write lock; another chain may have won.
                let mut best = shared.best.write();
                if best.as_ref().is_none_or(|(bc, _, _)| cost < *bc) {
                    *best = Some((cost, siting.clone(), dispatch));
                }
            }
            Some((cost, basis))
        }
        Err(_) => None,
    };
    shared.cache.insert(
        siting.clone(),
        CachedEval {
            cost: outcome.as_ref().map(|(c, _)| *c),
            basis: outcome.as_ref().and_then(|(_, b)| b.clone()),
        },
    );
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::filter_candidates;
    use crate::framework::{StorageMode, TechMix};
    use greencloud_climate::catalog::WorldCatalog;
    use greencloud_climate::profiles::ProfileConfig;

    fn quick_options() -> AnnealOptions {
        AnnealOptions {
            iterations: 25,
            chains: 2,
            patience: 20,
            seed: 7,
            ..AnnealOptions::default()
        }
    }

    #[test]
    fn finds_a_feasible_brown_network() {
        let w = WorldCatalog::anchors_only(5);
        let cands = CandidateSite::build_all(&w, &ProfileConfig::coarse());
        let input = PlacementInput {
            total_capacity_mw: 20.0,
            min_green_fraction: 0.0,
            tech: TechMix::BrownOnly,
            ..PlacementInput::default()
        };
        let kept = filter_candidates(&CostParams::default(), &input, &cands, 5);
        let filtered: Vec<CandidateSite> = kept.iter().map(|&i| cands[i].clone()).collect();
        let r = anneal(&CostParams::default(), &input, &filtered, &quick_options()).expect("finds");
        assert!(r.siting.len() >= 2, "availability demands ≥2 DCs");
        assert!(r.dispatch.monthly_cost > 1e6);
        assert!(r.dispatch.total_capacity_mw >= 20.0 - 1e-6);
        assert!(r.evaluations > 0);
    }

    #[test]
    fn green_requirement_finds_windy_site() {
        let w = WorldCatalog::anchors_only(5);
        let cands = CandidateSite::build_all(&w, &ProfileConfig::coarse());
        let input = PlacementInput {
            total_capacity_mw: 20.0,
            min_green_fraction: 0.5,
            tech: TechMix::Both,
            storage: StorageMode::NetMetering,
            ..PlacementInput::default()
        };
        let r = anneal(&CostParams::default(), &input, &cands, &quick_options()).expect("finds");
        assert!(r.dispatch.green_fraction >= 0.5 - 1e-6);
        // Some green plant must exist.
        let plant: f64 = r
            .dispatch
            .sites
            .iter()
            .map(|s| s.solar_mw + s.wind_mw)
            .sum();
        assert!(plant > 1.0, "plants {plant}");
    }

    #[test]
    fn infeasible_when_capacity_unreachable() {
        let w = WorldCatalog::anchors_only(5);
        let mut cands = CandidateSite::build_all(&w, &ProfileConfig::coarse());
        for c in &mut cands {
            c.econ.near_plant_cap_kw = 100.0; // 25 kW of brown available
        }
        let input = PlacementInput {
            total_capacity_mw: 500.0,
            min_green_fraction: 0.0,
            tech: TechMix::BrownOnly,
            ..PlacementInput::default()
        };
        let err = anneal(&CostParams::default(), &input, &cands, &quick_options()).unwrap_err();
        assert_eq!(err, SolveError::Infeasible);
    }

    #[test]
    fn search_stats_are_consistent() {
        let w = WorldCatalog::anchors_only(5);
        let cands = CandidateSite::build_all(&w, &ProfileConfig::coarse());
        let input = PlacementInput {
            total_capacity_mw: 20.0,
            min_green_fraction: 0.5,
            tech: TechMix::Both,
            storage: StorageMode::NetMetering,
            ..PlacementInput::default()
        };
        let r = anneal(&CostParams::default(), &input, &cands, &quick_options()).expect("finds");
        let st = r.stats;
        assert_eq!(st.evaluations, r.evaluations);
        assert!(st.evaluations > 0);
        // Swap/resize moves keep the siting length, so warm starts must
        // have been attempted, and every block past the first siting build
        // should come from the cache.
        assert!(st.warm_attempts > 0, "stats: {st:?}");
        assert!(st.warm_hits <= st.warm_attempts);
        assert!(st.block_hits > 0, "stats: {st:?}");
        assert!(st.warm_rate() >= 0.0 && st.warm_rate() <= 1.0);
        assert!(st.cache_rate() >= 0.0 && st.cache_rate() <= 1.0);
        // The per-solve solver counters aggregate across every eval-cache
        // miss, so a search that solved anything reports pivot work.
        assert!(st.simplex_iterations > 0, "stats: {st:?}");
        assert!(st.ftrans > 0 && st.btrans > 0, "stats: {st:?}");
        assert!(st.refactorizations > 0, "stats: {st:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let w = WorldCatalog::anchors_only(5);
        let cands = CandidateSite::build_all(&w, &ProfileConfig::coarse());
        let input = PlacementInput {
            total_capacity_mw: 20.0,
            min_green_fraction: 0.0,
            tech: TechMix::BrownOnly,
            ..PlacementInput::default()
        };
        let mut opts = quick_options();
        opts.chains = 1;
        let a = anneal(&CostParams::default(), &input, &cands, &opts).unwrap();
        let b = anneal(&CostParams::default(), &input, &cands, &opts).unwrap();
        assert_eq!(a.siting, b.siting);
        assert!((a.dispatch.monthly_cost - b.dispatch.monthly_cost).abs() < 1e-6);
    }
}
