//! The reported siting, provisioning, and cost result.

use crate::anneal::SearchStats;
use crate::candidate::CandidateSite;
use crate::formulation::NetworkDispatch;
use crate::framework::SizeClass;
use greencloud_climate::catalog::LocationId;
use greencloud_climate::geo::LatLon;
use greencloud_cost::breakdown::{CostBreakdown, Provisioning};
use greencloud_cost::params::CostParams;
use serde::{Deserialize, Serialize};

/// One datacenter in the final solution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SitedDatacenter {
    /// The catalog location.
    pub location: LocationId,
    /// Location name.
    pub name: String,
    /// Coordinates.
    pub position: LatLon,
    /// Construction size class.
    pub size_class: SizeClass,
    /// IT compute capacity, MW.
    pub capacity_mw: f64,
    /// Installed solar, MW.
    pub solar_mw: f64,
    /// Installed wind, MW.
    pub wind_mw: f64,
    /// Battery bank, MWh.
    pub batt_mwh: f64,
    /// Itemized monthly cost (Table I components + dispatch energy).
    pub breakdown: CostBreakdown,
    /// Green fraction of this site's own consumption.
    pub green_fraction: f64,
    /// Annual brown energy purchased, MWh.
    pub brown_mwh_yr: f64,
    /// Annual electrical demand, MWh.
    pub demand_mwh_yr: f64,
}

/// A complete siting/provisioning solution for a placement input.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlacementSolution {
    /// The sited datacenters.
    pub datacenters: Vec<SitedDatacenter>,
    /// Total monthly cost, $ (the optimization objective).
    pub monthly_cost: f64,
    /// Network-wide component totals.
    pub network_breakdown: CostBreakdown,
    /// Network green-energy fraction achieved.
    pub green_fraction: f64,
    /// Total provisioned compute capacity, MW.
    pub total_capacity_mw: f64,
    /// Number of LP evaluations the search spent.
    pub evaluations: usize,
    /// Cache and warm-start accounting, when the solution came from the
    /// annealing search (`None` for single-LP solves).
    pub search_stats: Option<SearchStats>,
}

impl PlacementSolution {
    /// Assembles the user-facing solution from an LP dispatch.
    pub fn from_dispatch(
        params: &CostParams,
        candidates: &[CandidateSite],
        siting: &[(usize, SizeClass)],
        dispatch: &NetworkDispatch,
        evaluations: usize,
    ) -> Self {
        let mut datacenters = Vec::with_capacity(siting.len());
        let mut network = CostBreakdown::default();
        for (k, &(ci, class)) in siting.iter().enumerate() {
            let site = &candidates[ci];
            let d = &dispatch.sites[k];
            let prov = Provisioning {
                capacity_kw: d.capacity_mw * 1000.0,
                max_pue: site.max_pue(),
                solar_kw: d.solar_mw * 1000.0,
                wind_kw: d.wind_mw * 1000.0,
                batt_kwh: d.batt_mwh * 1000.0,
            };
            let breakdown =
                CostBreakdown::capex(params, &site.econ, &prov).with_energy(d.energy_cost_month);
            network = network.combined(&breakdown);
            datacenters.push(SitedDatacenter {
                location: site.id,
                name: site.name.clone(),
                position: site.position,
                size_class: class,
                capacity_mw: d.capacity_mw,
                solar_mw: d.solar_mw,
                wind_mw: d.wind_mw,
                batt_mwh: d.batt_mwh,
                breakdown,
                green_fraction: if d.demand_mwh_yr > 0.0 {
                    d.green_mwh_yr / d.demand_mwh_yr
                } else {
                    1.0
                },
                brown_mwh_yr: d.brown_mwh_yr,
                demand_mwh_yr: d.demand_mwh_yr,
            });
        }
        PlacementSolution {
            datacenters,
            monthly_cost: dispatch.monthly_cost,
            network_breakdown: network,
            green_fraction: dispatch.green_fraction,
            total_capacity_mw: dispatch.total_capacity_mw,
            evaluations,
            search_stats: None,
        }
    }

    /// Attaches the search's cache/warm-start counters (builder style).
    pub fn with_search_stats(mut self, stats: SearchStats) -> Self {
        self.search_stats = Some(stats);
        self
    }

    /// Renders a short human-readable summary (one line per datacenter).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "total ${:.2}M/month, {:.1}% green, {:.1} MW provisioned, {} datacenter(s)",
            self.monthly_cost / 1e6,
            self.green_fraction * 100.0,
            self.total_capacity_mw,
            self.datacenters.len()
        );
        for dc in &self.datacenters {
            let _ = writeln!(
                out,
                "  {:<28} {:>6.1} MW IT | solar {:>7.1} MW | wind {:>7.1} MW | batt {:>7.1} MWh | ${:.2}M/mo",
                dc.name, dc.capacity_mw, dc.solar_mw, dc.wind_mw, dc.batt_mwh,
                dc.breakdown.total() / 1e6
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulation::build_network_lp;
    use crate::framework::{PlacementInput, StorageMode, TechMix};
    use greencloud_climate::catalog::WorldCatalog;
    use greencloud_climate::profiles::ProfileConfig;

    #[test]
    fn breakdown_totals_match_lp_objective() {
        // The per-site Table I breakdown recomputed from the sizes must agree
        // with the LP's own objective (they share the same unit costs).
        let w = WorldCatalog::anchors_only(5);
        let cands = CandidateSite::build_all(&w, &ProfileConfig::coarse());
        let input = PlacementInput {
            total_capacity_mw: 20.0,
            min_green_fraction: 0.5,
            tech: TechMix::Both,
            storage: StorageMode::NetMetering,
            ..PlacementInput::default()
        };
        let siting = vec![(3usize, SizeClass::Large), (4usize, SizeClass::Large)];
        let sites: Vec<_> = siting.iter().map(|&(i, c)| (&cands[i], c)).collect();
        let lp = build_network_lp(&CostParams::default(), &input, &sites);
        let dispatch = lp.solve().expect("solvable");
        let sol =
            PlacementSolution::from_dispatch(&CostParams::default(), &cands, &siting, &dispatch, 1);
        let rebuilt = sol.network_breakdown.total();
        let lp_cost = dispatch.monthly_cost;
        assert!(
            (rebuilt - lp_cost).abs() / lp_cost < 0.01,
            "breakdown ${rebuilt:.0} vs LP ${lp_cost:.0}"
        );
        assert_eq!(sol.datacenters.len(), 2);
        assert!(sol.summary().contains("datacenter"));
    }
}
