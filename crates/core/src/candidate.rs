//! Per-location precomputation shared by every solver path.

use greencloud_climate::catalog::{Location, LocationId, WorldCatalog};
use greencloud_climate::economics::Economics;
use greencloud_climate::geo::LatLon;
use greencloud_climate::profiles::{ProfileConfig, WeatherProfile};
use greencloud_energy::capacity_factor::CapacityFactors;
use greencloud_energy::profile::EnergyProfile;
use serde::{Deserialize, Serialize};

/// A candidate location with everything the optimizer needs: economics,
/// slot-level energy coefficients, and annual statistics.
///
/// Building a candidate synthesizes and aggregates the location's TMY year,
/// which costs a few milliseconds; candidates are therefore built once and
/// shared across the thousands of LP evaluations of the heuristic search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateSite {
    /// Catalog identity.
    pub id: LocationId,
    /// Human-readable name.
    pub name: String,
    /// Geographic position.
    pub position: LatLon,
    /// Economic attributes.
    pub econ: Economics,
    /// α/β/PUE on the shared representative-day slot clock.
    pub profile: EnergyProfile,
    /// Annual capacity factors and PUE statistics over the full TMY year.
    pub annual: CapacityFactors,
}

impl CandidateSite {
    /// Builds the candidate for `id` using the shared profile configuration.
    pub fn build(catalog: &WorldCatalog, id: LocationId, config: &ProfileConfig) -> Self {
        let loc: &Location = catalog.get(id);
        let tmy = catalog.tmy(id);
        let weather = WeatherProfile::from_tmy(&tmy, config);
        let profile = EnergyProfile::from_weather_default(&weather);
        let annual = CapacityFactors::with_default_models(&tmy);
        CandidateSite {
            id,
            name: loc.name.clone(),
            position: loc.position,
            econ: loc.econ.clone(),
            profile,
            annual,
        }
    }

    /// Builds candidates for every location in the catalog.
    pub fn build_all(catalog: &WorldCatalog, config: &ProfileConfig) -> Vec<Self> {
        catalog
            .iter()
            .map(|l| Self::build(catalog, l.id, config))
            .collect()
    }

    /// Builds candidates for every location, fanned out over `threads`
    /// scoped threads (each candidate synthesizes a full TMY year, so large
    /// catalogs parallelize near-linearly). `threads == 1` or a small
    /// catalog falls back to the serial path; the result is identical
    /// either way (catalog order).
    pub fn build_all_threaded(
        catalog: &WorldCatalog,
        config: &ProfileConfig,
        threads: usize,
    ) -> Vec<Self> {
        let ids: Vec<LocationId> = catalog.iter().map(|l| l.id).collect();
        let threads = threads.max(1);
        if threads == 1 || ids.len() < 8 {
            return Self::build_all(catalog, config);
        }
        let chunk = ids.len().div_ceil(threads);
        let mut slots: Vec<Option<CandidateSite>> = vec![None; ids.len()];
        crossbeam::thread::scope(|scope| {
            for (slot_chunk, id_chunk) in slots.chunks_mut(chunk).zip(ids.chunks(chunk)) {
                scope.spawn(move |_| {
                    for (slot, id) in slot_chunk.iter_mut().zip(id_chunk) {
                        *slot = Some(CandidateSite::build(catalog, *id, config));
                    }
                });
            }
        })
        .expect("candidate building never panics");
        slots.into_iter().map(|c| c.expect("built")).collect()
    }

    /// The max-PUE used to size the electrical/cooling plant.
    pub fn max_pue(&self) -> f64 {
        self.annual.max_pue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greencloud_climate::catalog::WorldCatalog;

    #[test]
    fn build_produces_consistent_slots() {
        let w = WorldCatalog::anchors_only(3);
        let cfg = ProfileConfig::coarse();
        let c = CandidateSite::build(&w, LocationId(0), &cfg);
        assert_eq!(c.profile.len(), cfg.num_slots());
        assert!(c.max_pue() >= 1.05);
        assert_eq!(c.name, "Kiev, Ukraine");
    }

    #[test]
    fn build_all_covers_catalog() {
        let w = WorldCatalog::anchors_only(3);
        let all = CandidateSite::build_all(&w, &ProfileConfig::coarse());
        assert_eq!(all.len(), w.len());
        // Shared slot clock: all candidates have identical slot counts and
        // weights.
        for c in &all {
            assert_eq!(c.profile.len(), all[0].profile.len());
            assert_eq!(c.profile.weight_hours, all[0].profile.weight_hours);
        }
    }
}
