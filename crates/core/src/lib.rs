//! Siting and provisioning green datacenter networks — the primary
//! contribution of Berral et al. (ICDCS 2014), §II–§IV.
//!
//! Given a world of candidate locations (`greencloud-climate`), energy
//! models (`greencloud-energy`), and the Table I cost model
//! (`greencloud-cost`), this crate answers: *where should a provider build
//! datacenters, and how large should each datacenter, solar plant, wind
//! plant, and battery bank be, to deliver a target compute capacity with a
//! target fraction of green energy at minimum monthly cost?*
//!
//! * [`framework`] — the provider-facing problem statement
//!   ([`framework::PlacementInput`]).
//! * [`availability`] — the paper's datacenter-network availability model,
//!   which lower-bounds the number of sites.
//! * [`candidate`] — per-location precomputation (energy profile, max PUE,
//!   economics) shared by all solver paths.
//! * [`formulation`] — compiles the paper's Fig. 1 optimization (with the
//!   documented strict-green and no-cash-out refinements) into an LP for a
//!   fixed siting, on the representative-day slot clock.
//! * [`siteblock`] — per-site LP column blocks and the block cache the hot
//!   search paths use to avoid recompiling unchanged sites.
//! * [`filter`] — the heuristic's location pre-filter.
//! * [`anneal`] — parallel simulated-annealing search over sitings, each
//!   candidate evaluated by solving its LP.
//! * [`milp`] — the exact branch & bound path for small candidate sets.
//! * [`tool`] — [`tool::PlacementTool`], the end-to-end siting tool.
//! * [`solution`] — the reported siting/provisioning/cost result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anneal;
pub mod availability;
pub mod candidate;
pub mod filter;
pub mod formulation;
pub mod framework;
pub mod milp;
pub mod siteblock;
pub mod solution;
pub mod tool;

pub use candidate::CandidateSite;
pub use framework::{PlacementInput, SizeClass, StorageMode, TechMix, ValidationError};
pub use solution::{PlacementSolution, SitedDatacenter};
pub use tool::{default_threads, PlacementTool, ToolOptions};
