//! The exact solving path for small candidate sets.
//!
//! The paper formulates siting as a MILP whose binaries are `at(d)` (is a
//! datacenter placed at location d?) and the construction size class. For
//! the candidate-set sizes where the exact path is tractable at all (the
//! paper reports days of runtime at 50–100 locations), enumerating the
//! binary assignments and solving the LP for each is equivalent to branch &
//! bound over them — with far better numerical behaviour than big-M
//! couplings, because each subproblem is exactly the heuristic's LP. That is
//! what this module does, with a simple bound-based pruning rule (a superset
//! of an infeasible-capacity siting stays infeasible; costs of supersets are
//! not monotone, so only availability pruning applies).
//!
//! General-purpose branch & bound over arbitrary integer variables lives in
//! [`greencloud_lp::BranchAndBound`] and is exercised by the GreenNebula
//! scheduler's integral mode.

use crate::availability::min_datacenters;
use crate::candidate::CandidateSite;
use crate::formulation::{build_network_lp_cached, NetworkDispatch};
use crate::framework::{PlacementInput, SizeClass};
use crate::siteblock::SiteBlockCache;
use greencloud_cost::params::CostParams;
use greencloud_lp::{Basis, SimplexOptions, SolveError};

/// Options for the exhaustive exact search.
#[derive(Debug, Clone)]
pub struct ExactOptions {
    /// Hard cap on candidate-set size (the enumeration is exponential).
    pub max_candidates: usize,
    /// Largest siting cardinality to consider.
    pub max_sites: usize,
}

impl Default for ExactOptions {
    fn default() -> Self {
        Self {
            max_candidates: 10,
            max_sites: 4,
        }
    }
}

/// A candidate incumbent: `(cost, siting, dispatch)`.
type BestSiting = (f64, Vec<(usize, SizeClass)>, NetworkDispatch);

/// The proven-optimal siting over the candidate set (within `options`).
///
/// # Errors
///
/// [`SolveError::InvalidModel`] if the candidate set exceeds
/// `options.max_candidates`; [`SolveError::Infeasible`] when no siting
/// satisfies the constraints.
pub fn solve_exact(
    params: &CostParams,
    input: &PlacementInput,
    candidates: &[CandidateSite],
    options: &ExactOptions,
) -> Result<(Vec<(usize, SizeClass)>, NetworkDispatch), SolveError> {
    input
        .validate()
        .map_err(|e| SolveError::InvalidModel(e.to_string()))?;
    let n = candidates.len();
    if n > options.max_candidates {
        return Err(SolveError::InvalidModel(format!(
            "exact path caps at {} candidates, got {n}",
            options.max_candidates
        )));
    }
    let n_min = min_datacenters(input.min_availability, input.dc_availability);
    let n_max = options.max_sites.min(n);
    if n_min > n_max {
        return Err(SolveError::Infeasible);
    }

    let mut best: Option<BestSiting> = None;
    // Per-site blocks are identical across the enumeration, so compile each
    // (candidate, class) pair once and reuse it for every subset.
    let blocks = SiteBlockCache::new();
    // Enumerate subsets by bitmask, then size classes per member.
    for mask in 1u32..(1 << n) {
        let members: Vec<usize> = (0..n).filter(|i| mask >> i & 1 == 1).collect();
        if members.len() < n_min || members.len() > n_max {
            continue;
        }
        let k = members.len();
        // Class re-assignments keep the LP shape: warm-start each solve
        // from the previous class mask's basis for this member set.
        let mut last_basis: Option<Basis> = None;
        for classes in 0u32..(1 << k) {
            let siting: Vec<(usize, SizeClass)> = members
                .iter()
                .enumerate()
                .map(|(j, &ci)| {
                    let class = if classes >> j & 1 == 1 {
                        SizeClass::Large
                    } else {
                        SizeClass::Small
                    };
                    (ci, class)
                })
                .collect();
            // Quick prune: small-class sites cap at 10 MW of max power; if
            // even all-large cannot host the demand it stays infeasible —
            // but capacity is unbounded for Large, so only prune the
            // all-small case.
            let all_small = siting.iter().all(|(_, c)| *c == SizeClass::Small);
            if all_small {
                let cap: f64 = siting
                    .iter()
                    .map(|&(ci, _)| 10.0 / candidates[ci].max_pue())
                    .sum();
                if cap < input.total_capacity_mw {
                    continue;
                }
            }
            let lp = build_network_lp_cached(params, input, candidates, &siting, &blocks);
            if let Ok((dispatch, basis)) =
                lp.solve_warm(SimplexOptions::default(), last_basis.as_ref())
            {
                last_basis = basis;
                let better = best
                    .as_ref()
                    .is_none_or(|(bc, _, _)| dispatch.monthly_cost < *bc);
                if better {
                    best = Some((dispatch.monthly_cost, siting, dispatch));
                }
            }
        }
    }
    match best {
        Some((_, siting, dispatch)) => Ok((siting, dispatch)),
        None => Err(SolveError::Infeasible),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anneal::{anneal, AnnealOptions};
    use crate::framework::TechMix;
    use greencloud_climate::catalog::WorldCatalog;
    use greencloud_climate::profiles::ProfileConfig;

    #[test]
    fn exact_and_heuristic_agree_on_small_instance() {
        // The paper verified its heuristic "found equally good solutions" in
        // the cases where the MILP was solvable; reproduce that check.
        let w = WorldCatalog::anchors_only(5);
        let cands: Vec<CandidateSite> = CandidateSite::build_all(&w, &ProfileConfig::coarse())
            .into_iter()
            .take(4)
            .collect();
        let input = PlacementInput {
            total_capacity_mw: 20.0,
            min_green_fraction: 0.0,
            tech: TechMix::BrownOnly,
            ..PlacementInput::default()
        };
        let params = CostParams::default();
        let (siting, exact) =
            solve_exact(&params, &input, &cands, &ExactOptions::default()).expect("exact");
        let sa = anneal(
            &params,
            &input,
            &cands,
            &AnnealOptions {
                iterations: 60,
                chains: 2,
                seed: 3,
                ..AnnealOptions::default()
            },
        )
        .expect("sa");
        assert!(siting.len() >= 2);
        // SA should match the exact optimum within a small tolerance.
        let gap = (sa.dispatch.monthly_cost - exact.monthly_cost) / exact.monthly_cost;
        assert!(
            gap.abs() < 0.02,
            "SA ${:.0} vs exact ${:.0} (gap {gap:.4})",
            sa.dispatch.monthly_cost,
            exact.monthly_cost
        );
        assert!(gap >= -1e-9, "heuristic cannot beat the exact optimum");
    }

    #[test]
    fn candidate_cap_is_enforced() {
        let w = WorldCatalog::synthetic(40, 2);
        let cands = CandidateSite::build_all(&w, &ProfileConfig::coarse());
        let err = solve_exact(
            &CostParams::default(),
            &PlacementInput::default(),
            &cands,
            &ExactOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SolveError::InvalidModel(_)));
    }
}
