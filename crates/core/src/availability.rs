//! Datacenter-network availability.
//!
//! The paper models the probability that at least one of `n` datacenters is
//! up as `Σ_{i=0}^{n−1} C(n,i)·a^{n−i}·(1−a)^i = 1 − (1−a)^n`, and requires
//! it to exceed the provider's target. This lower-bounds the number of
//! sites; the survivability rule ("the failure of n−1 datacenters leaves
//! S/n servers") is enforced inside the LP as a per-site capacity floor.

/// Availability of a network of `n` datacenters, each independently
/// available with probability `a` (probability at least one is up).
pub fn network_availability(n: usize, a: f64) -> f64 {
    assert!((0.0..=1.0).contains(&a), "availability must be in [0,1]");
    1.0 - (1.0 - a).powi(n as i32)
}

/// The smallest number of datacenters whose network availability reaches
/// `min_availability` when each has availability `a`.
///
/// # Panics
///
/// Panics if `a == 0` while `min_availability > 0` (unreachable target),
/// `min_availability` is outside `[0, 1)`, or `a` is outside `[0, 1]`.
pub fn min_datacenters(min_availability: f64, a: f64) -> usize {
    assert!((0.0..1.0).contains(&min_availability));
    assert!((0.0..=1.0).contains(&a), "availability must be in [0, 1]");
    if min_availability == 0.0 || a == 1.0 {
        // A perfectly available datacenter (or a vacuous target) needs no
        // replicas; the log-ratio below would divide by ln(0).
        return 1;
    }
    assert!(
        a > 0.0,
        "cannot reach positive availability with dead datacenters"
    );
    // 1 − (1−a)^n ≥ target  ⇔  n ≥ ln(1−target) / ln(1−a)
    let n = ((1.0 - min_availability).ln() / (1.0 - a).ln()).ceil() as usize;
    n.max(1)
}

/// Availabilities of the Uptime Institute tiers cited by the paper.
pub mod tiers {
    /// Tier I: single power/cooling path.
    pub const TIER_I: f64 = 0.9967;
    /// Tier II.
    pub const TIER_II: f64 = 0.9974;
    /// Tier III.
    pub const TIER_III: f64 = 0.9998;
    /// Tier IV: fully redundant paths.
    pub const TIER_IV: f64 = 0.99995;
    /// The near-Tier-III figure the paper's studies assume (from its
    /// ref \[25\]).
    pub const PAPER_DEFAULT: f64 = 0.99827;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_base_case_needs_two_datacenters() {
        // 99.827% per DC, 99.999% target → 2 DCs (matches the paper's
        // two-datacenter solutions).
        assert_eq!(min_datacenters(0.99999, tiers::PAPER_DEFAULT), 2);
    }

    #[test]
    fn formula_matches_binomial_sum() {
        // Cross-check 1−(1−a)^n against the explicit binomial sum.
        fn binomial(n: u64, k: u64) -> f64 {
            (0..k).fold(1.0, |acc, i| acc * (n - i) as f64 / (i + 1) as f64)
        }
        for n in 1..=5usize {
            for &a in &[0.9, 0.99, 0.999] {
                let direct = network_availability(n, a);
                let sum: f64 = (0..n as u64)
                    .map(|i| {
                        binomial(n as u64, i)
                            * a.powi(n as i32 - i as i32)
                            * (1.0 - a).powi(i as i32)
                    })
                    .sum();
                assert!((direct - sum).abs() < 1e-12, "n={n} a={a}");
            }
        }
    }

    #[test]
    fn more_datacenters_raise_availability() {
        let a = tiers::TIER_I;
        let mut prev = 0.0;
        for n in 1..6 {
            let v = network_availability(n, a);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn requirements_scale_with_tier() {
        // Lower-tier datacenters need more replicas for five nines.
        assert!(min_datacenters(0.99999, tiers::TIER_I) >= 2);
        assert!(
            min_datacenters(0.99999, tiers::TIER_I) >= min_datacenters(0.99999, tiers::TIER_IV)
        );
        assert_eq!(min_datacenters(0.99999, tiers::TIER_IV), 2);
    }

    #[test]
    fn single_dc_suffices_for_lax_targets() {
        assert_eq!(min_datacenters(0.99, tiers::TIER_III), 1);
        assert_eq!(min_datacenters(0.0, tiers::TIER_I), 1);
    }

    #[test]
    fn perfect_availability_boundary() {
        // a == 1.0 used to trip the `(0.0..1.0)` range assert; one perfect
        // datacenter satisfies any sub-1 target.
        assert_eq!(min_datacenters(0.99999, 1.0), 1);
        assert_eq!(min_datacenters(0.0, 1.0), 1);
        assert_eq!(network_availability(1, 1.0), 1.0);
        assert_eq!(network_availability(3, 1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "availability must be in [0, 1]")]
    fn availability_above_one_is_rejected() {
        min_datacenters(0.9, 1.0001);
    }

    #[test]
    #[should_panic]
    fn target_of_exactly_one_is_rejected() {
        // A hard 1.0 target is unreachable with any a < 1 and ambiguous at
        // a == 1; the contract keeps the target in [0, 1).
        min_datacenters(1.0, tiers::TIER_IV);
    }

    #[test]
    fn min_is_actually_minimal() {
        for &(target, a) in &[(0.99999, 0.99827), (0.9999999, 0.9967), (0.999, 0.99)] {
            let n = min_datacenters(target, a);
            assert!(network_availability(n, a) >= target);
            if n > 1 {
                assert!(network_availability(n - 1, a) < target);
            }
        }
    }
}
